"""Execute the documentation so it cannot rot.

Checks every Markdown file in the repo root and ``docs/``:

* each fenced ``python`` code block is executed, cumulatively per file
  (later blocks in a file see the earlier blocks' names, exactly as a
  reader pasting them into one session would);
* each relative Markdown link must resolve to a file or directory that
  exists (external ``http(s)`` links and pure ``#fragment`` anchors are
  not checked).

Run from the repo root (CI does)::

    python docs/check_docs.py

Exits non-zero listing every failure; ``src/`` is put on ``sys.path``
so the blocks import ``repro`` the same way the tests do.
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("*.md"))

#: Internal working notes, not documentation: code blocks there are
#: excerpts and sketches, not runnable examples.
SKIP_EXECUTION = {"ISSUE.md", "SNIPPETS.md", "PAPERS.md", "CHANGES.md", "ROADMAP.md"}

CODE_BLOCK = re.compile(r"^```python\n(.*?)^```", re.S | re.M)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^```.*?^```", re.S | re.M)


def run_code_blocks(path: Path) -> list[str]:
    failures = []
    namespace: dict = {"__name__": f"docs:{path.name}"}
    for index, match in enumerate(CODE_BLOCK.finditer(path.read_text())):
        source = match.group(1)
        label = f"{path.relative_to(REPO)} python block {index + 1}"
        try:
            exec(compile(source, label, "exec"), namespace)
        except Exception:
            failures.append(f"{label} raised:\n{traceback.format_exc()}")
    return failures


def check_links(path: Path) -> list[str]:
    failures = []
    # Links inside fenced code blocks are code, not navigation.
    text = FENCE.sub("", path.read_text())
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            failures.append(
                f"{path.relative_to(REPO)}: broken link -> {target}"
            )
    return failures


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    # The repo root rides along so documentation can exercise the
    # repo-local tooling (tools.repro_lint) exactly like the tests do.
    sys.path.insert(1, str(REPO))
    failures: list[str] = []
    executed = 0
    for path in DOC_FILES:
        failures.extend(check_links(path))
        if path.name in SKIP_EXECUTION:
            continue
        blocks = CODE_BLOCK.findall(path.read_text())
        executed += len(blocks)
        failures.extend(run_code_blocks(path))
    if failures:
        print(f"{len(failures)} documentation failure(s):\n")
        print("\n".join(failures))
        return 1
    print(
        f"docs OK: {len(DOC_FILES)} file(s) checked, "
        f"{executed} python block(s) executed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
