"""Command line: ``python -m tools.repro_lint`` / ``repro-lint``.

Exit status: 0 clean, 1 violations found, 2 usage error — the same
contract as ruff, so CI treats the two gates identically.
"""

from __future__ import annotations

import argparse
import json
import sys

from tools.repro_lint.rules import RULES

#: What the CI gate analyzes when no paths are given.
DEFAULT_PATHS = ("src", "tools")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Invariant-aware static analysis for this repository: "
            "machine-checks the hand-maintained contracts "
            "(shard-routing hashes, modeled-cost determinism, "
            "child-process bus silence, extent staging, broad excepts)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print the full rationale for one rule and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its one-line summary",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="violation output format (default: text)",
    )
    return parser


def _pick_rules(select: str | None, parser: argparse.ArgumentParser):
    if select is None:
        return [rule_class() for rule_class in RULES.values()]
    chosen = []
    for code in select.split(","):
        code = code.strip().upper()
        if code not in RULES:
            parser.error(
                f"unknown rule {code!r} (known: {', '.join(RULES)})"
            )
        chosen.append(RULES[code]())
    return chosen


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, rule_class in RULES.items():
            print(f"{code}  {rule_class.summary}")
        return 0

    if options.explain is not None:
        code = options.explain.strip().upper()
        if code not in RULES:
            parser.error(
                f"unknown rule {code!r} (known: {', '.join(RULES)})"
            )
        rule_class = RULES[code]
        print(f"{code}: {rule_class.summary}\n")
        print(rule_class.explain)
        return 0

    from tools.repro_lint import run

    violations = run(options.paths, _pick_rules(options.select, parser))
    if options.format == "json":
        print(json.dumps([v.as_dict() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(
                f"\n{len(violations)} violation(s). "
                "Run with --explain <rule> for the invariant each "
                "rule defends."
            )
        else:
            print("repro-lint: clean")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
