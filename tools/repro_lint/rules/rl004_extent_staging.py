"""RL004: serving-plane discipline — extent mutation goes through staging."""

from __future__ import annotations

import re

from tools.repro_lint.rules import Rule, register

#: In-place Relation mutators that would bypass copy-on-write staging.
MUTATORS = ("insert", "delete", "delete_where", "replace_rows", "clear")

#: The one module allowed to touch extent internals directly.
DEFAULT_EXEMPT_MODULES = ("repro.relational.versioning",)

#: Attribute conventionally holding the ExtentStore.
DEFAULT_STORE_ATTR = "_extents"


@register
class ExtentStagingRule(Rule):
    code = "RL004"
    summary = (
        "extents read from an ExtentStore are never mutated in place; "
        "writes go through ExtentStore.mutable()"
    )
    explain = """\
PR 9's serving plane promises lock-free snapshot reads *during*
synchronization: readers hold an ``ExtentSnapshot`` while maintenance
stages copy-on-write overlays, and ``ExtentStore.mutable(view)`` is
the single door to an extent you may write — in serving mode it hands
back the batch's staged copy (created on first touch), in direct mode
the live relation (docs/serving.md).

Reading an extent (``store[name]``, ``store.get(name)``) and then
calling an in-place Relation mutator on it — ``insert``, ``delete``,
``delete_where``, ``replace_rows``, ``clear`` — bypasses that door.
In serving mode the bypass writes the *published* relation mid-batch:
concurrent snapshot readers observe a torn extent, exactly the race
the MVCC tests (``tests/serving/test_concurrent_reads.py``) exist to
rule out.  The bug is invisible in direct mode and under light load,
so it must be blocked at commit time.

RL004 flags, everywhere except ``repro.relational.versioning`` (the
store's own implementation), any mutator call on an expression read
out of an ``_extents`` store — directly
(``system._extents[name].insert(row)``) or through a local binding
(``extent = self._extents.get(name)`` ... ``extent.clear()``).  A
binding from ``.mutable(...)`` marks the name clean.  Store-*level*
operations (``store[name] = relation``, ``store.pop``, ``store.update``)
are staged inside the store and stay legal.

The taint tracking is per-function and name-based: extents smuggled
through containers or returned from helpers are out of reach, so keep
the read-mutate pattern local — which the codebase already does.  If a
new module genuinely needs raw access (a future store implementation),
add it to this rule's exempt list in the same PR, with the reasoning
in the commit message.
"""

    def __init__(
        self,
        exempt_modules: tuple[str, ...] = DEFAULT_EXEMPT_MODULES,
        store_attr: str = DEFAULT_STORE_ATTR,
    ) -> None:
        self.exempt_modules = exempt_modules
        self.store_attr = store_attr
        escaped = re.escape(store_attr)
        #: ``<chain>._extents[].<mutator>`` in one expression.
        self._direct = re.compile(
            rf"(^|\.){escaped}\[\]\.({'|'.join(MUTATORS)})$"
        )
        #: Binding values that taint a local name.
        self._tainted_value = re.compile(
            rf"(^|\.){escaped}(\[\]|\.get\(\))$"
        )
        #: Binding values that explicitly clean a local name.
        self._clean_value = re.compile(rf"(^|\.){escaped}\.mutable\(\)$")

    def check(self, project):
        for module, facts in sorted(project.modules.items()):
            if module in self.exempt_modules:
                continue
            for function in facts.functions.values():
                yield from self._check_function(facts, function)

    def _check_function(self, facts, function):
        # Merge bindings and calls into source order, then run the
        # name-based taint pass.
        events: list[tuple[int, int, object]] = []
        for assignment in function.assignments:
            events.append((assignment.lineno, 0, assignment))
        for call in function.calls:
            events.append((call.lineno, 1, call))
        events.sort(key=lambda event: (event[0], event[1]))

        tainted: set[str] = set()
        for _, kind, event in events:
            if kind == 0:  # assignment
                value = event.value or ""
                if self._tainted_value.search(value):
                    tainted.add(event.target)
                else:
                    tainted.discard(event.target)
                continue
            callee = event.callee
            if callee is None:
                continue
            if self._direct.search(callee):
                yield self.violation(
                    facts,
                    event.lineno,
                    f"in-place mutation of an extent read from "
                    f"{self.store_attr} ({callee}); go through "
                    "ExtentStore.mutable() so serving-mode readers "
                    "never observe a torn extent",
                )
                continue
            head, _, method = callee.rpartition(".")
            if head in tainted and method in MUTATORS:
                yield self.violation(
                    facts,
                    event.lineno,
                    f"{callee}: {head!r} was read from {self.store_attr} "
                    f"(not .mutable()); in-place {method} bypasses "
                    "copy-on-write staging",
                )
