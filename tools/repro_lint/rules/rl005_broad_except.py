"""RL005: broad exception handlers carry their justification."""

from __future__ import annotations

from tools.repro_lint.rules import Rule, register

#: Caught types considered "broad".  Dotted forms included so
#: ``builtins.Exception`` cannot dodge the rule.
BROAD_TYPES = frozenset(
    {"Exception", "BaseException", "builtins.Exception",
     "builtins.BaseException"}
)


@register
class BroadExceptRule(Rule):
    code = "RL005"
    summary = (
        "except Exception / BaseException / bare except must justify "
        "itself, narrow its type, or re-raise"
    )
    explain = """\
A broad ``except Exception`` swallows everything: the typo'd attribute,
the KeyError from a refactor, the SynchronizationError that should
have aborted the batch.  The repo's own history shows both sides of
the line — ``misd/mkb.py`` catches broadly *with a stated reason*
(``# noqa: BLE001 - collecting, not handling``: validation that must
report every problem at once), while two modeled-cost call sites used
to catch broadly by accident and turned an unknown relation into a
misleading downstream error.

RL005 requires every handler for ``Exception``, ``BaseException``, or
a bare ``except:`` to do one of three things:

* **narrow** — catch the exception type the code actually anticipates
  (``except UnknownRelationError:``);
* **justify** — keep the broad catch but say why, in a trailing
  comment on the ``except`` line itself (the ``# noqa: BLE001 -
  <reason>`` convention from ``misd/mkb.py:368``; any trailing comment
  satisfies the rule, the convention keeps it greppable);
* **re-raise** — a handler containing a bare ``raise`` is cleanup, not
  swallowing (the workers' teardown-then-reraise pattern), and passes.

The comment must be on the ``except`` line, not above it — that is
what keeps the justification attached when code moves.  Handlers for
narrowed types, including tuples of specific types, are never flagged.
"""

    def check(self, project):
        for _, facts in sorted(project.modules.items()):
            for handler in facts.excepts:
                broad = (
                    not handler.types
                    or any(name in BROAD_TYPES for name in handler.types)
                )
                if not broad or handler.has_comment or handler.reraises:
                    continue
                caught = ", ".join(handler.types) or "bare except"
                yield self.violation(
                    facts,
                    handler.lineno,
                    f"broad handler ({caught}) without justification: "
                    "narrow the type, add a trailing '# noqa: BLE001 - "
                    "<reason>' comment, or re-raise",
                )
