"""RL001: no builtin ``hash()`` in cross-process / shard-routing code."""

from __future__ import annotations

from tools.repro_lint.rules import Rule, register

#: The shard-routing root; the rule covers its whole import closure.
DEFAULT_ROOTS = ("repro.sync.workers",)


@register
class SaltedHashRule(Rule):
    code = "RL001"
    summary = (
        "builtin hash() is per-process salted; shard routing uses crc32"
    )
    explain = """\
The VKB is partitioned across worker processes by relation name:
``relation_shard`` in ``repro.sync.workers`` maps a relation to
``crc32(name) % shards``, and the parent and its *spawned* workers must
compute the same shard for the same name without negotiation (ROADMAP,
"Persistent-worker execution").

The builtin ``hash()`` cannot do that job: since PEP 456, string
hashing is salted per interpreter process (PYTHONHASHSEED), so a parent
and a freshly spawned worker disagree on ``hash("R") % shards`` — views
silently route to the wrong shard and the mirrors drift.  The failure
is probabilistic and environment-dependent, which is why it must be
caught statically rather than by tests.

RL001 therefore flags every call to the *builtin* ``hash`` inside
``repro.sync.workers`` and every module it transitively imports.
``__hash__`` method bodies are exempt (``hash(...)`` there implements
process-local object identity, which is fine — the salt never crosses
a process boundary through a dict lookup), as is any module that
shadows ``hash`` with its own definition.

Fix: route through ``zlib.crc32(name.encode("utf-8"))`` (see
``relation_shard``), or any other process-stable digest.  There is no
suppression comment for this rule on purpose: a salted hash in routing
code is never correct.
"""

    def __init__(self, roots: tuple[str, ...] = DEFAULT_ROOTS) -> None:
        self.roots = roots

    def check(self, project):
        covered = project.import_closure(*self.roots)
        for module in sorted(covered):
            facts = project.modules[module]
            if "hash" in facts.imports:
                continue  # shadowed: not the builtin
            for function in facts.functions.values():
                if function.is_dunder_hash:
                    continue
                for call in function.calls:
                    if call.callee == "hash":
                        yield self.violation(
                            facts,
                            call.lineno,
                            "builtin hash() in shard-routing import "
                            f"closure (via {', '.join(self.roots)}); "
                            "the builtin is salted per process — use "
                            "zlib.crc32 like relation_shard does",
                        )
