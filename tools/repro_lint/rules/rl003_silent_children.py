"""RL003: fork-child / worker-process code never emits bus events."""

from __future__ import annotations

from tools.repro_lint.facts import MODULE_SCOPE
from tools.repro_lint.rules import Rule, register


@register
class SilentChildrenRule(Rule):
    code = "RL003"
    summary = "no EventBus emission reachable from child-process code"
    explain = """\
The observability contract since PR 7: every ``SystemEvent`` is emitted
*in the parent process* (``repro.events`` module docstring; the
workers' module docstring restates it for the fleet).  A child emitting
would be worse than useless — the child's ``EventBus`` is a fresh
mirror with no subscribers, so the event silently vanishes, and a
subscriber accidentally carried across ``fork`` would fire callbacks
against the parent's closed-over state from inside the child, the
classic fork-safety bug.  Parent-side code therefore emits *around*
dispatch (``ShardRebalanced``, ``WorkerRecycled``), never inside it.

RL003 finds child entry points structurally: any function passed as the
``target=`` of a ``Process(...)`` construction, and any function passed
by name into ``pool.map(...)`` / ``pool.submit(...)`` in a module that
creates a multiprocessing context (the fork executor's
``_replay_group_in_fork`` pattern).  From those roots it walks the
lightweight call graph and flags every reachable call whose attribute
chain ends in ``.emit``, plus direct ``EventBus(...).emit`` forms.

The graph does not chase dispatch through object graphs, so emissions
buried behind an injected callable would escape it — which is exactly
why worker code keeps its runtime surface explicit (``_TracingRuntime``
delegates replay, never events).  If a child-side function legitimately
needs to *report* something, return it in the reply message and let the
parent emit, as ``ShardDispatch`` accounting does.  There is no
suppression comment for this rule; rename-or-return is always the fix.
"""

    def _roots(self, project):
        from tools.repro_lint.project import FunctionRef

        roots: list[FunctionRef] = []
        for module, facts in sorted(project.modules.items()):
            creates_context = any(
                call.callee is not None
                and call.callee.endswith("get_context")
                for function in facts.functions.values()
                for call in function.calls
            )
            for function in facts.functions.values():
                for call in function.calls:
                    callee = call.callee or ""
                    candidates: list[str] = []
                    if callee.endswith("Process"):
                        candidates.extend(
                            value
                            for name, value in call.keywords
                            if name == "target"
                        )
                    if creates_context and (
                        callee.endswith(".map") or callee.endswith(".submit")
                    ):
                        candidates.extend(call.arg_names)
                    for candidate in candidates:
                        resolved = project._resolve_name(
                            facts, function.class_name, candidate
                        )
                        if resolved is not None:
                            roots.append(resolved)
        return roots

    def check(self, project):
        parents = project.reachable(self._roots(project))
        for ref in sorted(parents, key=str):
            if ref.qualname == MODULE_SCOPE:
                continue
            facts = project.modules[ref.module]
            function = facts.functions[ref.qualname]
            for call in function.calls:
                callee = call.callee or ""
                if callee == "emit" or callee.endswith(".emit"):
                    chain = " -> ".join(
                        str(step) for step in project.chain(parents, ref)
                    )
                    yield self.violation(
                        facts,
                        call.lineno,
                        f"bus emission ({callee}) reachable from "
                        f"child-process entry point: {chain}; children "
                        "return data in their reply, the parent emits",
                    )
