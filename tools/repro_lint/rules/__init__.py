"""Rule registry: plugin classes over the shared facts + graphs.

A rule is a class with a ``code`` (``RL00X``), a one-line ``summary``,
a multi-paragraph ``explain`` (the ``--explain`` text: the invariant,
where it came from, how to suppress with justification), and a
``check(project)`` method yielding :class:`Violation`.

Registration is declarative — ``@register`` at class-definition time —
so adding RL006 is one new module in this package plus an import line
below; nothing in the engine or CLI changes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RULES", "Rule", "Violation", "default_rules", "register"]


@dataclass(frozen=True)
class Violation:
    """One finding: rule code, position, and a human-readable message."""

    rule: str
    path: str
    lineno: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.lineno}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "lineno": self.lineno,
            "message": self.message,
        }


class Rule:
    """Base class; concrete rules override ``check``."""

    code: str = "RL000"
    summary: str = ""
    explain: str = ""

    def check(self, project):
        raise NotImplementedError

    def violation(self, facts, lineno: int, message: str) -> Violation:
        return Violation(
            rule=self.code,
            path=str(facts.path),
            lineno=lineno,
            message=message,
        )


#: code -> rule class, in registration (= numeric) order.
RULES: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    RULES[rule_class.code] = rule_class
    return rule_class


def default_rules() -> list[Rule]:
    """One instance of every registered rule, repo defaults."""
    return [rule_class() for rule_class in RULES.values()]


# Importing the rule modules is what populates the registry.
from tools.repro_lint.rules import (  # noqa: E402 - registry population
    rl001_salted_hash,
    rl002_nondeterminism,
    rl003_silent_children,
    rl004_extent_staging,
    rl005_broad_except,
)

__all__ += [
    "rl001_salted_hash",
    "rl002_nondeterminism",
    "rl003_silent_children",
    "rl004_extent_staging",
    "rl005_broad_except",
]
