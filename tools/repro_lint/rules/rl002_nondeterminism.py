"""RL002: modeled-cost paths must be free of nondeterminism sources."""

from __future__ import annotations

from tools.repro_lint.facts import MODULE_SCOPE
from tools.repro_lint.rules import Rule, register

#: Modules whose public functions/methods are modeled-cost entry points.
DEFAULT_ENTRY_MODULES = (
    "repro.qc",  # package prefix: every repro.qc.* module
    "repro.maintenance.counters",
    "repro.space.source",
)

#: Resolved call origins that read a wall clock or an RNG.
WALL_CLOCK_AND_RNG = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Origin prefixes that are nondeterministic wholesale.
SOURCE_PREFIXES = ("random.", "secrets.")


@register
class NondeterminismRule(Rule):
    code = "RL002"
    summary = (
        "no wall clock / RNG / set-order iteration reachable from "
        "modeled-cost entry points"
    )
    explain = """\
CF_M, CF_T, and CF_IO are *modeled* counters: the paper's cost formulas
computed from cardinalities and schema widths, not measured from the
host (PAPER.md section 5; ROADMAP "model vs simulation").  The repo's
whole verification story leans on that — ``bench_sim_vs_model``,
the engine-equivalence property tests, and the sharded workers all
assert byte-identical counters across runs, processes, and executors.
One ``time.time()`` or ``random.choice`` on a modeled path breaks every
one of those oracles at once, and usually only under load.

RL002 taints the classic nondeterminism sources — wall clocks
(``time.time``/``monotonic``/``perf_counter`` and friends),
``datetime.now``-style constructors, ``random.*`` / ``secrets.*`` /
``os.urandom`` / ``uuid.uuid1|4`` — plus *iteration directly over a
set construction* (``for x in set(...)`` / ``for x in {...}``), whose
order is interpreter-dependent, and reports any such source reachable
on the lightweight call graph from a public function or method of the
modeled-cost modules: ``repro.qc.*``, ``repro.maintenance.counters``,
and ``repro.space.source``.

Boundaries, stated plainly: the graph resolves plain calls,
``self.`` methods, and imported functions of analyzed modules — not
dynamic dispatch through arbitrary objects — and set iteration is
only flagged when the set is constructed in iteration position (a
set-typed *variable* is invisible to the AST).  Sort or list() the
construction (``for x in sorted(...)``) to make order explicit.

Measured wall-clock time is still fine where it is *labeled* as
measurement (scheduler ``worker_seconds``, benchmark harnesses) —
those modules are not entry points here.  If a modeled module ever
genuinely needs a clock (it should not), isolate it behind an injected
parameter so the call site stays out of this rule's reach, and say why
in the PR.
"""

    def __init__(
        self, entry_modules: tuple[str, ...] = DEFAULT_ENTRY_MODULES
    ) -> None:
        self.entry_modules = entry_modules

    def _is_entry_module(self, module: str) -> bool:
        return any(
            module == entry or module.startswith(f"{entry}.")
            for entry in self.entry_modules
        )

    def _entry_points(self, project):
        from tools.repro_lint.project import FunctionRef

        for module, facts in sorted(project.modules.items()):
            if not self._is_entry_module(module):
                continue
            for function in facts.functions.values():
                public = not function.name.startswith("_")
                if public or function.qualname == MODULE_SCOPE:
                    yield FunctionRef(module, function.qualname)

    def _sources_in(self, facts, function):
        """(lineno, description) for every direct source in a function."""
        for call in function.calls:
            callee = call.callee
            if callee is None or "[]" in callee or callee.startswith("self."):
                continue
            head = callee.partition(".")[0]
            if head not in facts.imports:
                continue
            origin = facts.resolve(callee)
            if origin in WALL_CLOCK_AND_RNG or origin.startswith(
                SOURCE_PREFIXES
            ):
                yield call.lineno, f"call to {origin}"
        for loop in function.for_iters:
            if loop.iterable in ("set()", "{...}"):
                yield loop.lineno, (
                    "iteration over a set construction (order is "
                    "interpreter-dependent)"
                )

    def check(self, project):
        parents = project.reachable(list(self._entry_points(project)))
        for ref in sorted(parents, key=str):
            facts = project.modules[ref.module]
            function = facts.functions[ref.qualname]
            for lineno, description in self._sources_in(facts, function):
                chain = " -> ".join(
                    str(step) for step in project.chain(parents, ref)
                )
                yield self.violation(
                    facts,
                    lineno,
                    f"nondeterminism on a modeled-cost path: {description} "
                    f"in {ref.qualname} (reached via {chain}); modeled "
                    "CF_M/CF_T/CF_IO must be reproducible byte for byte",
                )
