"""The shared AST walk: one pass per module, facts for every rule.

Each source file is parsed exactly once into a :class:`ModuleFacts`
bundle.  Rules never re-walk the tree — they consume the pre-indexed
facts (call sites, assignments, ``for`` iterables, ``except`` handlers,
imports), which is what keeps a five-rule run on the full ``src/`` tree
a single-digit-millisecond-per-file affair.

Descriptors
-----------
Expressions are summarized as *dotted descriptors*, the written form of
a name/attribute chain with subscripts flattened to ``[]``::

    hash(x)                        -> callee "hash"
    time.time()                    -> callee "time.time"
    self._extents[name].insert(r)  -> callee "self._extents[].insert"
    self._extents.get(name)        -> callee "self._extents.get"

Anything that is not a name/attribute/subscript chain (a call result,
a literal, ...) descriptors to ``None`` — rules treat that as opaque.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "AssignmentFact",
    "CallSite",
    "ExceptFact",
    "ForIterFact",
    "FunctionFacts",
    "ModuleFacts",
    "describe",
    "parse_module",
]

#: Qualname bucket for statements at module level.
MODULE_SCOPE = "<module>"


def describe(node: ast.AST) -> str | None:
    """Dotted descriptor for a name/attribute/subscript chain, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = describe(node.value)
        return None if base is None else f"{base}.{node.attr}"
    if isinstance(node, ast.Subscript):
        base = describe(node.value)
        return None if base is None else f"{base}[]"
    return None


@dataclass(frozen=True)
class CallSite:
    """One ``Call`` node, summarized."""

    callee: str | None
    lineno: int
    col: int
    #: Keyword arguments whose values are bare names/dotted chains
    #: (``target=_worker_main`` -> {"target": "_worker_main"}).
    keywords: tuple[tuple[str, str], ...]
    #: Positional arguments that are bare names (callables passed
    #: around, e.g. ``pool.map(_replay_group_in_fork, ...)``).
    arg_names: tuple[str, ...]


@dataclass(frozen=True)
class AssignmentFact:
    """``target = <chain or call-of-chain>`` inside one function."""

    target: str
    #: Descriptor of the value: for a plain chain the chain itself; for
    #: a call, the callee descriptor suffixed ``()``; otherwise None.
    value: str | None
    lineno: int


@dataclass(frozen=True)
class ForIterFact:
    """What one ``for`` loop / comprehension iterates over."""

    #: "set()" for ``set(...)`` calls, "{...}" for set literals and set
    #: comprehensions, else the iterable's dotted descriptor or None.
    iterable: str | None
    lineno: int


@dataclass(frozen=True)
class ExceptFact:
    """One ``except`` clause with its source-line context."""

    #: Dotted descriptors of the caught types; empty tuple = bare except.
    types: tuple[str, ...]
    lineno: int
    #: True when the ``except`` line carries a trailing ``#`` comment.
    has_comment: bool
    #: True when the handler body contains a top-level bare ``raise``.
    reraises: bool


@dataclass
class FunctionFacts:
    """Everything rules ask about one function or method."""

    qualname: str
    name: str
    lineno: int
    class_name: str | None
    is_dunder_hash: bool
    calls: list[CallSite] = field(default_factory=list)
    assignments: list[AssignmentFact] = field(default_factory=list)
    for_iters: list[ForIterFact] = field(default_factory=list)
    #: Names read in non-call position (function objects passed around).
    referenced: set[str] = field(default_factory=set)


@dataclass
class ModuleFacts:
    """The per-module output of the shared walk."""

    module: str
    path: Path
    #: local name -> dotted origin ("perf_counter" -> "time.perf_counter",
    #: "np" -> "numpy").  ``from X import *`` contributes "X.*" under "*".
    imports: dict[str, str]
    #: Every module named in an import statement, top-level or nested.
    imported_modules: set[str]
    functions: dict[str, FunctionFacts]
    excepts: list[ExceptFact]
    source_lines: list[str]

    def resolve(self, dotted: str) -> str:
        """Rewrite a written descriptor through the import table.

        ``perf_counter`` -> ``time.perf_counter`` when imported from
        ``time``; unknown heads pass through unchanged.
        """
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


class _Walker(ast.NodeVisitor):
    """Single-pass collector feeding :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self._class_stack: list[str] = []
        self._scope_stack: list[FunctionFacts] = [
            self._make_scope(MODULE_SCOPE, MODULE_SCOPE, 0)
        ]

    def _make_scope(
        self, qualname: str, name: str, lineno: int
    ) -> FunctionFacts:
        class_name = self._class_stack[-1] if self._class_stack else None
        scope = FunctionFacts(
            qualname=qualname,
            name=name,
            lineno=lineno,
            class_name=class_name,
            is_dunder_hash=(name == "__hash__" and class_name is not None),
        )
        self.facts.functions[qualname] = scope
        return scope

    @property
    def _scope(self) -> FunctionFacts:
        return self._scope_stack[-1]

    # -- scopes ---------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        if self._class_stack:
            qualname = f"{self._class_stack[-1]}.{node.name}"
        else:
            qualname = node.name
        self._scope_stack.append(
            self._make_scope(qualname, node.name, node.lineno)
        )
        self.generic_visit(node)
        self._scope_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.facts.imports[alias.asname] = alias.name
            else:
                # ``import os.path`` binds ``os``; the head names itself.
                head = alias.name.partition(".")[0]
                self.facts.imports[head] = head
            self.facts.imported_modules.add(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports: out of scope for this repo (absolute only)
        self.facts.imported_modules.add(node.module)
        for alias in node.names:
            if alias.name == "*":
                self.facts.imports["*"] = f"{node.module}.*"
            else:
                self.facts.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    # -- facts ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        keywords = tuple(
            (kw.arg, described)
            for kw in node.keywords
            if kw.arg is not None
            and (described := describe(kw.value)) is not None
        )
        arg_names = tuple(
            arg.id for arg in node.args if isinstance(arg, ast.Name)
        )
        self._scope.calls.append(
            CallSite(
                callee=describe(node.func),
                lineno=node.lineno,
                col=node.col_offset,
                keywords=keywords,
                arg_names=arg_names,
            )
        )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = self._value_descriptor(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scope.assignments.append(
                    AssignmentFact(target.id, value, node.lineno)
                )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._scope.assignments.append(
                AssignmentFact(
                    node.target.id,
                    self._value_descriptor(node.value),
                    node.lineno,
                )
            )
        self.generic_visit(node)

    @staticmethod
    def _value_descriptor(value: ast.AST) -> str | None:
        if isinstance(value, ast.Call):
            callee = describe(value.func)
            return None if callee is None else f"{callee}()"
        return describe(value)

    def _record_iter(self, iterable: ast.AST, lineno: int) -> None:
        if isinstance(iterable, ast.Call) and describe(iterable.func) == "set":
            descriptor: str | None = "set()"
        elif isinstance(iterable, (ast.Set, ast.SetComp)):
            descriptor = "{...}"
        else:
            descriptor = describe(iterable)
        self._scope.for_iters.append(ForIterFact(descriptor, lineno))

    def visit_For(self, node: ast.For) -> None:
        self._record_iter(node.iter, node.lineno)
        self.generic_visit(node)

    def _visit_comprehension_holder(self, node) -> None:
        for comp in node.generators:
            self._record_iter(comp.iter, node.lineno)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_holder
    visit_SetComp = _visit_comprehension_holder
    visit_DictComp = _visit_comprehension_holder
    visit_GeneratorExp = _visit_comprehension_holder

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            types: tuple[str, ...] = ()
        elif isinstance(node.type, ast.Tuple):
            types = tuple(
                described
                for element in node.type.elts
                if (described := describe(element)) is not None
            )
        else:
            described = describe(node.type)
            types = (described,) if described is not None else ()
        line = ""
        if 0 < node.lineno <= len(self.facts.source_lines):
            line = self.facts.source_lines[node.lineno - 1]
        self.facts.excepts.append(
            ExceptFact(
                types=types,
                lineno=node.lineno,
                has_comment=_has_trailing_comment(line),
                reraises=any(
                    isinstance(stmt, ast.Raise) and stmt.exc is None
                    for stmt in ast.walk(node)
                    if isinstance(stmt, ast.Raise)
                ),
            )
        )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._scope.referenced.add(node.id)


def _has_trailing_comment(line: str) -> bool:
    """Whether a physical source line ends in a real ``#`` comment.

    Tokenized, not ``"#" in line`` — a ``#`` inside a string literal is
    not a justification.
    """
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(line).readline)
        )
    except tokenize.TokenizeError:
        # A lone physical line from a multi-line construct may not
        # tokenize standalone; fall back to the cheap check.
        return "#" in line.rsplit('"', 1)[-1].rsplit("'", 1)[-1]
    return any(token.type == tokenize.COMMENT for token in tokens)


def parse_module(path: Path, module: str | None = None) -> ModuleFacts:
    """Parse one file into its facts bundle (the shared walk)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    facts = ModuleFacts(
        module=module or path.stem,
        path=path,
        imports={},
        imported_modules=set(),
        functions={},
        excepts=[],
        source_lines=source.splitlines(),
    )
    _Walker(facts).visit(ast.parse(source, filename=str(path)))
    return facts
