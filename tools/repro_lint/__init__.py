"""repro-lint: invariant-aware static analysis for this repository.

Nine PRs of parallelism, MVCC, and sharded workers left the codebase
with hand-maintained invariants that only prose and property tests
defended.  This package turns them into machine-checked rules that run
over one shared AST walk (:mod:`tools.repro_lint.facts`) plus a
lightweight import/call graph (:mod:`tools.repro_lint.project`):

========  ==============================================================
RL001     No builtin ``hash()`` in cross-process / shard-routing modules
          (``repro.sync.workers`` and everything it imports) — the
          builtin is salted per process; use ``zlib.crc32``.
RL002     No nondeterminism source (wall clock, RNG, set-order
          iteration) reachable from the modeled-cost entry points in
          ``repro.qc``, ``repro.maintenance.counters``, and
          ``repro.space.source``.
RL003     No ``EventBus`` emission reachable from fork-child /
          worker-process code paths.
RL004     Serving-plane discipline: extents read out of an
          ``ExtentStore`` must not be mutated in place — mutation goes
          through ``ExtentStore.mutable()`` staging.
RL005     Every broad ``except`` (``Exception`` / ``BaseException`` /
          bare) carries a trailing justification comment, narrows its
          type, or re-raises.
========  ==============================================================

Run ``python -m tools.repro_lint --explain RL00X`` for the full story
behind any rule, or see ``docs/static-analysis.md``.
"""

from tools.repro_lint.facts import ModuleFacts, parse_module
from tools.repro_lint.project import Project
from tools.repro_lint.rules import RULES, Rule, Violation, default_rules

__all__ = [
    "ModuleFacts",
    "Project",
    "RULES",
    "Rule",
    "Violation",
    "default_rules",
    "parse_module",
    "run",
]


def run(paths, rules=None):
    """Analyze ``paths`` (files or directories) with ``rules``.

    Returns the flat, position-sorted list of
    :class:`~tools.repro_lint.rules.Violation`.  This is the API the
    CLI, the tests, and the executable documentation all share.
    """
    project = Project.load(paths)
    chosen = list(default_rules()) if rules is None else list(rules)
    violations = []
    for rule in chosen:
        violations.extend(rule.check(project))
    violations.sort(key=lambda v: (v.path, v.lineno, v.rule))
    return violations
