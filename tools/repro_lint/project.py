"""Project model: modules, import graph, and a lightweight call graph.

The call graph is deliberately *lightweight*: it resolves

* plain calls to functions defined in the same module,
* ``self.method()`` calls within a class,
* calls through ``from pkg.mod import func`` / ``import pkg.mod`` to
  functions defined in other analyzed modules,

and treats everything else (methods on arbitrary objects, call
results, dynamic dispatch) as opaque.  That boundary is a feature:
rules stay fast and their findings stay explainable as concrete
chains (``_worker_main -> _worker_run_batch -> events.emit``), at the
cost of not chasing dispatch through object graphs.  The invariants
the rules defend live in exactly the code shapes the graph resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from tools.repro_lint.facts import MODULE_SCOPE, CallSite, ModuleFacts, parse_module

__all__ = ["FunctionRef", "Project"]


@dataclass(frozen=True)
class FunctionRef:
    """A function pinned to its module: the call-graph node."""

    module: str
    qualname: str

    def __str__(self) -> str:
        return f"{self.module}:{self.qualname}"


def _module_name(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


class Project:
    """Every analyzed module plus the graphs the rules traverse."""

    def __init__(self, modules: dict[str, ModuleFacts]) -> None:
        self.modules = modules
        self._edges: dict[FunctionRef, set[FunctionRef]] | None = None

    @classmethod
    def load(cls, paths) -> "Project":
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        modules: dict[str, ModuleFacts] = {}
        for file in files:
            facts = parse_module(file, _module_name(file))
            modules[facts.module] = facts
        return cls(modules)

    # -- import graph ---------------------------------------------------
    def imports_of(self, module: str) -> set[str]:
        """Analyzed modules imported by ``module`` (direct edges)."""
        facts = self.modules.get(module)
        if facts is None:
            return set()
        return {name for name in facts.imported_modules if name in self.modules}

    def import_closure(self, *roots: str) -> set[str]:
        """Roots plus every analyzed module transitively imported."""
        seen: set[str] = set()
        frontier = [root for root in roots if root in self.modules]
        while frontier:
            module = frontier.pop()
            if module in seen:
                continue
            seen.add(module)
            frontier.extend(self.imports_of(module) - seen)
        return seen

    # -- call graph -----------------------------------------------------
    def _resolve_call(
        self, facts: ModuleFacts, scope_class: str | None, call: CallSite
    ) -> FunctionRef | None:
        return self._resolve_name(facts, scope_class, call.callee)

    def _resolve_name(
        self, facts: ModuleFacts, scope_class: str | None, dotted: str | None
    ) -> FunctionRef | None:
        if dotted is None or "[]" in dotted:
            return None
        head, _, rest = dotted.partition(".")
        # self.method() inside a class body.
        if head == "self" and scope_class and rest and "." not in rest:
            qualname = f"{scope_class}.{rest}"
            if qualname in facts.functions:
                return FunctionRef(facts.module, qualname)
            return None
        # Same-module plain function (or ClassName.method reference).
        if not rest and dotted in facts.functions:
            return FunctionRef(facts.module, dotted)
        # Through the import table: from pkg.mod import func / import pkg.
        origin = facts.resolve(dotted)
        module, _, func = origin.rpartition(".")
        if module in self.modules and func in self.modules[module].functions:
            return FunctionRef(module, func)
        if origin in self.modules:
            return FunctionRef(origin, MODULE_SCOPE)
        return None

    def call_edges(self) -> dict[FunctionRef, set[FunctionRef]]:
        """callee edges per function, resolved once and cached."""
        if self._edges is not None:
            return self._edges
        edges: dict[FunctionRef, set[FunctionRef]] = {}
        for facts in self.modules.values():
            for function in facts.functions.values():
                ref = FunctionRef(facts.module, function.qualname)
                targets = edges.setdefault(ref, set())
                for call in function.calls:
                    resolved = self._resolve_call(
                        facts, function.class_name, call
                    )
                    if resolved is not None:
                        targets.add(resolved)
        self._edges = edges
        return edges

    def reachable(
        self, roots: list[FunctionRef]
    ) -> dict[FunctionRef, FunctionRef | None]:
        """BFS over call edges; maps each reached node to its parent.

        The parent chain reconstructs a concrete ``root -> ... -> sink``
        path for violation messages.
        """
        edges = self.call_edges()
        parents: dict[FunctionRef, FunctionRef | None] = {}
        frontier: list[FunctionRef] = []
        for root in roots:
            if root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            node = frontier.pop(0)
            for target in sorted(edges.get(node, ()), key=str):
                if target not in parents:
                    parents[target] = node
                    frontier.append(target)
        return parents

    @staticmethod
    def chain(
        parents: dict[FunctionRef, FunctionRef | None], node: FunctionRef
    ) -> list[FunctionRef]:
        """Root-first path to ``node`` out of a :meth:`reachable` map."""
        path = [node]
        while (parent := parents[path[-1]]) is not None:
            path.append(parent)
        return list(reversed(path))

    def function(self, ref: FunctionRef):
        return self.modules[ref.module].functions[ref.qualname]
