"""Repo-local developer tooling (not shipped to library consumers)."""
