"""Ablation benches for the design choices called out in DESIGN.md §5.

Three ablations, each comparing the implemented choice against its
alternative on the Experiment 4 scenario:

* **Estimated vs exact quality** — the paper's statistics-only estimation
  path vs counting materialized extents.  Expected: identical ranking on
  the substitution chain (the containment constraints are exact, so the
  estimates are too).
* **Overlap fallback** — the paper's pessimistic "no PC constraint means
  zero overlap" vs an optimistic min-cardinality guess.  Expected: the
  pessimistic rule correctly zeroes unrelated substitutions; the
  optimistic one inflates their quality and can flip the ranking.
* **Bag vs set extent comparison** — the quality model de-duplicates
  before comparing (Sec. 5.4.2); comparing raw bags instead would
  double-count join multiplicities.  Measured on concrete extents.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.report import format_table
from repro.esql.evaluator import evaluate_view
from repro.qc.model import QCModel
from repro.qc.params import TradeoffParameters
from repro.qc.quality import exact_extent_numbers
from repro.qc.view_size import estimate_extent_numbers
from repro.space.changes import DeleteRelation
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_cardinality_scenario


def candidates(populate=False):
    scenario = build_cardinality_scenario(populate=populate)
    scenario.space.delete_relation("R2")
    synchronizer = ViewSynchronizer(scenario.space.mkb)
    rewritings = synchronizer.synchronize(
        scenario.view, DeleteRelation("IS1", "R2")
    )
    rewritings.sort(key=lambda r: r.moves[-1].new_relation)
    named = [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]
    return scenario, named


# ----------------------------------------------------------------------
# Ablation 1: estimated vs exact quality path
# ----------------------------------------------------------------------
def run_estimated_vs_exact():
    scenario, named = candidates(populate=True)
    params = TradeoffParameters().with_quality_weight(1.0)
    model = QCModel(scenario.space.mkb, params)
    estimated = model.evaluate(named, updated_relation="R1")
    exact = model.evaluate_exact(
        named,
        scenario.original_relations,
        scenario.space.relations(),
        updated_relation="R1",
    )
    return estimated, exact


@pytest.fixture(scope="module")
def est_vs_exact():
    return run_estimated_vs_exact()


def report_est_vs_exact(result) -> None:
    estimated, exact = result
    est_by = {e.name: e for e in estimated}
    rows = []
    for evaluation in sorted(exact, key=lambda e: e.name):
        counterpart = est_by[evaluation.name]
        rows.append(
            [
                evaluation.name,
                f"{counterpart.quality.dd:.4f}",
                f"{evaluation.quality.dd:.4f}",
                counterpart.rank,
                evaluation.rank,
            ]
        )
    emit(
        format_table(
            ["Rewriting", "DD (estimated)", "DD (exact)",
             "rank (est)", "rank (exact)"],
            rows,
            title="Ablation 1: estimation path vs materialized counting",
        )
    )


def test_ablation1_report(est_vs_exact):
    report_est_vs_exact(est_vs_exact)


def test_ablation1_rankings_agree_on_structure(est_vs_exact):
    """Winner and the superset-chain order agree between the paths.

    (Middle ranks may swap: the materialized join has only a few dozen
    result tuples, so the exact D1/D2 ratios carry sampling noise that
    the statistical estimates do not.)
    """
    estimated, exact = est_vs_exact
    est_ranks = {e.name: e.rank for e in estimated}
    exact_ranks = {e.name: e.rank for e in exact}
    assert est_ranks["V3"] == exact_ranks["V3"] == 1
    for ranks in (est_ranks, exact_ranks):
        assert ranks["V3"] < ranks["V4"] < ranks["V5"]
        assert ranks["V3"] < ranks["V2"] < ranks["V1"]


def test_ablation1_divergences_close(est_vs_exact):
    estimated, exact = est_vs_exact
    est_by = {e.name: e.quality.dd for e in estimated}
    for evaluation in exact:
        # Exact containment constraints -> estimates match the counts.
        assert evaluation.quality.dd == pytest.approx(
            est_by[evaluation.name], abs=0.02
        )


# ----------------------------------------------------------------------
# Ablation 2: overlap fallback (pessimistic 0 vs optimistic min)
# ----------------------------------------------------------------------
def run_overlap_fallback():
    """Add an unrelated same-shape relation U; compare fallbacks."""
    from repro.misd.statistics import RelationStatistics
    from repro.relational.relation import Relation
    from repro.workloadgen.generator import make_schema

    scenario = build_cardinality_scenario()
    space = scenario.space
    space.add_source("IS9")
    space.register_relation(
        "IS9",
        Relation(make_schema("U", ["A", "B", "C"])),
        RelationStatistics(cardinality=4000, tuple_size=100),
    )
    # U is declared substitutable but with an *empty-information* overlap:
    # an equivalence over the attributes exists only shape-wise; we model
    # "no PC constraint about the extent" by removing it after generation.
    space.mkb.add_equivalence("R2", "U", ["A", "B", "C"])
    space.delete_relation("R2")
    synchronizer = ViewSynchronizer(space.mkb)
    rewritings = synchronizer.synchronize(
        scenario.view, DeleteRelation("IS1", "R2")
    )
    to_u = next(
        r for r in rewritings if "U" in r.view.relation_names
    ).renamed("VU")
    to_s3 = next(
        r for r in rewritings if "S3" in r.view.relation_names
    ).renamed("V3")

    # Pessimistic path: strike the R2/U constraint from (historical)
    # knowledge, leaving U a constraint-less substitution target.
    space.mkb._historical_pc = [
        pc
        for pc in space.mkb._historical_pc
        if not (pc.involves("R2") and pc.involves("U"))
    ]
    pessimistic = estimate_extent_numbers([to_u][0], space.mkb)

    # Optimistic alternative: assume the overlap is the smaller extent.
    optimistic_overlap = min(pessimistic.original, pessimistic.rewriting)
    with_constraint = estimate_extent_numbers(to_s3, space.mkb)
    return pessimistic, optimistic_overlap, with_constraint


@pytest.fixture(scope="module")
def overlap_fallback():
    return run_overlap_fallback()


def report_overlap(result) -> None:
    pessimistic, optimistic_overlap, with_constraint = result
    emit(
        format_table(
            ["Case", "|V∩Vi| used", "D1", "D2"],
            [
                [
                    "no PC constraint, paper fallback (0)",
                    pessimistic.overlap,
                    f"{1 - pessimistic.overlap / pessimistic.original:.2f}",
                    f"{1 - pessimistic.overlap / pessimistic.rewriting:.2f}",
                ],
                [
                    "no PC constraint, optimistic min(|V|,|Vi|)",
                    optimistic_overlap,
                    f"{1 - optimistic_overlap / pessimistic.original:.2f}",
                    f"{1 - optimistic_overlap / pessimistic.rewriting:.2f}",
                ],
                [
                    "with PC constraint (S3 = R2)",
                    with_constraint.overlap,
                    "0.00",
                    "0.00",
                ],
            ],
            title="Ablation 2: overlap fallback without constraints",
        )
    )


def test_ablation2_report(overlap_fallback):
    report_overlap(overlap_fallback)


def test_ablation2_pessimistic_zeroes_unknown_overlap(overlap_fallback):
    pessimistic, _, _ = overlap_fallback
    assert pessimistic.overlap == 0.0
    assert not pessimistic.exact


def test_ablation2_optimistic_would_claim_full_quality(overlap_fallback):
    pessimistic, optimistic_overlap, _ = overlap_fallback
    # The optimistic guess equals the full original extent: an unrelated
    # relation would look as good as the true replica — the reason the
    # paper chose the pessimistic rule.
    assert optimistic_overlap == pessimistic.original


# ----------------------------------------------------------------------
# Ablation 3: bag vs set extent comparison
# ----------------------------------------------------------------------
def run_bag_vs_set():
    """Duplicate join multiplicities inflate bag counts, not set counts."""
    from repro.relational.relation import Relation
    from repro.workloadgen.generator import make_schema
    from repro.esql.parser import parse_view
    from repro.sync.rewriting import ExtentRelationship, Rewriting

    # S joins twice per R row -> bag counts double the set counts.
    r = Relation(make_schema("R", ["A"]), [(1,), (2,)])
    s = Relation(
        make_schema("S", ["A", "B"]),
        [(1, 10), (1, 11), (2, 20), (2, 21)],
    )
    view = parse_view(
        "CREATE VIEW V AS SELECT R.A FROM R, S WHERE R.A = S.A"
    )
    rewriting = Rewriting(view, view, (), ExtentRelationship.EQUAL)
    relations = {"R": r, "S": s}
    numbers = exact_extent_numbers(rewriting, relations, relations)
    bag_size = evaluate_view(view, relations).cardinality
    return numbers, bag_size


@pytest.fixture(scope="module")
def bag_vs_set():
    return run_bag_vs_set()


def test_ablation3_report(bag_vs_set):
    numbers, bag_size = bag_vs_set
    emit(
        format_table(
            ["Comparison basis", "|V| counted"],
            [
                ["set (paper: duplicates removed first)", numbers.original],
                ["bag (raw multiplicities)", bag_size],
            ],
            title="Ablation 3: bag vs set extent comparison",
        )
    )


def test_ablation3_set_semantics_deduplicate(bag_vs_set):
    numbers, bag_size = bag_vs_set
    assert numbers.original == 2  # two distinct A values
    assert bag_size == 4  # join multiplicity 2 per row
    assert numbers.overlap == numbers.original  # identical views


def test_benchmark_ablation1(benchmark):
    estimated, exact = benchmark(run_estimated_vs_exact)
    assert len(exact) == 5
    report_est_vs_exact((estimated, exact))
