"""Experiment 2 (Sec. 7.2, Tables 1/2, Fig. 13): cost factors vs #sites.

Six relations (Table 1 parameters) spread over 1..6 information sources in
every Table 2 distribution; for each scenario we average the three cost
factors of a single data update over the distributions.  Expected shape
(Fig. 13): messages and bytes grow with the number of sources; I/O is flat
(it depends only on the relation set, not its placement).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.report import format_table
from repro.qc.cost import cf_bytes, cf_io, cf_messages_counted
from repro.workloadgen.scenarios import site_scenarios


def figure13_rows() -> list[tuple[int, float, float, float]]:
    """(m, avg CF_M, avg CF_T, avg CF_IO) for m = 1..6."""
    rows = []
    for sites in range(1, 7):
        scenarios = site_scenarios(sites)
        messages = [cf_messages_counted(s.plan) for s in scenarios]
        transferred = [cf_bytes(s.plan, s.statistics) for s in scenarios]
        ios = [cf_io(s.plan, s.statistics) for s in scenarios]
        count = len(scenarios)
        rows.append(
            (
                sites,
                sum(messages) / count,
                sum(transferred) / count,
                sum(ios) / count,
            )
        )
    return rows


@pytest.fixture(scope="module")
def rows():
    return figure13_rows()


def report(rows) -> None:
    emit(
        format_table(
            ["Sites (m)", "CF_M (avg)", "CF_T bytes (avg)", "CF_IO (avg)"],
            rows,
            title="Figure 13: view-maintenance cost factors vs number of ISs",
        )
    )


def test_fig13_report(rows):
    report(rows)


def test_fig13a_messages_grow_with_sites(rows):
    messages = [row[1] for row in rows]
    assert all(a < b for a, b in zip(messages, messages[1:]))


def test_fig13b_bytes_grow_with_sites(rows):
    transferred = [row[2] for row in rows]
    assert all(a < b for a, b in zip(transferred, transferred[1:]))


def test_fig13c_io_is_flat(rows):
    ios = [row[3] for row in rows]
    assert all(value == pytest.approx(31.0) for value in ios)


def test_single_site_anchors_match_paper(rows):
    """The m=1 and m=6 endpoints computed in Sec. 7.5's Table 6."""
    by_sites = {row[0]: row for row in rows}
    assert by_sites[1][1] == pytest.approx(3)
    assert by_sites[1][2] == pytest.approx(800)
    assert by_sites[6][1] == pytest.approx(11)
    assert by_sites[6][2] == pytest.approx(3600)


def test_benchmark_fig13(benchmark):
    result = benchmark(figure13_rows)
    assert len(result) == 6
    report(result)
