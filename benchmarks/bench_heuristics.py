"""Sec. 7.6's pruning heuristics vs the exhaustive QC ranking.

Generates many randomized synchronization problems (deleted relation with
several PC-related substitute candidates at varying cardinalities and
placements), picks a rewriting with the cheap heuristic stack, and
compares against the full QC-Model evaluation.  Expected: the
closest-size / fewest-sources heuristics recover the exhaustive winner in
the large majority of cases at a fraction of the evaluation cost.
"""

from __future__ import annotations

import random

import pytest

from conftest import emit
from repro.core.report import format_table
from repro.misd.statistics import RelationStatistics
from repro.qc.heuristics import default_heuristic_stack, pick_by_heuristics
from repro.qc.model import QCModel
from repro.qc.params import TradeoffParameters
from repro.relational.relation import Relation
from repro.space.changes import DeleteRelation
from repro.space.space import InformationSpace
from repro.sync.synchronizer import ViewSynchronizer
from repro.esql.parser import parse_view
from repro.workloadgen.generator import make_schema

TRIALS = 40


def build_problem(rng: random.Random):
    """A space where R2 has 3..5 substitute candidates of random size."""
    space = InformationSpace()
    space.mkb.statistics.join_selectivity = 0.005
    space.mkb.statistics.blocking_factor = 1
    space.add_source("IS0")
    space.register_relation(
        "IS0",
        Relation(make_schema("R1", ["A", "K"])),
        RelationStatistics(cardinality=400, tuple_size=100),
    )
    space.add_source("IS1")
    r2_cardinality = rng.choice([2000, 4000, 8000])
    space.register_relation(
        "IS1",
        Relation(make_schema("R2", ["A", "B"])),
        RelationStatistics(cardinality=r2_cardinality, tuple_size=100),
    )
    n_candidates = rng.randint(3, 5)
    for index in range(n_candidates):
        name = f"S{index + 1}"
        source = f"IS{index + 2}"
        space.add_source(source)
        cardinality = rng.randrange(500, 12_000, 250)
        space.register_relation(
            source,
            Relation(make_schema(name, ["A", "B"])),
            RelationStatistics(cardinality=cardinality, tuple_size=100),
        )
        if cardinality <= r2_cardinality:
            space.mkb.add_containment(name, "R2", ["A", "B"])
        else:
            space.mkb.add_containment("R2", name, ["A", "B"])
    view = parse_view(
        """
        CREATE VIEW V (VE = '~') AS
        SELECT R1.K, R2.A (AR = true), R2.B (AR = true)
        FROM R1, R2 (RR = true)
        WHERE (R1.A = R2.A) (CR = true)
        """
    )
    return space, view


def run_agreement_study(seed: int = 2024):
    rng = random.Random(seed)
    params = TradeoffParameters()
    agreements = 0
    top2 = 0
    trials = 0
    for _ in range(TRIALS):
        space, view = build_problem(rng)
        space.delete_relation("R2")
        synchronizer = ViewSynchronizer(space.mkb)
        rewritings = synchronizer.synchronize(
            view, DeleteRelation("IS1", "R2")
        )
        if len(rewritings) < 2:
            continue
        trials += 1
        model = QCModel(space.mkb, params)
        evaluations = model.evaluate(rewritings, updated_relation="R1")
        exhaustive_best = evaluations[0].rewriting
        stack = default_heuristic_stack(space.mkb, space.mkb.statistics)
        heuristic_pick = pick_by_heuristics(rewritings, stack)
        if heuristic_pick.view == exhaustive_best.view:
            agreements += 1
            top2 += 1
        elif heuristic_pick.view == evaluations[1].rewriting.view:
            top2 += 1
    return trials, agreements, top2


@pytest.fixture(scope="module")
def study():
    return run_agreement_study()


def report(study) -> None:
    trials, agreements, top2 = study
    emit(
        format_table(
            ["Trials", "Heuristic = QC best", "Heuristic in QC top 2"],
            [[trials, f"{agreements} ({agreements / trials:.0%})",
              f"{top2} ({top2 / trials:.0%})"]],
            title="Sec. 7.6 heuristics vs exhaustive QC ranking",
        )
    )


def test_heuristics_report(study):
    report(study)


def test_heuristics_agree_with_qc_most_of_the_time(study):
    trials, agreements, _ = study
    assert trials >= 30
    assert agreements / trials >= 0.6


def test_heuristics_almost_always_in_top_two(study):
    trials, _, top2 = study
    assert top2 / trials >= 0.75


def test_benchmark_heuristics(benchmark):
    result = benchmark(run_agreement_study)
    assert result[0] > 0
    report(result)
