"""Validate BENCH_*.json payloads and gate speedup regressions.

This is the benchmark-JSON contract in one importable place (it used to
live as a heredoc inside ``.github/workflows/ci.yml``).  Two layers:

* **Structural validation** — every known BENCH file must carry its
  expected sections and fields, and its *correctness invariants* must
  hold (extents/outcomes/rankings identical, pruning never assessed
  more than exhaustive, deferral resume matched serial).  These are
  mode-independent: they gate smoke and full runs alike.
* **Regression gate** — headline ``speedup`` fields are compared
  against a baseline payload (the committed BENCH file) and fail on a
  >30% drop.  Timings are only comparable between runs of the same
  mode, so a smoke run checked against a committed full-run baseline is
  reported as an explicit SKIP, never a silent pass.

Timing-noise fields (e.g. ``pruned_ranking.speedup``, a sub-10ms
measurement) are deliberately not gated; their correctness invariants
are gated instead.

Usage::

    python benchmarks/validate_bench.py [FILE ...]
    python benchmarks/validate_bench.py --baseline-dir DIR [FILE ...]

With no FILE arguments, every ``BENCH_*.json`` at the repo root is
validated.  ``--baseline-dir`` additionally compares each file against
the same-named file in DIR (missing baselines are skipped).  Importable
from tests: see :func:`validate_payload` and :func:`check_regression`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default tolerated relative drop of a gated speedup before failing.
MAX_REGRESSION = 0.30

#: name -> (section, field) pairs gated against the baseline.  Only
#: headline speedups with enough signal to survive runner jitter.
GATED_SPEEDUPS = {
    "engine": (
        ("view_evaluation", "speedup"),
        ("maintenance_propagation", "speedup"),
        ("synchronize_and_rank", "speedup"),
        ("view_evaluation_large", "speedup"),
    ),
    "sync": (("batched_dispatch", "speedup"),),
    "scheduler": (
        ("parallel_storm", "speedup"),
        ("sharded_storm", "workers_speedup"),
    ),
    "maintenance": (
        ("update_storm", "speedup"),
        ("update_storm", "columnar_speedup"),
    ),
    # Latency is lower-is-better, so the serving lane gates the inverted
    # ratio idle_p99/storm_p99 ("headroom") — higher is better, and a
    # >30% drop means storm reads got >30% slower relative to idle.
    "serving": (("storm_reads", "latency_headroom"),),
}

#: Absolute floor of the columnar-vs-tuple evaluation speedup on full
#: (non-smoke) runs — the PR-6 acceptance gate, independent of any
#: baseline payload.
COLUMNAR_SPEEDUP_FLOOR = 3.0

#: Absolute floor of the persistent-worker-vs-serial speedup in the
#: sharded storm on full (non-smoke) runs — the PR-7 acceptance gate.
WORKERS_SPEEDUP_FLOOR = 3.0

#: Absolute ceiling of storm-time read p99 relative to idle read p99 on
#: full (non-smoke) runs — the PR-9 serving-plane acceptance gate:
#: snapshot reads during a 1k-view evolution storm may degrade at most
#: 2x versus an idle system.
SERVING_P99_CEILING = 2.0

#: The p99 ceiling applied when the recording host had a single CPU.
#: On one core, OS fair-share alone doubles any read that overlaps
#: synchronization compute (reader and writer split the core 50/50
#: before a single lock enters the picture), and burst-stacked
#: scheduling gaps land on the p99 of a dense storm.  The MVCC claim —
#: reads never *block* on writers — is gated by the p50 ratio and the
#: torn-read/parity invariants instead, which are core-count
#: independent; multi-core hosts (CI runners included) enforce the
#: real 2x p99 ceiling above.
SERVING_P99_CEILING_SINGLE_CORE = 8.0

#: Ceiling of storm-time read p50 relative to idle read p50 on full
#: runs, every host: the median read must not degrade beyond 2x while
#: the storm commits, or readers are being blocked, not scheduled.
SERVING_P50_CEILING = 2.0


class BenchValidationError(Exception):
    """A BENCH payload violated its structural or invariant contract."""


#: The SystemReport schema version this validator understands (kept in
#: lockstep with ``repro.report.REPORT_SCHEMA_VERSION``).
SYSTEM_REPORT_SCHEMA_VERSION = 4


def validate_system_report(report: dict, context: str = "system_report") -> None:
    """Validate one embedded ``SystemReport.to_dict()`` payload.

    Every benchmark driver embeds the :class:`repro.report.SystemReport`
    of its system-level run; this checks the stable schema (version,
    sections, per-view rows) and the cross-section consistency
    invariants (survived/undefined totals, non-negative counters).
    """
    if not isinstance(report, dict):
        raise BenchValidationError(f"{context}: not a mapping")
    if report.get("schema_version") != SYSTEM_REPORT_SCHEMA_VERSION:
        raise BenchValidationError(
            f"{context}: schema_version "
            f"{report.get('schema_version')!r} != "
            f"{SYSTEM_REPORT_SCHEMA_VERSION}"
        )
    if report.get("operation") not in ("apply_changes", "apply_updates"):
        raise BenchValidationError(
            f"{context}: unknown operation {report.get('operation')!r}"
        )
    for section in (
        "synchronization", "schedule", "maintenance", "plans", "serving"
    ):
        if section not in report:
            raise BenchValidationError(
                f"{context}: missing section {section!r}"
            )
    sync = report["synchronization"]
    for field in ("views", "counters", "survived", "undefined"):
        if field not in sync:
            raise BenchValidationError(
                f"{context}: synchronization: missing {field!r}"
            )
    views = sync["views"]
    _invariant(
        sync["survived"] + sync["undefined"] == len(views),
        f"{context}: survived+undefined != len(views)",
    )
    for row in views:
        for field in ("view", "change", "survived", "qc", "policy"):
            if field not in row:
                raise BenchValidationError(
                    f"{context}: view row missing {field!r}"
                )
        _invariant(
            row["survived"] == (row["qc"] is not None),
            f"{context}: view {row['view']!r} survival/qc mismatch",
        )
    for batch in report["schedule"]["batches"]:
        for field in ("executor", "workers", "views", "coalesced",
                      "wall_seconds", "executor_fallback", "shards"):
            if field not in batch:
                raise BenchValidationError(
                    f"{context}: schedule batch missing {field!r}"
                )
        _invariant(
            batch["wall_seconds"] >= 0.0,
            f"{context}: negative wall_seconds",
        )
        for dispatch in batch["shards"]:
            for field in ("shard", "views", "groups", "bytes_shipped",
                          "bytes_received", "snapshot_bytes",
                          "worker_seconds"):
                _invariant(
                    dispatch.get(field, -1) >= 0,
                    f"{context}: shard dispatch {field!r} missing/negative",
                )
    if "shards" not in report["schedule"]:
        raise BenchValidationError(
            f"{context}: schedule: missing 'shards'"
        )
    maintenance = report["maintenance"]
    for field in ("flushes", "counters", "updates"):
        if field not in maintenance:
            raise BenchValidationError(
                f"{context}: maintenance: missing {field!r}"
            )
    counters = maintenance["counters"]
    for field in ("messages", "bytes_transferred", "io_operations"):
        _invariant(
            counters.get(field, -1) >= 0,
            f"{context}: maintenance counter {field!r} missing/negative",
        )
    _invariant(
        maintenance["updates"]
        == sum(flush.get("updates", 0) for flush in maintenance["flushes"]),
        f"{context}: flush update totals disagree",
    )
    serving = report["serving"]
    if not isinstance(serving.get("enabled"), bool):
        raise BenchValidationError(
            f"{context}: serving: 'enabled' missing or not a bool"
        )
    for field in ("version", "published", "staged", "copied", "pins"):
        _invariant(
            isinstance(serving.get(field), int)
            and serving.get(field, -1) >= 0,
            f"{context}: serving counter {field!r} missing/negative",
        )
    _invariant(
        serving["enabled"] or serving["published"] == 0,
        f"{context}: serving disabled but publishes recorded",
    )
    plans = report["plans"]
    for field in ("views", "total"):
        if field not in plans:
            raise BenchValidationError(
                f"{context}: plans: missing {field!r}"
            )
    _invariant(
        plans["total"] >= len(plans["views"]),
        f"{context}: plans total below captured count",
    )
    for plan in plans["views"]:
        _invariant(
            plan.get("kind") in ("evaluation", "maintenance"),
            f"{context}: plan kind {plan.get('kind')!r} unknown",
        )
        for field in ("view", "steps"):
            if field not in plan:
                raise BenchValidationError(
                    f"{context}: plan missing {field!r}"
                )
        for step in plan["steps"]:
            for field in ("relation", "access"):
                if field not in step:
                    raise BenchValidationError(
                        f"{context}: plan step missing {field!r}"
                    )
            _invariant(
                step["access"] in ("index_probe", "scan"),
                f"{context}: plan step access "
                f"{step['access']!r} unknown",
            )


def _require_system_report(payload: dict, name: str) -> None:
    if "system_report" not in payload:
        raise BenchValidationError(
            f"{name}: missing section 'system_report'"
        )
    validate_system_report(
        payload["system_report"], f"{name}: system_report"
    )


def _require(payload: dict, name: str, sections: dict) -> None:
    for section, fields in sections.items():
        if section not in payload:
            raise BenchValidationError(f"{name}: missing section {section!r}")
        for field in fields:
            if field not in payload[section]:
                raise BenchValidationError(
                    f"{name}: {section}: missing {field!r}"
                )


def _invariant(condition: bool, message: str) -> None:
    if not condition:
        raise BenchValidationError(message)


# ----------------------------------------------------------------------
# Per-file validators
# ----------------------------------------------------------------------
def validate_engine(payload: dict) -> None:
    _require(
        payload,
        "BENCH_engine",
        {
            "view_evaluation": ("speedup", "extents_equal"),
            "maintenance_propagation": ("speedup", "counters_equal"),
            "synchronize_and_rank": ("speedup", "rankings_identical"),
            "view_evaluation_large": (
                "rows",
                "tuple_seconds",
                "columnar_seconds",
                "speedup",
                "results_equal",
                "tuple_peak_bytes",
                "columnar_peak_bytes",
            ),
        },
    )
    _invariant(
        payload["view_evaluation"]["extents_equal"],
        "view evaluation extents diverged",
    )
    _invariant(
        payload["maintenance_propagation"]["counters_equal"],
        "maintenance counters diverged",
    )
    _invariant(
        payload["synchronize_and_rank"]["rankings_identical"],
        "cached ranking diverged",
    )
    large = payload["view_evaluation_large"]
    _invariant(
        large["results_equal"],
        "columnar evaluation rows diverged from the tuple plane",
    )
    # The tentpole acceptance gate: ≥3x columnar-vs-tuple on full runs.
    # Smoke payloads run the lane at toy scale where the speedup is
    # noise, so only the parity invariant above applies there.
    if not is_smoke(payload):
        _invariant(
            large["speedup"] >= COLUMNAR_SPEEDUP_FLOOR,
            f"columnar speedup {large['speedup']}x below the "
            f"{COLUMNAR_SPEEDUP_FLOOR}x floor",
        )
    _require_system_report(payload, "BENCH_engine")


def validate_sync(payload: dict) -> None:
    _require(
        payload,
        "BENCH_sync",
        {
            "batched_dispatch": ("speedup", "outcomes_equal"),
            "pruned_ranking": (
                "assessed_exhaustive",
                "assessed_pruned",
                "winner_identical",
                "qc_value_equal",
            ),
            "policy_sweep": (),
        },
    )
    _invariant(
        payload["batched_dispatch"]["outcomes_equal"],
        "batched dispatch outcomes diverged",
    )
    ranking = payload["pruned_ranking"]
    _invariant(
        ranking["winner_identical"] and ranking["qc_value_equal"],
        "pruned ranking winner diverged",
    )
    _invariant(
        ranking["assessed_pruned"] <= ranking["assessed_exhaustive"],
        "pruning assessed more than exhaustive",
    )
    _require_system_report(payload, "BENCH_sync")


def validate_scheduler(payload: dict) -> None:
    _require(
        payload,
        "BENCH_scheduler",
        {
            "parallel_storm": (
                "speedup",
                "outcomes_equal",
                "serial_seconds",
                "parallel_seconds",
                "coalesced_searches",
            ),
            "sharded_storm": (
                "workers_speedup",
                "outcomes_equal",
                "serial_seconds",
                "workers_seconds",
                "workers_cold_seconds",
                "workers_warm_seconds",
                "cold_snapshot_bytes",
                "warm_snapshot_bytes",
                "shards",
            ),
            "deadline_sweep": ("unbounded", "zero", "zero_defer"),
        },
    )
    _invariant(
        payload["parallel_storm"]["outcomes_equal"],
        "parallel scheduler outcomes diverged",
    )
    sharded = payload["sharded_storm"]
    _invariant(
        sharded["outcomes_equal"],
        "sharded worker outcomes diverged",
    )
    _invariant(
        sharded["warm_snapshot_bytes"] == 0,
        "warm worker dispatch shipped snapshot bytes",
    )
    _invariant(
        sharded["cold_snapshot_bytes"] > 0,
        "cold bootstrap shipped no snapshot",
    )
    # The PR-7 acceptance gate: ≥3x workers-vs-serial on full runs.
    # Smoke payloads run the lane at toy scale where pool overhead
    # dominates, so only the parity/shipping invariants apply there.
    if not is_smoke(payload):
        _invariant(
            sharded["workers_speedup"] >= WORKERS_SPEEDUP_FLOOR,
            f"workers speedup {sharded['workers_speedup']}x below the "
            f"{WORKERS_SPEEDUP_FLOOR}x floor",
        )
    if "system_report" in sharded:
        validate_system_report(
            sharded["system_report"],
            "BENCH_scheduler: sharded_storm.system_report",
        )
    sweep = payload["deadline_sweep"]
    _invariant(
        sweep["zero_defer"]["resume_matches_serial"],
        "deferral resume diverged from serial outcomes",
    )
    _invariant(
        sweep["unbounded"]["qc_achieved"] >= sweep["zero"]["qc_achieved"],
        "degraded run achieved more QC than unbounded",
    )
    _invariant(
        sweep["unbounded"]["degraded"] == 0,
        "unbounded run degraded views",
    )
    _require_system_report(payload, "BENCH_scheduler")


def validate_maintenance(payload: dict) -> None:
    _require(
        payload,
        "BENCH_maintenance",
        {
            "update_storm": (
                "speedup",
                "tuple_speedup",
                "columnar_speedup",
                "counters_equal",
                "extents_equal",
                "dict_seconds",
                "tuple_seconds",
                "batch_seconds",
                "columnar_seconds",
            ),
        },
    )
    storm = payload["update_storm"]
    _invariant(
        storm["counters_equal"],
        "delta-plane modeled counters diverged across representations",
    )
    _invariant(
        storm["extents_equal"],
        "delta-plane extents diverged across representations",
    )
    _require_system_report(payload, "BENCH_maintenance")


def validate_serving(payload: dict) -> None:
    _require(
        payload,
        "BENCH_serving",
        {
            "idle_reads": ("reads", "p50_ms", "p99_ms"),
            "storm_reads": (
                "reads",
                "p50_ms",
                "p99_ms",
                "p50_ratio",
                "p99_ratio",
                "latency_headroom",
                "torn_reads",
                "versions_observed",
                "storm_seconds",
            ),
            "snapshot_isolation": (
                "reads_match_published_versions",
                "monotonic_versions",
                "copied_untouched_views",
                "publishes",
            ),
            "executor_parity": ("outcomes_equal", "executors"),
        },
    )
    storm = payload["storm_reads"]
    _invariant(
        storm["torn_reads"] == 0,
        "serving reads observed a torn (half-applied) batch",
    )
    isolation = payload["snapshot_isolation"]
    _invariant(
        isolation["reads_match_published_versions"],
        "a serving read diverged from every published serial extent",
    )
    _invariant(
        isolation["monotonic_versions"],
        "snapshot versions observed out of order",
    )
    # The zero-copy invariant: publishing a batch never copies extents
    # of views the batch did not touch.
    _invariant(
        isolation["copied_untouched_views"] == 0,
        "publishing copied extents of views the batch never touched",
    )
    _invariant(
        payload["executor_parity"]["outcomes_equal"],
        "serving-plane outcomes diverged across executors",
    )
    # The PR-9 acceptance gates: median reads stay within 2x of idle on
    # every host, and read p99 stays within 2x of idle p99 on full runs
    # (single-core recording hosts get the documented fair-share
    # allowance — see SERVING_P99_CEILING_SINGLE_CORE).  Smoke payloads
    # run a toy storm where per-read overhead dominates, so only the
    # correctness invariants above apply there.
    if not is_smoke(payload):
        _invariant(
            storm["p50_ratio"] <= SERVING_P50_CEILING,
            f"storm read p50 {storm['p50_ratio']}x idle p50, above the "
            f"{SERVING_P50_CEILING}x ceiling",
        )
        cpus = payload.get("config", {}).get("cpus", 1)
        ceiling = (
            SERVING_P99_CEILING if cpus > 1
            else SERVING_P99_CEILING_SINGLE_CORE
        )
        _invariant(
            storm["p99_ratio"] <= ceiling,
            f"storm read p99 {storm['p99_ratio']}x idle p99, above the "
            f"{ceiling}x ceiling ({cpus} cpu(s))",
        )
    _require_system_report(payload, "BENCH_serving")


VALIDATORS = {
    "engine": validate_engine,
    "sync": validate_sync,
    "scheduler": validate_scheduler,
    "maintenance": validate_maintenance,
    "serving": validate_serving,
}


def bench_name(path: Path) -> str:
    """``BENCH_<name>.json`` -> ``<name>`` (raises on foreign files)."""
    stem = path.name
    if not (stem.startswith("BENCH_") and stem.endswith(".json")):
        raise BenchValidationError(f"not a BENCH file: {path}")
    return stem[len("BENCH_") : -len(".json")]


def validate_payload(name: str, payload: dict) -> None:
    """Structural + invariant validation for one named payload."""
    try:
        validator = VALIDATORS[name]
    except KeyError:
        raise BenchValidationError(
            f"no validator for BENCH_{name}.json "
            f"(known: {', '.join(sorted(VALIDATORS))})"
        ) from None
    validator(payload)


def is_smoke(payload: dict) -> bool:
    """Whether the payload came from a smoke-scale run.

    Older payloads carry no ``config`` block; those predate smoke modes
    and are full runs by construction.
    """
    return bool(payload.get("config", {}).get("smoke"))


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def check_regression(
    name: str,
    current: dict,
    baseline: dict,
    max_regression: float = MAX_REGRESSION,
) -> tuple[str, list[str]]:
    """Compare gated speedups of ``current`` against ``baseline``.

    Returns ``(status, messages)`` where status is ``"ok"``, ``"skip"``
    (modes differ — smoke timings are not comparable with full-run
    baselines), or ``"fail"``.
    """
    if is_smoke(current) != is_smoke(baseline):
        mode = lambda p: "smoke" if is_smoke(p) else "full"  # noqa: E731
        return "skip", [
            f"BENCH_{name}: {mode(current)} run not comparable with "
            f"{mode(baseline)} baseline — speedup gate skipped"
        ]
    messages = []
    status = "ok"
    for section, field in GATED_SPEEDUPS.get(name, ()):
        try:
            was = float(baseline[section][field])
            now = float(current[section][field])
        except (KeyError, TypeError, ValueError):
            messages.append(
                f"BENCH_{name}: {section}.{field} missing from current "
                f"or baseline — failing the gate"
            )
            status = "fail"
            continue
        floor = was * (1.0 - max_regression)
        if now < floor:
            messages.append(
                f"BENCH_{name}: {section}.{field} regressed "
                f"{was:.2f}x -> {now:.2f}x (floor {floor:.2f}x)"
            )
            status = "fail"
        else:
            messages.append(
                f"BENCH_{name}: {section}.{field} {was:.2f}x -> {now:.2f}x OK"
            )
    return status, messages


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="BENCH_*.json files (default: all at the repo root)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=None,
        help="directory holding baseline BENCH files to gate against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=MAX_REGRESSION,
        help="tolerated relative speedup drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    files = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found")
        return 1

    failed = False
    for path in files:
        name = bench_name(path)
        with open(path) as handle:
            payload = json.load(handle)
        try:
            validate_payload(name, payload)
        except BenchValidationError as error:
            print(f"FAIL {path.name}: {error}")
            failed = True
            continue
        print(f"OK   {path.name}")

        if args.baseline_dir is None:
            continue
        baseline_path = args.baseline_dir / path.name
        if not baseline_path.exists():
            print(f"SKIP {path.name}: no baseline in {args.baseline_dir}")
            continue
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        status, messages = check_regression(
            name, payload, baseline, args.max_regression
        )
        for message in messages:
            print(f"{status.upper():4s} {message}")
        failed = failed or status == "fail"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
