"""Figures 9/10: the twelve PC-constraint overlap-estimation cases.

Regenerates the Fig. 10 table — intersection-size estimates for every
combination of PC relationship and selection pattern — and validates each
estimate against a materialized ground truth built to satisfy the
constraint exactly.  Expected: the seven exact cases match the counted
overlap; the five asterisked cases are lower bounds.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.report import format_table
from repro.esql.parser import parse_condition_clause
from repro.misd.constraints import (
    PCConstraint,
    PCRelationship,
    RelationFragment,
)
from repro.misd.statistics import SpaceStatistics
from repro.qc.overlap import estimate_overlap
from repro.relational.expressions import Condition

R1_SIZE, R2_SIZE = 1000, 2000
SIGMA1, SIGMA2 = 0.4, 0.25


def statistics() -> SpaceStatistics:
    stats = SpaceStatistics()
    stats.register_simple("R1", R1_SIZE, selectivity=SIGMA1)
    stats.register_simple("R2", R2_SIZE, selectivity=SIGMA2)
    return stats


def make_pc(relationship, left_selective, right_selective):
    left = Condition(
        [parse_condition_clause("R1.A > 0")]
    ) if left_selective else Condition.true()
    right = Condition(
        [parse_condition_clause("R2.A > 0")]
    ) if right_selective else Condition.true()
    return PCConstraint(
        RelationFragment("R1", ("A",), left),
        RelationFragment("R2", ("A",), right),
        relationship,
    )


def figure10_rows():
    """(selection pattern, REL, estimate, exact?) for all twelve cases."""
    stats = statistics()
    rows = []
    for left in (False, True):
        for right in (False, True):
            pattern = f"{'yes' if left else 'no'}/{'yes' if right else 'no'}"
            for relationship in PCRelationship:
                estimate = estimate_overlap(
                    make_pc(relationship, left, right), stats
                )
                rows.append(
                    (
                        pattern,
                        str(relationship),
                        estimate.size,
                        "exact" if estimate.exact else ">= (min bound)",
                    )
                )
    return rows


@pytest.fixture(scope="module")
def rows():
    return figure10_rows()


def report(rows) -> None:
    emit(
        format_table(
            ["Selections (C1/C2)", "REL", "|R1 ∩~ R2| estimate", "Exactness"],
            rows,
            title=(
                f"Figure 10: overlap estimates (|R1|={R1_SIZE}, "
                f"|R2|={R2_SIZE}, sigma1={SIGMA1}, sigma2={SIGMA2})"
            ),
        )
    )


def test_fig10_report(rows):
    report(rows)


def test_exactly_five_minimum_bounds(rows):
    assert sum(1 for row in rows if "min" in row[3]) == 5


def test_no_no_row_values(rows):
    by_key = {(row[0], row[1]): row[2] for row in rows}
    assert by_key[("no/no", "≡")] == R1_SIZE
    assert by_key[("no/no", "⊆")] == R1_SIZE
    assert by_key[("no/no", "⊇")] == R2_SIZE


def test_yes_yes_row_values(rows):
    by_key = {(row[0], row[1]): row[2] for row in rows}
    assert by_key[("yes/yes", "≡")] == SIGMA1 * R1_SIZE
    assert by_key[("yes/yes", "⊆")] == SIGMA1 * R1_SIZE
    assert by_key[("yes/yes", "⊇")] == SIGMA2 * R2_SIZE


def test_estimates_against_materialized_ground_truth():
    """Build concrete extents honouring each constraint; estimates must be
    exact (seven cases) or lower bounds (five cases), per Fig. 9.

    Cardinalities are chosen per case so the constraint is satisfiable:
    the fragment sizes must respect the claimed set relationship.
    """
    for left_selective in (False, True):
        for right_selective in (False, True):
            for relationship in PCRelationship:
                r1_size = 1000
                f1 = int(SIGMA1 * r1_size) if left_selective else r1_size
                if relationship is PCRelationship.EQUIVALENT:
                    f2 = f1
                elif relationship is PCRelationship.SUBSET:
                    f2 = 2 * f1
                else:  # SUPERSET
                    f2 = f1 // 2
                r2_size = int(f2 / SIGMA2) if right_selective else f2

                # Materialize: F1 = first f1 keys of R1; F2 relates to F1
                # per the relationship; the rest of R2 is disjoint.
                r1 = set(range(r1_size))
                if f2 <= f1:  # F2 inside F1 (≡ or ⊇)
                    fragment2 = set(range(f2))
                else:  # F1 ⊆ F2: extra fragment keys outside R1
                    fragment2 = set(range(f1)) | set(
                        range(1_000_000, 1_000_000 + (f2 - f1))
                    )
                r2 = fragment2 | set(
                    range(2_000_000, 2_000_000 + (r2_size - len(fragment2)))
                )
                truth = len(r1 & r2)

                stats = SpaceStatistics()
                stats.register_simple("R1", r1_size, selectivity=SIGMA1)
                stats.register_simple("R2", r2_size, selectivity=SIGMA2)
                estimate = estimate_overlap(
                    make_pc(relationship, left_selective, right_selective),
                    stats,
                )
                label = (
                    f"{relationship} {'yes' if left_selective else 'no'}/"
                    f"{'yes' if right_selective else 'no'}"
                )
                if estimate.exact:
                    assert estimate.size == pytest.approx(truth, rel=0.01), label
                else:
                    assert estimate.size <= truth + 1, label


def test_benchmark_fig10(benchmark):
    result = benchmark(figure10_rows)
    assert len(result) == 12
    report(result)
