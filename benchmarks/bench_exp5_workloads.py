"""Experiment 5 (Sec. 7.5, Tables 5/6, Fig. 16): workload models.

Two parts:

* **Table 5 / workload M1** — the Experiment 4 candidate set priced under
  updates proportional to relation size (1 per 100 tuples).  Absolute
  costs change but min-max normalization (Eq. 25) absorbs the scaling, so
  the QC values and ratings are identical to Table 4's.
* **Table 6 / Fig. 16 / workload M3** — the Experiment 2 scenarios priced
  under 10 updates per source per time unit, averaged over every Table 2
  distribution and update origin.  All three aggregate cost factors grow
  superlinearly with the number of sources, so M3 favours rewritings with
  the fewest ISs.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.report import format_table
from repro.qc.cost import cf_bytes, cf_io, cf_messages_counted
from repro.qc.model import QCModel
from repro.qc.params import TradeoffParameters
from repro.qc.workload import WorkloadModel, WorkloadSpec, _reroot_builder
from repro.space.changes import DeleteRelation
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_cardinality_scenario, site_scenarios

UPDATES_PER_SOURCE = 10  # Table 6's M3 rate
M1_RATE = 0.01  # Table 5's "1 update per 100 tuples"


# ----------------------------------------------------------------------
# Part 1: Table 5 (M1 leaves the ranking unchanged)
# ----------------------------------------------------------------------
def run_table5():
    scenario = build_cardinality_scenario()
    scenario.space.delete_relation("R2")
    synchronizer = ViewSynchronizer(scenario.space.mkb)
    rewritings = synchronizer.synchronize(
        scenario.view, DeleteRelation("IS1", "R2")
    )
    rewritings.sort(key=lambda r: r.moves[-1].new_relation)
    named = [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]
    model = QCModel(scenario.space.mkb, TradeoffParameters())
    single = model.evaluate(named, updated_relation="R1")
    m1 = model.evaluate(
        named,
        workload=WorkloadSpec(WorkloadModel.M1_PROPORTIONAL, M1_RATE),
        updated_relation="R1",
    )
    return single, m1


@pytest.fixture(scope="module")
def table5():
    return run_table5()


def report_table5(table5) -> None:
    single, m1 = table5
    single_by = {e.name: e for e in single}
    rows = []
    for evaluation in sorted(m1, key=lambda e: e.name):
        base = single_by[evaluation.name]
        rows.append(
            [
                evaluation.name,
                f"{base.cost.total:.1f}",
                f"{evaluation.cost.total:.1f}",
                f"{evaluation.normalized_cost:.4f}",
                f"{evaluation.qc:.5f}",
                evaluation.rank,
            ]
        )
    emit(
        format_table(
            ["Rewriting", "Cost (single)", "Cost (M1)", "Cost*", "QC", "Rating"],
            rows,
            title="Table 5: workload M1 — normalization absorbs the scaling",
        )
    )


def test_table5_report(table5):
    report_table5(table5)


def test_table5_m1_preserves_qc_and_rating(table5):
    single, m1 = table5
    single_by = {e.name: e for e in single}
    for evaluation in m1:
        base = single_by[evaluation.name]
        assert evaluation.qc == pytest.approx(base.qc, abs=1e-4)
        assert evaluation.rank == base.rank


def test_table5_m1_costs_scale_with_cardinality(table5):
    single, m1 = table5
    single_by = {e.name: e.cost.total for e in single}
    m1_by = {e.name: e.cost.total for e in m1}
    # Bigger substitutes face proportionally more updates, so the M1/single
    # cost ratio grows along V1..V5.
    ratios = [m1_by[f"V{i}"] / single_by[f"V{i}"] for i in range(1, 6)]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))


# ----------------------------------------------------------------------
# Part 2: Table 6 / Fig. 16 (M3 over the site scenarios)
# ----------------------------------------------------------------------
def run_table6():
    """(m, #updates, CF_M, CF_T, CF_IO) aggregated per time unit."""
    rows = []
    params = TradeoffParameters()
    for sites in range(1, 7):
        scenarios = site_scenarios(sites)
        totals = [0.0, 0.0, 0.0]
        for scenario in scenarios:
            reroot = _reroot_builder(scenario.plan)
            spec = WorkloadSpec(WorkloadModel.M3_PER_SOURCE, UPDATES_PER_SOURCE)
            counts = spec.update_counts(scenario.plan, scenario.statistics)
            for relation, count in counts.items():
                plan = reroot(relation)
                totals[0] += count * cf_messages_counted(plan)
                totals[1] += count * cf_bytes(plan, scenario.statistics)
                totals[2] += count * cf_io(plan, scenario.statistics)
        count = len(scenarios)
        rows.append(
            (
                sites,
                UPDATES_PER_SOURCE * sites,
                totals[0] / count,
                totals[1] / count,
                totals[2] / count,
            )
        )
    return rows


@pytest.fixture(scope="module")
def table6():
    return run_table6()


def report_table6(table6) -> None:
    emit(
        format_table(
            ["Sites", "#updates", "CF_M", "CF_T bytes", "CF_IO"],
            table6,
            title=(
                "Table 6 / Fig. 16: M3 workload (10 updates per source), "
                "averaged over Table 2 distributions"
            ),
        )
    )


def test_table6_report(table6):
    report_table6(table6)


def test_table6_matches_paper_rows(table6):
    """The paper's Table 6 values, per update-origin averaging."""
    expected = {
        1: (10, 30, 8000, 310),
        2: (20, 92, 27200, 620),
        3: (30, 186, 57600, 930),
        4: (40, 312, 99200, 1240),
        5: (50, 470, 152000, 1550),
        6: (60, 660, 216000, 1860),
    }
    for sites, updates, cf_m, cf_t, cf_i in table6:
        want = expected[sites]
        assert updates == want[0]
        assert cf_m == pytest.approx(want[1], rel=1e-9)
        assert cf_t == pytest.approx(want[2], rel=1e-9)
        assert cf_i == pytest.approx(want[3], rel=1e-9)


def test_fig16_every_factor_grows_with_sites(table6):
    for column in (2, 3, 4):
        values = [row[column] for row in table6]
        assert all(a < b for a, b in zip(values, values[1:]))


def test_benchmark_table5(benchmark):
    single, m1 = benchmark(run_table5)
    assert len(m1) == 5
    report_table5((single, m1))


def test_benchmark_table6(benchmark):
    rows = benchmark(run_table6)
    assert len(rows) == 6
    report_table6(rows)
