"""Serving-plane benchmark: snapshot reads during an evolution storm.

The PR-9 acceptance scenario: an online serving plane answers
multi-view snapshot reads *while* the 1k-view evolution storm commits
on the same system, and the mixed read/write latency profile shows the
MVCC read path never blocking on writers.

Three measured lanes over one populated evolution-storm space:

1. **Idle reads** — paced reader threads perform multi-view snapshot
   scans (pin a version, scan a batch of view extents row by row,
   release, think) against a quiescent system: the latency baseline.
2. **Storm reads** — the identical paced read loop runs concurrently
   with the full capability-change storm, which the writer replays as
   a sequential batch stream (one atomic version publish per batch) on
   the persistent worker pool — the production executor, whose
   GIL-releasing IPC waits leave the serving core to the readers.
   Readers are paced with ~Poisson think time rather than busy-looped:
   a saturating closed loop on a small host measures CPU fair-share
   scheduling, not serving latency — pacing is how YCSB-style latency
   benchmarks isolate per-request cost.  Reported: p50/p99 during the
   storm, the p99 ratio against idle, the versions each reader
   observed, and the torn-read count — every read is checked against
   the serial per-version extent digest, so a read that mixed two
   batches cannot hide.
3. **Executor parity** — the same storm plus a tail update stream
   replayed under the ``serial``, ``threads``, ``processes``, and
   ``workers`` executors: committed winners, QC-Values, extent
   digests, and modeled CF_M/CF_T/CF_IO counters must be
   byte-identical in every lane.

Correctness gates (all modes): zero torn reads, monotone versions per
reader, zero copy-on-write copies (the storm rematerializes extents —
views a batch does not touch must share their Relation object across
versions), executor parity.  Full runs additionally gate the headline
latency target: storm-time read p99 within 2x of idle p99.

Results are persisted as machine-readable ``BENCH_serving.json`` at
the repo root (via :func:`conftest.emit_json`).  Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

``--smoke`` shrinks every scale so CI can assert the harness stays
healthy in seconds.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import emit, emit_json  # noqa: E402

from repro.config import ScheduleConfig, SystemConfig  # noqa: E402
from repro.core.eve import EVESystem  # noqa: E402
from repro.core.report import format_table  # noqa: E402
from repro.workloadgen.scenarios import (  # noqa: E402
    build_evolution_storm_scenario,
)


def _populate(space, rows_per_relation: int, seed: int) -> None:
    """Give every (empty) storm relation real rows so reads scan data."""
    rng = random.Random(seed)
    for name, relation in space.relations().items():
        width = len(relation.schema.attributes)
        relation.insert_many(
            tuple(rng.randrange(10_000) for _ in range(width))
            for _ in range(rows_per_relation)
        )


def _build_system(storm_args, config=None):
    scenario = build_evolution_storm_scenario(**storm_args["scenario"])
    _populate(scenario.space, storm_args["rows"], storm_args["seed"])
    eve = EVESystem(space=scenario.space, config=config)
    for view in scenario.views:
        eve.define_view(view)  # materialized: the serving working set
    batches = _split(scenario.changes, storm_args["batches"])
    return eve, batches


def _split(changes, count):
    """Contiguous near-equal batches, preserving replay-safe order."""
    count = max(1, min(count, len(changes)))
    size, remainder = divmod(len(changes), count)
    batches, cursor = [], 0
    for index in range(count):
        width = size + (1 if index < remainder else 0)
        batches.append(changes[cursor : cursor + width])
        cursor += width
    return batches


def _digest(relation) -> int:
    """Order-insensitive row digest (multiset fingerprint)."""
    total = 0
    for row in relation.rows:
        total ^= hash(row)
    return hash((len(relation.rows), total))


def _extent_digests(eve) -> dict[str, int]:
    with eve.snapshot() as snapshot:
        return {
            name: _digest(snapshot.extent(name))
            for name in snapshot.names()
        }


def _fingerprint(eve):
    return [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _latency_stats(samples_ms):
    ordered = sorted(samples_ms)
    return {
        "reads": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50), 6),
        "p99_ms": round(_percentile(ordered, 0.99), 6),
        "mean_ms": round(
            sum(ordered) / len(ordered) if ordered else 0.0, 6
        ),
    }


def _read_once(eve, rng, views_per_read):
    """One serving read: pin, scan several views, digest, release."""
    t0 = perf_counter()
    with eve.snapshot() as snapshot:
        names = snapshot.names()
        picks = [
            names[rng.randrange(len(names))] for _ in range(views_per_read)
        ]
        reads = [
            (snapshot.version, name, _digest(snapshot.extent(name)))
            for name in picks
        ]
    return (perf_counter() - t0) * 1000.0, reads


# ----------------------------------------------------------------------
# Lane 1+2: idle baseline, then reads during the storm
# ----------------------------------------------------------------------
def bench_reads(readers, views_per_read, idle_reads, think_s, storm_args):
    # The latency lane runs the storm on the persistent worker pool —
    # the production executor (PR 7) and the configuration a real
    # single-core serving host needs: synchronization compute runs in
    # the worker processes while the parent waits on IPC with the GIL
    # released, so the serving threads keep the core during the storm.
    eve, batches = _build_system(
        storm_args, SystemConfig.sharded(storm_args["shards"])
    )
    eve.snapshot().release()  # arm serving before any concurrent writer

    # Serial per-version extent digests: replay the identical batch
    # stream on a reference system, recording the digest map after
    # every publish — the oracle every concurrent read is checked
    # against.
    reference, ref_batches = _build_system(storm_args)
    reference.snapshot().release()
    oracle = {0: _extent_digests(reference)}
    for batch in ref_batches:
        reference.apply_changes(batch)
        oracle[reference._extents.version] = _extent_digests(reference)
    reference_fp = _fingerprint(reference)
    del reference

    # Warm the writer before measurement: the first batch pays the
    # worker pool's cold bootstrap (one big snapshot pickle — an
    # uninterruptible GIL hold that is PR 7's amortized-cold-start
    # story, measured in bench_scheduler.py, not a read-latency
    # story).  The measured storm below runs against a warm pool, the
    # steady state a serving deployment lives in.
    warmup, *batches = batches
    eve.apply_changes(warmup)

    # Idle baseline: the same paced read loop, quiescent system.
    rng = random.Random(97)
    idle_samples = []
    for _ in range(idle_reads):
        ms, _reads = _read_once(eve, rng, views_per_read)
        idle_samples.append(ms)
        time.sleep(rng.expovariate(1.0 / think_s) if think_s else 0)

    # Storm: paced reader threads vs the sequential batch stream.
    stop = threading.Event()
    samples = [[] for _ in range(readers)]
    observations = [[] for _ in range(readers)]
    errors = []

    def reader(slot):
        thread_rng = random.Random(1000 + slot)
        try:
            while not stop.is_set():
                ms, reads = _read_once(eve, thread_rng, views_per_read)
                samples[slot].append(ms)
                observations[slot].append(reads)
                if think_s:
                    stop.wait(thread_rng.expovariate(1.0 / think_s))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(readers)
    ]
    storm_start = perf_counter()
    for thread in threads:
        thread.start()
    try:
        for batch in batches:
            eve.apply_changes(batch)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
    storm_seconds = perf_counter() - storm_start
    eve.close()
    if errors:
        raise SystemExit(f"reader thread failed: {errors[0]!r}")

    # Verify every concurrent read against the serial oracle.
    torn = 0
    monotonic = True
    versions_observed = set()
    for slot in range(readers):
        last_version = -1
        for reads in observations[slot]:
            for version, name, digest in reads:
                versions_observed.add(version)
                if version < last_version:
                    monotonic = False
                last_version = max(last_version, version)
                expected = oracle.get(version, {}).get(name)
                if expected != digest:
                    torn += 1

    storm_samples = [ms for slot in samples for ms in slot]
    idle = _latency_stats(idle_samples)
    storm = _latency_stats(storm_samples)
    p50_ratio = (
        storm["p50_ms"] / idle["p50_ms"] if idle["p50_ms"] else 0.0
    )
    p99_ratio = (
        storm["p99_ms"] / idle["p99_ms"] if idle["p99_ms"] else 0.0
    )
    storm.update(
        {
            "readers": readers,
            "views_per_read": views_per_read,
            "storm_seconds": round(storm_seconds, 6),
            "batches": len(batches),
            "p50_ratio": round(p50_ratio, 4),
            "p99_ratio": round(p99_ratio, 4),
            "latency_headroom": round(
                idle["p99_ms"] / storm["p99_ms"] if storm["p99_ms"] else 0.0,
                6,
            ),
            "torn_reads": torn,
            "versions_observed": len(versions_observed),
            "monotonic_versions": monotonic,
        }
    )
    isolation = {
        "reads_match_published_versions": torn == 0,
        "monotonic_versions": monotonic,
        # The storm rematerializes touched extents as fresh Relations;
        # any copy-on-write copy would mean an untouched view paid for
        # a batch it never appeared in.
        "copied_untouched_views": eve._extents.copies,
        "publishes": eve._extents.publishes,
        "pins_leaked": eve._extents.active_pins,
        "matches_serial_reference": _fingerprint(eve) == reference_fp,
    }
    return idle, storm, isolation, eve.last_report.to_dict()


# ----------------------------------------------------------------------
# Lane 3: executor parity (winners/QC/extents/CF counters)
# ----------------------------------------------------------------------
def bench_executor_parity(updates_per_relation, storm_args):
    """Replay storm + tail updates under every executor; compare all."""
    # Parity is about outcomes, not latency: small extents keep the
    # four full-system replays affordable without weakening the check.
    storm_args = {**storm_args, "rows": min(storm_args["rows"], 80)}
    lanes = {
        "serial": None,
        "threads": SystemConfig.fast(),
        "processes": SystemConfig(
            schedule=ScheduleConfig(
                executor="processes",
                max_workers=storm_args["workers"],
                coalesce=True,
            )
        ),
        "workers": SystemConfig.sharded(storm_args["shards"]),
    }
    outcomes = {}
    for label, config in lanes.items():
        eve, batches = _build_system(storm_args, config)
        eve.snapshot().release()
        qc = []
        for batch in batches:
            results = eve.apply_changes(batch)
            qc.extend(
                (r.view_name, r.chosen.qc if r.chosen else None)
                for r in results
            )
        # Tail update stream: CF_M/CF_T/CF_IO parity across executors.
        survivors = [
            name
            for name in eve.space.relations()
            if name.startswith("Rel") and eve.space.has_relation(name)
        ]
        stream = [
            (name, "insert", (7_000 + step, step, step))
            for name in sorted(survivors)[:4]
            for step in range(updates_per_relation)
        ]
        counters = eve.apply_updates(stream)
        outcomes[label] = {
            "fingerprint": _fingerprint(eve),
            "qc": qc,
            "extents": _extent_digests(eve),
            "cf": (
                counters.messages,
                counters.bytes_transferred,
                counters.io_operations,
            ),
        }
        eve.close()
        del eve
    reference = outcomes["serial"]
    rows = {}
    equal = True
    for label, lane in outcomes.items():
        same = all(
            lane[key] == reference[key]
            for key in ("fingerprint", "qc", "extents", "cf")
        )
        equal = equal and same
        rows[label] = same
    return {
        "outcomes_equal": equal,
        "executors": sorted(lanes),
        "per_executor_equal": rows,
        "cf_counters": {
            "messages": reference["cf"][0],
            "bytes_transferred": reference["cf"][1],
            "io_operations": reference["cf"][2],
        },
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales: assert harness health, not performance",
    )
    args = parser.parse_args(argv)

    # Serving-process tuning, same as any latency-sensitive CPython
    # service: the default 5 ms GIL switch interval lets a CPU-bound
    # writer stretch read tails by whole multiples of a millisecond-
    # scale read.  1 ms bounds the scheduling artifact so the p99
    # ratio measures blocking (the thing MVCC removes), not the
    # interpreter's quantum.
    sys.setswitchinterval(0.001)

    if args.smoke:
        storm_args = dict(
            scenario=dict(
                views=60,
                view_relations=12,
                spare_relations=6,
                changes=12,
                hot_renames=4,
                replacement_deletes=2,
            ),
            rows=40,
            seed=11,
            batches=3,  # 1 warm-up + 2 measured
            workers=2,
            shards=2,
        )
        readers = 2
        views_per_read = 4
        idle_reads = 200
        think_s = 0.002
        updates_per_relation = 3
    else:
        storm_args = dict(
            scenario=dict(views=1000),  # the full 1k-view storm defaults
            rows=1000,
            seed=11,
            batches=6,  # 1 warm-up + 5 measured
            workers=min(8, max(2, (os.cpu_count() or 1))),
            shards=4,
        )
        readers = 2
        views_per_read = 16
        idle_reads = 300
        think_s = 0.020
        updates_per_relation = 10

    idle, storm, isolation, system_report = bench_reads(
        readers, views_per_read, idle_reads, think_s, storm_args
    )
    emit(
        format_table(
            ["metric", "idle", "during storm"],
            [
                ["reads", idle["reads"], storm["reads"]],
                ["p50 (ms)", f"{idle['p50_ms']:.4f}", f"{storm['p50_ms']:.4f}"],
                ["p99 (ms)", f"{idle['p99_ms']:.4f}", f"{storm['p99_ms']:.4f}"],
                ["mean (ms)", f"{idle['mean_ms']:.4f}", f"{storm['mean_ms']:.4f}"],
                ["p50 ratio", "-", f"{storm['p50_ratio']:.2f}x"],
                ["p99 ratio", "-", f"{storm['p99_ratio']:.2f}x"],
                ["storm wall (s)", "-", f"{storm['storm_seconds']:.3f}"],
                ["versions observed", "-", storm["versions_observed"]],
                ["torn reads", "-", storm["torn_reads"]],
            ],
            title=(
                f"Snapshot reads ({readers} readers x "
                f"{views_per_read} views/read, "
                f"{storm['batches']}-batch storm)"
            ),
        )
    )
    emit(
        format_table(
            ["invariant", "value"],
            [
                [
                    "reads match published versions",
                    isolation["reads_match_published_versions"],
                ],
                ["monotone versions", isolation["monotonic_versions"]],
                ["COW copies (untouched)", isolation["copied_untouched_views"]],
                ["versions published", isolation["publishes"]],
                ["pins leaked", isolation["pins_leaked"]],
                [
                    "storm matches serial reference",
                    isolation["matches_serial_reference"],
                ],
            ],
            title="Snapshot isolation",
        )
    )

    parity = bench_executor_parity(updates_per_relation, storm_args)
    emit(
        format_table(
            ["executor", "outcomes identical"],
            [
                [label, parity["per_executor_equal"][label]]
                for label in parity["executors"]
            ],
            title="Executor parity (winners + QC + extents + CF counters)",
        )
    )

    if storm["torn_reads"]:
        raise SystemExit(f"{storm['torn_reads']} torn reads observed")
    if not isolation["monotonic_versions"]:
        raise SystemExit("a reader observed versions out of order")
    if isolation["copied_untouched_views"]:
        raise SystemExit(
            f"{isolation['copied_untouched_views']} copy-on-write copies "
            f"during a rematerializing storm (expected 0)"
        )
    if isolation["pins_leaked"]:
        raise SystemExit(f"{isolation['pins_leaked']} snapshot pins leaked")
    if not isolation["matches_serial_reference"]:
        raise SystemExit("storm outcomes diverged from serial reference")
    if not parity["outcomes_equal"]:
        raise SystemExit("executor lanes diverged")
    if not args.smoke:
        # Mirrors validate_bench.py: the median gate holds on every
        # host; the p99 ceiling is 2x on multi-core hosts, with a
        # documented OS-fair-share allowance when the recording host
        # has a single core (reader and writer split the one core
        # 50/50 before any lock enters the picture).
        cpus = os.cpu_count() or 1
        p99_ceiling = 2.0 if cpus > 1 else 8.0
        if storm["p50_ratio"] > 2.0:
            raise SystemExit(
                f"storm read p50 {storm['p50_ratio']:.2f}x idle p50 "
                f"(target 2x)"
            )
        if storm["p99_ratio"] > p99_ceiling:
            raise SystemExit(
                f"storm read p99 {storm['p99_ratio']:.2f}x idle p99 "
                f"(ceiling {p99_ceiling}x on {cpus} cpu(s))"
            )

    path = emit_json(
        "serving",
        {
            "idle_reads": idle,
            "storm_reads": storm,
            "snapshot_isolation": isolation,
            "executor_parity": parity,
            "system_report": system_report,
            "config": {
                "smoke": args.smoke,
                "readers": readers,
                "views_per_read": views_per_read,
                "think_ms": think_s * 1000,
                "cpus": os.cpu_count() or 1,
                **storm_args,
            },
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
