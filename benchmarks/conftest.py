"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables); the ``benchmark`` fixture times the computation that produces it.

Benchmarks that want a machine-readable trail call
:func:`emit_json(name, payload)`, which persists the payload as
``BENCH_<name>.json`` at the repo root — the seed of the performance
trajectory CI and future sessions compare against.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def emit(text: str) -> None:
    """Print a regenerated table with surrounding whitespace."""
    print()
    print(text)
    print()


def emit_json(name: str, payload: dict) -> Path:
    """Persist ``payload`` as ``BENCH_<name>.json`` at the repo root.

    Returns the written path.  Keys are sorted so reruns produce stable
    diffs; the payload must be JSON-serializable.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
