"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables); the ``benchmark`` fixture times the computation that produces it.
"""

from __future__ import annotations


def emit(text: str) -> None:
    """Print a regenerated table with surrounding whitespace."""
    print()
    print(text)
    print()
