"""The heuristic view synchronizer (Sec. 8 future work) vs exhaustive QC.

Measures, over randomized synchronization problems, how often the
beam-pruned :class:`~repro.sync.heuristic.HeuristicSynchronizer` returns
the same rewriting as evaluating every candidate, how much of the
candidate set it skipped, and the wall-clock ratio of the two approaches.

A noteworthy measured effect: agreement is *not monotone* in the beam
width.  Eq. 25 normalizes costs relative to the evaluated set, so a
2-candidate beam sees different COST* values (and can make a different
choice) than the full set — beam width 1 sidesteps normalization entirely
and just trusts the heuristic order.  Only the full beam is guaranteed to
reproduce the exhaustive choice.  This is an inherent property of
set-relative normalization, worth knowing before deploying pruning.
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import emit
from bench_heuristics import build_problem
from repro.core.report import format_table
from repro.qc.model import QCModel
from repro.qc.params import TradeoffParameters
from repro.space.changes import DeleteRelation
from repro.sync.heuristic import HeuristicSynchronizer
from repro.sync.synchronizer import ViewSynchronizer

TRIALS = 30
BEAM_WIDTHS = (1, 2, 3, 5)


def run_study(seed: int = 77):
    rng = random.Random(seed)
    params = TradeoffParameters()
    problems = []
    for _ in range(TRIALS):
        space, view = build_problem(rng)
        space.delete_relation("R2")
        problems.append((space, view))

    rows = []
    for beam_width in BEAM_WIDTHS:
        agreements = 0
        pruned_total = 0.0
        heuristic_time = 0.0
        exhaustive_time = 0.0
        usable = 0
        for space, view in problems:
            change = DeleteRelation("IS1", "R2")
            base = ViewSynchronizer(space.mkb)
            started = time.perf_counter()
            candidates = base.synchronize(view, change)
            if len(candidates) < 2:
                continue
            usable += 1
            exhaustive = QCModel(space.mkb, params).best(
                candidates, updated_relation="R1"
            )
            exhaustive_time += time.perf_counter() - started

            started = time.perf_counter()
            outcome = HeuristicSynchronizer(
                space.mkb, params, beam_width=beam_width
            ).synchronize_best(view, change, updated_relation="R1")
            heuristic_time += time.perf_counter() - started

            pruned_total += outcome.pruned_fraction
            if outcome.chosen.rewriting.view == exhaustive.rewriting.view:
                agreements += 1
        rows.append(
            (
                beam_width,
                f"{agreements}/{usable}",
                f"{pruned_total / usable:.0%}",
                f"{heuristic_time / exhaustive_time:.2f}x",
            )
        )
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_study()


def report(rows) -> None:
    emit(
        format_table(
            ["Beam width", "Agreement", "Candidates pruned (avg)",
             "Time vs exhaustive"],
            rows,
            title="Heuristic synchronizer (Sec. 8 future work) vs exhaustive",
        )
    )


def test_heuristic_sync_report(rows):
    report(rows)


def test_full_beam_is_exact_and_all_beams_are_usable(rows):
    def agreed(row):
        numerator, denominator = row[1].split("/")
        return int(numerator) / int(denominator)

    rates = [agreed(row) for row in rows]
    # Agreement is NOT monotone in beam width (set-relative Eq. 25
    # normalization — see module docstring); but every beam stays usable
    # and the full beam reproduces the exhaustive choice exactly.
    assert all(rate >= 0.6 for rate in rates)
    assert rates[-1] == 1.0


def test_narrow_beams_prune_substantially(rows):
    pruned = float(rows[0][2].rstrip("%")) / 100
    assert pruned >= 0.4


def test_benchmark_heuristic_sync(benchmark):
    result = benchmark(run_study)
    assert len(result) == len(BEAM_WIDTHS)
    report(result)
