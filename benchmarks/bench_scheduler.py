"""Scheduler benchmarks: serial reference vs cost-aware parallel dispatch.

Three timed scenarios over replacement-heavy salvage storms (every view
needs a replacement search over a donor spectrum — the workload the
cross-view scheduler exists for):

1. **Parallel storm** — the serial reference scheduler replays every
   affected view one after the other; the parallel scheduler dispatches
   chain groups to a thread pool *and coalesces* structurally identical
   searches (one search per definition-modulo-name + worklist class,
   results rebound to every follower).  Committed winners, QC-Values,
   and extents must be identical — the speedup is pure scheduling.  An
   ablation row reports the thread executor with coalescing off, so the
   JSON shows honestly where the win comes from on a given machine
   (coalescing is CPU-count-independent; executor parallelism is not,
   and equals ~1x on a single-core GIL-bound host).
2. **Sharded storm** — the 100k-view storm replayed as a sequential
   batch stream through four executors: serial reference, threads +
   coalescing, per-batch fork (``processes``), and the persistent
   worker pool (``workers``) over a sharded VKB.  The workers lane
   separates the cold first batch (pool spawn + per-shard snapshot
   shipping) from the warm remainder, where only deltas and committed
   rewritings cross the wire — warm batches must ship zero snapshot
   bytes, and all lanes must commit byte-identical outcomes.
3. **Deadline sweep** — the same storm under shrinking wall-clock
   budgets with ``degrade="first_legal"``: views scheduled past the
   budget fall back to the old-EVE first-legal policy
   (cheapest-to-salvage views, scheduled first, keep full QC ranking).
   Reported per budget: degraded view count and total QC achieved —
   the quality/cost trade-off curve the budget buys.  A zero-budget
   ``degrade="defer"`` run plus :meth:`EVESystem.resume_deferred`
   round-trips the deferral path.

Results are persisted as machine-readable ``BENCH_scheduler.json`` at
the repo root (via :func:`conftest.emit_json`).  Run directly::

    PYTHONPATH=src python benchmarks/bench_scheduler.py [--smoke]

``--smoke`` shrinks every scale so CI can assert the harness stays
healthy in seconds.  Full runs enforce >=2x parallel speedup with
identical outcomes.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import emit, emit_json  # noqa: E402

from repro.config import ScheduleConfig  # noqa: E402
from repro.core.eve import EVESystem  # noqa: E402
from repro.core.report import format_table  # noqa: E402
from repro.sync.scheduler import SynchronizationScheduler  # noqa: E402
from repro.workloadgen.scenarios import (  # noqa: E402
    build_scheduler_stress_scenario,
    build_sharded_storm_scenario,
)


def _stress_system(**stress_args) -> tuple[EVESystem, list]:
    scenario = build_scheduler_stress_scenario(**stress_args)
    eve = EVESystem(space=scenario.space)
    for view in scenario.views:
        eve.define_view(view, materialize=False)
    return eve, scenario.changes


def _fingerprint(eve: EVESystem) -> list[tuple]:
    # Structural ViewDefinition equality (order-sensitive), not repr:
    # outcomes_equal must catch any divergence, not just the interface.
    return [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]


def _run(scheduler: SynchronizationScheduler | None, **stress_args):
    eve, changes = _stress_system(**stress_args)
    start = perf_counter()
    if scheduler is None:
        results = eve.apply_changes(changes)
    else:
        results = eve.apply_changes(changes, scheduler=scheduler)
    seconds = perf_counter() - start
    return eve, results, seconds


# ----------------------------------------------------------------------
# Scenario 1: serial reference vs parallel + coalescing scheduler
# ----------------------------------------------------------------------
def bench_parallel_storm(workers: int, **stress_args) -> tuple[dict, dict]:
    serial_eve, serial_results, serial_seconds = _run(None, **stress_args)

    parallel = SynchronizationScheduler(
        ScheduleConfig(executor="threads", max_workers=workers, coalesce=True)
    )
    parallel_eve, parallel_results, parallel_seconds = _run(
        parallel, **stress_args
    )

    # Ablation: executor parallelism alone, no search coalescing.
    threads_only = SynchronizationScheduler(
        ScheduleConfig(executor="threads", max_workers=workers)
    )
    _, _, threads_only_seconds = _run(threads_only, **stress_args)

    outcomes_equal = _fingerprint(serial_eve) == _fingerprint(parallel_eve)
    qc_equal = [
        (r.view_name, r.chosen.qc if r.chosen else None)
        for r in serial_results
    ] == [
        (r.view_name, r.chosen.qc if r.chosen else None)
        for r in parallel_results
    ]
    # The scheduling facts come from the run's SystemReport — the
    # serializable surface the system now exposes for exactly this.
    system_report = parallel_eve.last_report.to_dict()
    (batch,) = system_report["schedule"]["batches"]
    storm = {
        "views": stress_args.get("views", 1000),
        "changes": stress_args.get("view_relations", 100),
        "synchronizations": len(
            system_report["synchronization"]["views"]
        ),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "threads_only_seconds": threads_only_seconds,
        "threads_only_speedup": (
            serial_seconds / threads_only_seconds
            if threads_only_seconds
            else 0.0
        ),
        "outcomes_equal": outcomes_equal and qc_equal,
        "coalesced_searches": batch["coalesced"],
        "workers": batch["workers"],
        "executor": batch["executor"],
        "cpu_count": os.cpu_count() or 1,
    }
    return storm, system_report


# ----------------------------------------------------------------------
# Scenario 2: persistent workers over a sharded VKB (batch stream)
# ----------------------------------------------------------------------
def _replay_sharded(scheduler, **storm_args):
    """Replay the sharded storm's batch stream on a fresh system.

    Returns the per-batch wall clocks, the committed (view, QC) pairs,
    the per-batch :class:`~repro.report.SystemReport` payloads, and the
    final VKB fingerprint — everything the lane comparison needs, with
    the system itself released so four lanes never coexist in memory.
    """
    scenario = build_sharded_storm_scenario(**storm_args)
    eve = EVESystem(space=scenario.space)
    for view in scenario.views:
        eve.define_view(view, materialize=False)
    qc = []
    seconds = []
    reports = []
    for batch in scenario.change_batches:
        start = perf_counter()
        if scheduler is None:
            results = eve.apply_changes(batch)
        else:
            results = eve.apply_changes(batch, scheduler=scheduler)
        seconds.append(perf_counter() - start)
        qc.extend(
            (r.view_name, r.chosen.qc if r.chosen else None)
            for r in results
        )
        reports.append(eve.last_report.to_dict())
    return seconds, qc, reports, _fingerprint(eve)


def _shard_totals(report: dict) -> dict:
    """Sum the per-shard dispatch accounting of one report payload."""
    totals = {
        "snapshot_bytes": 0,
        "bytes_shipped": 0,
        "bytes_received": 0,
        "worker_seconds": 0.0,
    }
    for row in report["schedule"]["shards"]:
        for field in totals:
            totals[field] += row[field]
    return totals


def bench_sharded_storm(
    shards: int, workers: int, **storm_args
) -> tuple[dict, dict]:
    """Serial vs threads vs fork vs persistent workers on the storm.

    All lanes replay the identical batch stream; committed winners,
    QC-Values, and VKB fingerprints must be byte-identical.  The
    workers lane separates the cold first batch (pool spawn + snapshot
    shipping) from the warm remainder (delta shipping only), and
    asserts the warm batches ship no snapshot bytes at all.
    """
    from repro.sync.scheduler import _fork_available

    serial_seconds, serial_qc, _, serial_fp = _replay_sharded(
        None, **storm_args
    )

    threads = SynchronizationScheduler(
        ScheduleConfig(executor="threads", max_workers=workers, coalesce=True)
    )
    threads_seconds, threads_qc, _, threads_fp = _replay_sharded(
        threads, **storm_args
    )
    threads_equal = threads_fp == serial_fp and threads_qc == serial_qc
    del threads_fp

    fork_total = None
    fork_equal = True
    if _fork_available():
        fork = SynchronizationScheduler(
            ScheduleConfig(
                executor="processes", max_workers=workers, coalesce=True
            )
        )
        fork_seconds, fork_qc, _, fork_fp = _replay_sharded(
            fork, **storm_args
        )
        fork_total = sum(fork_seconds)
        fork_equal = fork_fp == serial_fp and fork_qc == serial_qc
        del fork_fp

    pool = SynchronizationScheduler(
        ScheduleConfig(
            executor="workers",
            shards=shards,
            max_workers=workers,
            coalesce=True,
        )
    )
    try:
        workers_seconds, workers_qc, workers_reports, workers_fp = (
            _replay_sharded(pool, **storm_args)
        )
    finally:
        pool.close()
    workers_equal = workers_fp == serial_fp and workers_qc == serial_qc

    cold_totals = _shard_totals(workers_reports[0])
    warm_totals = {
        "snapshot_bytes": 0,
        "bytes_shipped": 0,
        "bytes_received": 0,
        "worker_seconds": 0.0,
    }
    for report in workers_reports[1:]:
        for field, value in _shard_totals(report).items():
            warm_totals[field] += value

    serial_total = sum(serial_seconds)
    threads_total = sum(threads_seconds)
    workers_total = sum(workers_seconds)
    workers_warm = sum(workers_seconds[1:])
    serial_warm = sum(serial_seconds[1:])
    storm = {
        "views": storm_args.get("views", 100_000),
        "relations": storm_args.get("view_relations", 200),
        "shards": shards,
        "batches": len(serial_seconds),
        "serial_seconds": serial_total,
        "threads_seconds": threads_total,
        "threads_speedup": (
            serial_total / threads_total if threads_total else 0.0
        ),
        "fork_seconds": fork_total,
        "fork_speedup": (
            serial_total / fork_total if fork_total else None
        ),
        "workers_seconds": workers_total,
        "workers_cold_seconds": workers_seconds[0],
        "workers_warm_seconds": workers_warm,
        "workers_speedup": (
            serial_total / workers_total if workers_total else 0.0
        ),
        "workers_warm_speedup": (
            serial_warm / workers_warm if workers_warm else 0.0
        ),
        "cold_snapshot_bytes": cold_totals["snapshot_bytes"],
        "warm_snapshot_bytes": warm_totals["snapshot_bytes"],
        "bytes_shipped": (
            cold_totals["bytes_shipped"] + warm_totals["bytes_shipped"]
        ),
        "bytes_received": (
            cold_totals["bytes_received"] + warm_totals["bytes_received"]
        ),
        "worker_wall_seconds": round(
            cold_totals["worker_seconds"] + warm_totals["worker_seconds"], 6
        ),
        "outcomes_equal": workers_equal and threads_equal and fork_equal,
        "cpu_count": os.cpu_count() or 1,
    }
    # The last warm batch's report carries the per-shard dispatch rows
    # the schema-v2 validator pins.
    return storm, workers_reports[-1]


# ----------------------------------------------------------------------
# Scenario 3: QC achieved vs wall-clock budget
# ----------------------------------------------------------------------
def bench_deadline_sweep(
    serial_seconds: float, workers: int, **stress_args
) -> dict:
    """Run the storm under shrinking budgets; report QC vs budget."""
    sweep = {}
    fractions = {"unbounded": None, "half": 0.5, "tenth": 0.1, "zero": 0.0}
    for label, fraction in fractions.items():
        budget = None if fraction is None else serial_seconds * fraction
        scheduler = SynchronizationScheduler(
            ScheduleConfig(
                executor="threads",
                max_workers=workers,
                coalesce=True,
                budget=budget,
                degrade="first_legal",
            )
        )
        eve, results, seconds = _run(scheduler, **stress_args)
        report = eve.last_report
        sweep[label] = {
            "budget_seconds": budget,
            "wall_seconds": seconds,
            "synchronized": len(results),
            "degraded": len(report.degraded_views),
            "deferred": len(report.deferred_views),
            "qc_achieved": sum(
                result.chosen.qc for result in results if result.chosen
            ),
        }

    # The defer path: a zero budget parks everything explicitly, and
    # resume_deferred replays it to the exact unbounded outcome.
    deferring = SynchronizationScheduler(
        ScheduleConfig(budget=0.0, degrade="defer", coalesce=True)
    )
    eve, results, _ = _run(deferring, **stress_args)
    deferred_count = len(eve.last_report.deferred_views)
    resumed = eve.resume_deferred()
    reference_eve, _, _ = _run(None, **stress_args)
    sweep["zero_defer"] = {
        "budget_seconds": 0.0,
        "synchronized_at_deadline": len(results),
        "deferred": deferred_count,
        "resumed": len(resumed),
        "resume_matches_serial": (
            _fingerprint(eve) == _fingerprint(reference_eve)
        ),
    }
    return sweep


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales: assert harness health, not performance",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        stress_args = dict(
            views=80, view_relations=16, donors_per_relation=3,
            view_attributes=2,
        )
        storm_args = dict(
            views=2000, view_relations=40, donors_per_relation=3,
            view_attributes=2, batches=2, tail_changes=1,
        )
        workers = 2
        shards = 2
    else:
        stress_args = dict(
            views=1000, view_relations=100, donors_per_relation=6,
            view_attributes=3,
        )
        storm_args = dict(
            views=100_000, view_relations=200, donors_per_relation=3,
            view_attributes=2, batches=4, tail_changes=1,
        )
        workers = min(8, max(2, (os.cpu_count() or 1)))
        shards = 4

    storm, system_report = bench_parallel_storm(workers, **stress_args)
    emit(
        format_table(
            ["metric", "value"],
            [
                ["views", storm["views"]],
                ["synchronizations", storm["synchronizations"]],
                ["serial reference (s)", f"{storm['serial_seconds']:.4f}"],
                ["parallel scheduler (s)", f"{storm['parallel_seconds']:.4f}"],
                ["speedup", f"{storm['speedup']:.1f}x"],
                [
                    "threads w/o coalescing (s)",
                    f"{storm['threads_only_seconds']:.4f} "
                    f"({storm['threads_only_speedup']:.1f}x)",
                ],
                ["coalesced searches", storm["coalesced_searches"]],
                ["workers / cpus", f"{storm['workers']} / {storm['cpu_count']}"],
                ["outcomes identical", storm["outcomes_equal"]],
            ],
            title="Parallel scheduler (1k-view salvage storm)",
        )
    )

    sharded, sharded_report = bench_sharded_storm(
        shards, workers, **storm_args
    )
    emit(
        format_table(
            ["metric", "value"],
            [
                ["views / relations", f"{sharded['views']} / {sharded['relations']}"],
                ["shards / batches", f"{sharded['shards']} / {sharded['batches']}"],
                ["serial reference (s)", f"{sharded['serial_seconds']:.4f}"],
                [
                    "threads + coalesce (s)",
                    f"{sharded['threads_seconds']:.4f} "
                    f"({sharded['threads_speedup']:.1f}x)",
                ],
                [
                    "fork + coalesce (s)",
                    "unavailable"
                    if sharded["fork_seconds"] is None
                    else f"{sharded['fork_seconds']:.4f} "
                    f"({sharded['fork_speedup']:.1f}x)",
                ],
                [
                    "workers total (s)",
                    f"{sharded['workers_seconds']:.4f} "
                    f"({sharded['workers_speedup']:.1f}x)",
                ],
                ["workers cold batch (s)", f"{sharded['workers_cold_seconds']:.4f}"],
                [
                    "workers warm batches (s)",
                    f"{sharded['workers_warm_seconds']:.4f} "
                    f"({sharded['workers_warm_speedup']:.1f}x)",
                ],
                ["cold snapshot (bytes)", sharded["cold_snapshot_bytes"]],
                ["warm snapshot (bytes)", sharded["warm_snapshot_bytes"]],
                ["deltas + results (bytes)", sharded["bytes_shipped"] + sharded["bytes_received"]],
                ["outcomes identical", sharded["outcomes_equal"]],
            ],
            title=(
                f"Persistent workers ({sharded['views']}-view sharded storm)"
            ),
        )
    )

    sweep = bench_deadline_sweep(
        storm["serial_seconds"], workers, **stress_args
    )
    emit(
        format_table(
            ["budget", "seconds", "synced", "degraded", "QC achieved"],
            [
                [
                    label,
                    (
                        "-"
                        if row["budget_seconds"] is None
                        else f"{row['budget_seconds']:.3f}"
                    ),
                    row["synchronized"],
                    row["degraded"],
                    f"{row['qc_achieved']:.2f}",
                ]
                for label, row in sweep.items()
                if "qc_achieved" in row
            ],
            title="Deadline sweep (degrade to first_legal past budget)",
        )
    )
    defer_row = sweep["zero_defer"]
    emit(
        format_table(
            ["metric", "value"],
            [
                ["synchronized at deadline", defer_row["synchronized_at_deadline"]],
                ["deferred", defer_row["deferred"]],
                ["resumed", defer_row["resumed"]],
                ["resume matches serial", defer_row["resume_matches_serial"]],
            ],
            title="Zero-budget deferral + resume",
        )
    )

    if not storm["outcomes_equal"]:
        raise SystemExit("parallel scheduler diverged from serial outcomes")
    if not sharded["outcomes_equal"]:
        raise SystemExit("sharded workers diverged from serial outcomes")
    if sharded["warm_snapshot_bytes"] != 0:
        raise SystemExit(
            f"warm dispatch shipped {sharded['warm_snapshot_bytes']} "
            f"snapshot bytes (expected 0)"
        )
    if not defer_row["resume_matches_serial"]:
        raise SystemExit("deferral resume diverged from serial outcomes")
    if not args.smoke:
        if storm["speedup"] < 2.0:
            raise SystemExit(
                f"parallel speedup {storm['speedup']:.1f}x < 2x"
            )
        if sharded["workers_speedup"] < 3.0:
            raise SystemExit(
                f"workers speedup {sharded['workers_speedup']:.1f}x < 3x"
            )
        unbounded = sweep["unbounded"]["qc_achieved"]
        zero = sweep["zero"]["qc_achieved"]
        if sweep["zero"]["degraded"] == 0:
            raise SystemExit("zero budget degraded nothing")
        if unbounded < zero:
            raise SystemExit("degraded run achieved more QC than unbounded")

    path = emit_json(
        "scheduler",
        {
            "parallel_storm": storm,
            "sharded_storm": {**sharded, "system_report": sharded_report},
            "deadline_sweep": sweep,
            "system_report": system_report,
            "config": {
                "smoke": args.smoke,
                **stress_args,
                "sharded": {"shards": shards, **storm_args},
            },
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
