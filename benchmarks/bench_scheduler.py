"""Scheduler benchmarks: serial reference vs cost-aware parallel dispatch.

Two timed scenarios over the 1k-view scheduler-stress storm (every view
needs a replacement search over a donor spectrum — the workload the
cross-view scheduler exists for):

1. **Parallel storm** — the serial reference scheduler replays every
   affected view one after the other; the parallel scheduler dispatches
   chain groups to a thread pool *and coalesces* structurally identical
   searches (one search per definition-modulo-name + worklist class,
   results rebound to every follower).  Committed winners, QC-Values,
   and extents must be identical — the speedup is pure scheduling.  An
   ablation row reports the thread executor with coalescing off, so the
   JSON shows honestly where the win comes from on a given machine
   (coalescing is CPU-count-independent; executor parallelism is not,
   and equals ~1x on a single-core GIL-bound host).
2. **Deadline sweep** — the same storm under shrinking wall-clock
   budgets with ``degrade="first_legal"``: views scheduled past the
   budget fall back to the old-EVE first-legal policy
   (cheapest-to-salvage views, scheduled first, keep full QC ranking).
   Reported per budget: degraded view count and total QC achieved —
   the quality/cost trade-off curve the budget buys.  A zero-budget
   ``degrade="defer"`` run plus :meth:`EVESystem.resume_deferred`
   round-trips the deferral path.

Results are persisted as machine-readable ``BENCH_scheduler.json`` at
the repo root (via :func:`conftest.emit_json`).  Run directly::

    PYTHONPATH=src python benchmarks/bench_scheduler.py [--smoke]

``--smoke`` shrinks every scale so CI can assert the harness stays
healthy in seconds.  Full runs enforce >=2x parallel speedup with
identical outcomes.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import emit, emit_json  # noqa: E402

from repro.config import ScheduleConfig  # noqa: E402
from repro.core.eve import EVESystem  # noqa: E402
from repro.core.report import format_table  # noqa: E402
from repro.sync.scheduler import SynchronizationScheduler  # noqa: E402
from repro.workloadgen.scenarios import (  # noqa: E402
    build_scheduler_stress_scenario,
)


def _stress_system(**stress_args) -> tuple[EVESystem, list]:
    scenario = build_scheduler_stress_scenario(**stress_args)
    eve = EVESystem(space=scenario.space)
    for view in scenario.views:
        eve.define_view(view, materialize=False)
    return eve, scenario.changes


def _fingerprint(eve: EVESystem) -> list[tuple]:
    # Structural ViewDefinition equality (order-sensitive), not repr:
    # outcomes_equal must catch any divergence, not just the interface.
    return [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]


def _run(scheduler: SynchronizationScheduler | None, **stress_args):
    eve, changes = _stress_system(**stress_args)
    start = perf_counter()
    if scheduler is None:
        results = eve.apply_changes(changes)
    else:
        results = eve.apply_changes(changes, scheduler=scheduler)
    seconds = perf_counter() - start
    return eve, results, seconds


# ----------------------------------------------------------------------
# Scenario 1: serial reference vs parallel + coalescing scheduler
# ----------------------------------------------------------------------
def bench_parallel_storm(workers: int, **stress_args) -> tuple[dict, dict]:
    serial_eve, serial_results, serial_seconds = _run(None, **stress_args)

    parallel = SynchronizationScheduler(
        ScheduleConfig(executor="threads", max_workers=workers, coalesce=True)
    )
    parallel_eve, parallel_results, parallel_seconds = _run(
        parallel, **stress_args
    )

    # Ablation: executor parallelism alone, no search coalescing.
    threads_only = SynchronizationScheduler(
        ScheduleConfig(executor="threads", max_workers=workers)
    )
    _, _, threads_only_seconds = _run(threads_only, **stress_args)

    outcomes_equal = _fingerprint(serial_eve) == _fingerprint(parallel_eve)
    qc_equal = [
        (r.view_name, r.chosen.qc if r.chosen else None)
        for r in serial_results
    ] == [
        (r.view_name, r.chosen.qc if r.chosen else None)
        for r in parallel_results
    ]
    # The scheduling facts come from the run's SystemReport — the
    # serializable surface the system now exposes for exactly this.
    system_report = parallel_eve.last_report.to_dict()
    (batch,) = system_report["schedule"]["batches"]
    storm = {
        "views": stress_args.get("views", 1000),
        "changes": stress_args.get("view_relations", 100),
        "synchronizations": len(
            system_report["synchronization"]["views"]
        ),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "threads_only_seconds": threads_only_seconds,
        "threads_only_speedup": (
            serial_seconds / threads_only_seconds
            if threads_only_seconds
            else 0.0
        ),
        "outcomes_equal": outcomes_equal and qc_equal,
        "coalesced_searches": batch["coalesced"],
        "workers": batch["workers"],
        "executor": batch["executor"],
        "cpu_count": os.cpu_count() or 1,
    }
    return storm, system_report


# ----------------------------------------------------------------------
# Scenario 2: QC achieved vs wall-clock budget
# ----------------------------------------------------------------------
def bench_deadline_sweep(
    serial_seconds: float, workers: int, **stress_args
) -> dict:
    """Run the storm under shrinking budgets; report QC vs budget."""
    sweep = {}
    fractions = {"unbounded": None, "half": 0.5, "tenth": 0.1, "zero": 0.0}
    for label, fraction in fractions.items():
        budget = None if fraction is None else serial_seconds * fraction
        scheduler = SynchronizationScheduler(
            ScheduleConfig(
                executor="threads",
                max_workers=workers,
                coalesce=True,
                budget=budget,
                degrade="first_legal",
            )
        )
        eve, results, seconds = _run(scheduler, **stress_args)
        report = eve.last_report
        sweep[label] = {
            "budget_seconds": budget,
            "wall_seconds": seconds,
            "synchronized": len(results),
            "degraded": len(report.degraded_views),
            "deferred": len(report.deferred_views),
            "qc_achieved": sum(
                result.chosen.qc for result in results if result.chosen
            ),
        }

    # The defer path: a zero budget parks everything explicitly, and
    # resume_deferred replays it to the exact unbounded outcome.
    deferring = SynchronizationScheduler(
        ScheduleConfig(budget=0.0, degrade="defer", coalesce=True)
    )
    eve, results, _ = _run(deferring, **stress_args)
    deferred_count = len(eve.last_report.deferred_views)
    resumed = eve.resume_deferred()
    reference_eve, _, _ = _run(None, **stress_args)
    sweep["zero_defer"] = {
        "budget_seconds": 0.0,
        "synchronized_at_deadline": len(results),
        "deferred": deferred_count,
        "resumed": len(resumed),
        "resume_matches_serial": (
            _fingerprint(eve) == _fingerprint(reference_eve)
        ),
    }
    return sweep


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales: assert harness health, not performance",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        stress_args = dict(
            views=80, view_relations=16, donors_per_relation=3,
            view_attributes=2,
        )
        workers = 2
    else:
        stress_args = dict(
            views=1000, view_relations=100, donors_per_relation=6,
            view_attributes=3,
        )
        workers = min(8, max(2, (os.cpu_count() or 1)))

    storm, system_report = bench_parallel_storm(workers, **stress_args)
    emit(
        format_table(
            ["metric", "value"],
            [
                ["views", storm["views"]],
                ["synchronizations", storm["synchronizations"]],
                ["serial reference (s)", f"{storm['serial_seconds']:.4f}"],
                ["parallel scheduler (s)", f"{storm['parallel_seconds']:.4f}"],
                ["speedup", f"{storm['speedup']:.1f}x"],
                [
                    "threads w/o coalescing (s)",
                    f"{storm['threads_only_seconds']:.4f} "
                    f"({storm['threads_only_speedup']:.1f}x)",
                ],
                ["coalesced searches", storm["coalesced_searches"]],
                ["workers / cpus", f"{storm['workers']} / {storm['cpu_count']}"],
                ["outcomes identical", storm["outcomes_equal"]],
            ],
            title="Parallel scheduler (1k-view salvage storm)",
        )
    )

    sweep = bench_deadline_sweep(
        storm["serial_seconds"], workers, **stress_args
    )
    emit(
        format_table(
            ["budget", "seconds", "synced", "degraded", "QC achieved"],
            [
                [
                    label,
                    (
                        "-"
                        if row["budget_seconds"] is None
                        else f"{row['budget_seconds']:.3f}"
                    ),
                    row["synchronized"],
                    row["degraded"],
                    f"{row['qc_achieved']:.2f}",
                ]
                for label, row in sweep.items()
                if "qc_achieved" in row
            ],
            title="Deadline sweep (degrade to first_legal past budget)",
        )
    )
    defer_row = sweep["zero_defer"]
    emit(
        format_table(
            ["metric", "value"],
            [
                ["synchronized at deadline", defer_row["synchronized_at_deadline"]],
                ["deferred", defer_row["deferred"]],
                ["resumed", defer_row["resumed"]],
                ["resume matches serial", defer_row["resume_matches_serial"]],
            ],
            title="Zero-budget deferral + resume",
        )
    )

    if not storm["outcomes_equal"]:
        raise SystemExit("parallel scheduler diverged from serial outcomes")
    if not defer_row["resume_matches_serial"]:
        raise SystemExit("deferral resume diverged from serial outcomes")
    if not args.smoke:
        if storm["speedup"] < 2.0:
            raise SystemExit(
                f"parallel speedup {storm['speedup']:.1f}x < 2x"
            )
        unbounded = sweep["unbounded"]["qc_achieved"]
        zero = sweep["zero"]["qc_achieved"]
        if sweep["zero"]["degraded"] == 0:
            raise SystemExit("zero budget degraded nothing")
        if unbounded < zero:
            raise SystemExit("degraded run achieved more QC than unbounded")

    path = emit_json(
        "scheduler",
        {
            "parallel_storm": storm,
            "deadline_sweep": sweep,
            "system_report": system_report,
            "config": {"smoke": args.smoke, **stress_args},
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
