"""Maintenance benchmarks: the tuple delta plane vs the binding plane.

One timed scenario, the 10k-update maintenance storm
(:func:`~repro.workloadgen.scenarios.build_maintenance_storm_scenario`):
a three-source join view whose updated relation receives a long
insert/delete stream.  The lanes all run the identical stream:

1. **dict per-update** — the binding-plane reference: every update is
   propagated on its own, deltas travel as per-row dicts, WHERE clauses
   interpret per candidate, and the view is re-resolved per update.
2. **tuple per-update** — the compiled positional-tuple plane, still one
   :meth:`ViewMaintainer.maintain` call per update.
3. **tuple batch** — the whole stream through
   :meth:`ViewMaintainer.maintain_batch`: one resolution, one plan, one
   compiled pipeline, per-update accounting recovered from provenance.
4. **columnar batch** — the same batched stream on the columnar plane:
   deltas travel as per-attribute columns, joins run as vectorized hash
   probes with selection vectors.

The modeled CF_M/CF_T/CF_IO counters and the final extents must be
identical across every lane — that is the equivalence contract of the
delta plane, and ``validate_bench.py`` gates it on every run.

Results are persisted as machine-readable ``BENCH_maintenance.json`` at
the repo root (via :func:`conftest.emit_json`).  Run directly::

    PYTHONPATH=src python benchmarks/bench_maintenance.py [--smoke]

``--smoke`` shrinks the storm so CI can assert the harness stays healthy
in seconds.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import emit, emit_json  # noqa: E402

from repro.config import MaintenanceConfig, SystemConfig  # noqa: E402
from repro.core.eve import EVESystem  # noqa: E402
from repro.core.report import format_table  # noqa: E402
from repro.esql.evaluator import evaluate_view  # noqa: E402
from repro.maintenance.simulator import ViewMaintainer  # noqa: E402
from repro.space.updates import UpdateKind  # noqa: E402
from repro.workloadgen.scenarios import (  # noqa: E402
    build_maintenance_storm_scenario,
)


def _replay(space, stream):
    """Apply one intent stream to the sources, yielding DataUpdates."""
    for relation, kind, row in stream:
        if kind is UpdateKind.INSERT:
            yield space.insert(relation, row)
        else:
            yield space.delete(relation, row)


def _run_lane(
    updates: int, rows: int, representation: str, batched: bool
):
    scenario = build_maintenance_storm_scenario(updates=updates, rows=rows)
    space, view = scenario.space, scenario.view
    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(
        space, config=MaintenanceConfig(representation=representation)
    )
    start = time.perf_counter()
    if batched:
        applied = list(_replay(space, scenario.updates))
        maintainer.maintain_batch(view, extent, applied)
    else:
        for update in _replay(space, scenario.updates):
            maintainer.maintain(view, extent, update)
    seconds = time.perf_counter() - start
    return seconds, extent, maintainer.counters


def _run_system_lane(updates: int, rows: int):
    """The whole stream through EVESystem.apply_updates (tuple plane,
    join-graph flush batching) — the surface operators actually call.
    Returns the wall clock, the final extent, the per-call counters,
    and the run's serializable SystemReport."""
    scenario = build_maintenance_storm_scenario(updates=updates, rows=rows)
    eve = EVESystem(space=scenario.space, config=SystemConfig.fast())
    eve.define_view(scenario.view)
    start = time.perf_counter()
    counters = eve.apply_updates(scenario.updates)
    seconds = time.perf_counter() - start
    return seconds, eve.extent(scenario.view.name), counters, eve.last_report


def bench_update_storm(updates: int, rows: int) -> tuple[dict, dict]:
    dict_seconds, dict_extent, dict_counters = _run_lane(
        updates, rows, "dict", batched=False
    )
    tuple_seconds, tuple_extent, tuple_counters = _run_lane(
        updates, rows, "tuple", batched=False
    )
    batch_seconds, batch_extent, batch_counters = _run_lane(
        updates, rows, "tuple", batched=True
    )
    columnar_seconds, columnar_extent, columnar_counters = _run_lane(
        updates, rows, "columnar", batched=True
    )
    system_seconds, system_extent, system_counters, system_report = (
        _run_system_lane(updates, rows)
    )

    def factors(counters):
        return (
            counters.messages,
            counters.bytes_transferred,
            counters.io_operations,
        )

    counters_equal = (
        factors(dict_counters)
        == factors(tuple_counters)
        == factors(batch_counters)
        == factors(columnar_counters)
        == factors(system_counters)
    )
    extents_equal = (
        dict_extent
        == tuple_extent
        == batch_extent
        == columnar_extent
        == system_extent
    )
    storm = {
        "updates": updates,
        "rows": rows,
        "dict_seconds": round(dict_seconds, 6),
        "tuple_seconds": round(tuple_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        # Headline: the tuple+batch path against the dict per-update
        # reference (the acceptance floor is 3x on full runs).
        "speedup": round(dict_seconds / max(batch_seconds, 1e-9), 2),
        "tuple_speedup": round(dict_seconds / max(tuple_seconds, 1e-9), 2),
        "columnar_seconds": round(columnar_seconds, 6),
        "columnar_speedup": round(
            dict_seconds / max(columnar_seconds, 1e-9), 2
        ),
        "system_seconds": round(system_seconds, 6),
        "system_speedup": round(
            dict_seconds / max(system_seconds, 1e-9), 2
        ),
        "system_flushes": len(system_report.flushes),
        "counters_equal": counters_equal,
        "extents_equal": extents_equal,
        "final_extent": batch_extent.cardinality,
        "messages": batch_counters.messages,
        "bytes_transferred": batch_counters.bytes_transferred,
        "io_operations": batch_counters.io_operations,
    }
    return storm, system_report.to_dict()


def run(updates: int = 10_000, rows: int = 4_000) -> dict:
    storm, system_report = bench_update_storm(updates, rows)
    return {
        "benchmark": "maintenance",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "update_storm": storm,
        "system_report": system_report,
    }


def report(payload: dict) -> None:
    storm = payload["update_storm"]
    rows = [
        (
            "dict per-update (reference)",
            f"{storm['updates']} updates @ {storm['rows']} key rows",
            f"{storm['dict_seconds']:.3f}s",
            "1.0x",
        ),
        (
            "tuple per-update",
            "same stream",
            f"{storm['tuple_seconds']:.3f}s",
            f"{storm['tuple_speedup']:.1f}x",
        ),
        (
            "tuple maintain_batch",
            "same stream",
            f"{storm['batch_seconds']:.3f}s",
            f"{storm['speedup']:.1f}x",
        ),
        (
            "columnar maintain_batch",
            "same stream",
            f"{storm['columnar_seconds']:.3f}s",
            f"{storm['columnar_speedup']:.1f}x",
        ),
        (
            "EVESystem.apply_updates",
            f"same stream, {storm['system_flushes']} flush(es)",
            f"{storm['system_seconds']:.3f}s",
            f"{storm['system_speedup']:.1f}x",
        ),
    ]
    emit(
        format_table(
            ["Lane", "Scale", "Wall clock", "Speedup"],
            rows,
            title="Maintenance storm: delta plane representations",
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=10_000)
    parser.add_argument("--rows", type=int, default=4_000)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales for CI health checks",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="print only, do not persist"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.updates, args.rows = 400, 300

    payload = run(updates=args.updates, rows=args.rows)
    report(payload)
    storm = payload["update_storm"]
    if not (storm["counters_equal"] and storm["extents_equal"]):
        print(
            "EQUIVALENCE FAILURE",
            [storm["counters_equal"], storm["extents_equal"]],
        )
        return 1
    # Mode marker for the CI regression gate: smoke-scale timings are
    # not comparable with committed full-run baselines.
    payload["config"] = {"smoke": args.smoke}
    if not args.no_json:
        path = emit_json("maintenance", payload)
        print(f"wrote {path}")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
