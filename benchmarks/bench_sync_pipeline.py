"""Synchronization-pipeline benchmarks: eager control plane vs streamed.

Three timed scenarios:

1. **Batched change dispatch** — the 1k-view evolution storm: a composed
   batch of capability changes hits a space serving 1000 views.  The
   eager baseline (the PR-1 control plane) scans every alive view for
   every change; the pipeline path routes each change through the VKB's
   relation → views inverted index (``EVESystem.apply_changes``) and
   rematerializes each affected view once.  Outcomes must be identical.
2. **Pruned ranking** — a replacement-heavy candidate spectrum (six
   donors, dominated variants requested): the exhaustive policy fully
   assesses every legal candidate, the ``pruned`` policy skips every
   candidate whose QC upper bound cannot beat the running best — and
   must still report the identical winner with the identical QC-Value.
3. **Policy sweep** — assessments and winners across ``exhaustive``,
   ``pruned``, ``top_k(3)``, and ``first_legal`` on the same spectrum.

Results are persisted as machine-readable ``BENCH_sync.json`` at the
repo root (via :func:`conftest.emit_json`).  Run directly::

    PYTHONPATH=src python benchmarks/bench_sync_pipeline.py [--smoke]

``--smoke`` shrinks every scale so CI can assert the harness stays
healthy in seconds.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import emit, emit_json  # noqa: E402

from repro.core.eve import EVESystem  # noqa: E402
from repro.core.report import format_table  # noqa: E402
from repro.esql.parser import parse_view  # noqa: E402
from repro.misd.statistics import RelationStatistics  # noqa: E402
from repro.qc.model import QCModel  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.space.changes import DeleteRelation  # noqa: E402
from repro.space.space import InformationSpace  # noqa: E402
from repro.sync.legality import check_legality  # noqa: E402
from repro.sync.pipeline import RewritingSearchPipeline  # noqa: E402
from repro.sync.synchronizer import ViewSynchronizer  # noqa: E402
from repro.workloadgen.scenarios import (  # noqa: E402
    build_evolution_storm_scenario,
)


# ----------------------------------------------------------------------
# Scenario 1: batched change dispatch over the evolution storm
# ----------------------------------------------------------------------
def _storm_system(**storm_args):
    scenario = build_evolution_storm_scenario(**storm_args)
    eve = EVESystem(space=scenario.space)
    for view in scenario.views:
        eve.define_view(view, materialize=False)
    return eve, scenario.changes


def _storm_fingerprint(eve: EVESystem) -> list[tuple]:
    # Structural ViewDefinition equality (order-sensitive), not repr.
    return [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]


def bench_batched_dispatch(**storm_args) -> tuple[dict, dict]:
    eager_eve, changes = _storm_system(**storm_args)
    eager_eve.auto_synchronize = False
    start = perf_counter()
    synchronizations = 0
    for change in changes:
        eager_eve.space.apply_change(change)
        # The PR-1 control plane: full scan of every alive view per change.
        for record in list(eager_eve.vkb.alive_views()):
            if not eager_eve.synchronizer.is_affected(record.current, change):
                continue
            eager_eve.synchronize_view(record, change)
            synchronizations += 1
    eager_seconds = perf_counter() - start

    batched_eve, changes = _storm_system(**storm_args)
    start = perf_counter()
    results = batched_eve.apply_changes(changes)
    batched_seconds = perf_counter() - start

    outcomes_equal = _storm_fingerprint(eager_eve) == _storm_fingerprint(
        batched_eve
    )
    # Per-call accounting now rides on the serializable SystemReport;
    # the dispatch metrics below consume it instead of re-deriving from
    # the raw result list.
    system_report = batched_eve.last_report.to_dict()
    dispatch = {
        "views": storm_args.get("views", 1000),
        "changes": len(changes),
        "synchronizations": len(
            system_report["synchronization"]["views"]
        ),
        "survived": system_report["synchronization"]["survived"],
        "undefined": system_report["synchronization"]["undefined"],
        "eager_synchronizations": synchronizations,
        "eager_seconds": eager_seconds,
        "batched_seconds": batched_seconds,
        "speedup": eager_seconds / batched_seconds if batched_seconds else 0.0,
        "outcomes_equal": outcomes_equal,
    }
    assert len(results) == dispatch["synchronizations"]
    return dispatch, system_report


# ----------------------------------------------------------------------
# Scenarios 2/3: pruned ranking over a replacement-heavy spectrum
# ----------------------------------------------------------------------
def _ranking_scenario(donors: int = 6, attributes: int = 5):
    """R with ``attributes`` dispensable columns and ``donors`` mirrors of
    varying cardinality — deleting R yields a wide candidate spectrum,
    and requesting dominated variants widens it combinatorially."""
    space = InformationSpace()
    names = [f"A{i}" for i in range(attributes)]
    space.add_source("IS0")
    space.register_relation(
        "IS0",
        Relation(_schema("R", names)),
        RelationStatistics(cardinality=4000, tuple_size=100),
    )
    for index in range(donors):
        source = f"IS{index + 1}"
        space.add_source(source)
        space.register_relation(
            source,
            Relation(_schema(f"S{index}", names)),
            RelationStatistics(
                cardinality=2000 + 800 * index, tuple_size=100
            ),
        )
        space.mkb.add_containment("R", f"S{index}", names)
    select = ", ".join(
        f"R.{name} (AD = true, AR = true)" for name in names
    )
    view = parse_view(
        f"CREATE VIEW V (VE = '~') AS SELECT {select} FROM R (RR = true)"
    )
    return space, view, DeleteRelation("IS0", "R")


def _schema(name, attributes):
    from repro.relational.schema import Schema

    return Schema(name, attributes)


def bench_pruned_ranking(donors: int, attributes: int) -> dict:
    space, view, change = _ranking_scenario(donors, attributes)
    synchronizer = ViewSynchronizer(space.mkb)
    model = QCModel(space.mkb)
    pipeline = RewritingSearchPipeline(synchronizer, model)

    # Eager reference: materialize the full spectrum, evaluate everything.
    start = perf_counter()
    candidates = [
        rewriting
        for rewriting in synchronizer.synchronize(
            view, change, include_dominated=True
        )
        if check_legality(rewriting).legal
    ]
    eager_evaluations = model.evaluate(candidates)
    eager_seconds = perf_counter() - start

    exhaustive = pipeline.search(
        view, change, include_dominated=True, policy="exhaustive"
    )
    start = perf_counter()
    pruned = pipeline.search(
        view, change, include_dominated=True, policy="pruned"
    )
    pruned_seconds = perf_counter() - start

    winner = eager_evaluations[0]
    assessed_exhaustive = exhaustive.counters.assessed
    assessed_pruned = pruned.counters.assessed
    return {
        "legal_candidates": len(candidates),
        "generated": pruned.counters.generated + pruned.counters.dominated,
        "assessed_exhaustive": assessed_exhaustive,
        "assessed_pruned": assessed_pruned,
        "pruned": pruned.counters.pruned,
        "assessment_reduction": (
            1.0 - assessed_pruned / assessed_exhaustive
            if assessed_exhaustive
            else 0.0
        ),
        "winner_identical": pruned.chosen.rewriting == winner.rewriting,
        "qc_value_equal": pruned.chosen.qc == winner.qc,
        "eager_seconds": eager_seconds,
        "pruned_seconds": pruned_seconds,
        "speedup": eager_seconds / pruned_seconds if pruned_seconds else 0.0,
    }


def bench_policy_sweep(donors: int, attributes: int) -> dict:
    space, view, change = _ranking_scenario(donors, attributes)
    pipeline = RewritingSearchPipeline(
        ViewSynchronizer(space.mkb), QCModel(space.mkb)
    )
    sweep = {}
    for policy in ("exhaustive", "pruned", "top_k(3)", "first_legal"):
        result = pipeline.search(
            view, change, include_dominated=True, policy=policy
        )
        sweep[policy] = {
            "winner": str(result.chosen.rewriting.view.relation_names),
            "qc": result.chosen.qc,
            "generated": result.counters.generated
            + result.counters.dominated,
            "assessed": result.counters.assessed,
            "pruned": result.counters.pruned,
        }
    return sweep


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales: assert harness health, not performance",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        storm_args = dict(
            views=120,
            view_relations=30,
            spare_relations=20,
            changes=24,
            hot_renames=4,
            replacement_deletes=2,
        )
        donors, attributes = 4, 4
    else:
        storm_args = dict(
            views=1000,
            view_relations=250,
            spare_relations=120,
            changes=240,
            hot_renames=8,
            replacement_deletes=2,
        )
        donors, attributes = 6, 5

    dispatch, system_report = bench_batched_dispatch(**storm_args)
    emit(
        format_table(
            ["metric", "value"],
            [
                ["views", dispatch["views"]],
                ["changes in batch", dispatch["changes"]],
                ["synchronizations", dispatch["synchronizations"]],
                ["eager full-scan dispatch (s)", f"{dispatch['eager_seconds']:.4f}"],
                ["indexed batched dispatch (s)", f"{dispatch['batched_seconds']:.4f}"],
                ["speedup", f"{dispatch['speedup']:.1f}x"],
                ["outcomes identical", dispatch["outcomes_equal"]],
            ],
            title="Batched change dispatch (evolution storm)",
        )
    )

    ranking = bench_pruned_ranking(donors, attributes)
    emit(
        format_table(
            ["metric", "value"],
            [
                ["legal candidates", ranking["legal_candidates"]],
                ["fully assessed (exhaustive)", ranking["assessed_exhaustive"]],
                ["fully assessed (pruned)", ranking["assessed_pruned"]],
                ["assessments skipped", ranking["pruned"]],
                ["assessment reduction", f"{ranking['assessment_reduction']:.1%}"],
                ["winner identical", ranking["winner_identical"]],
                ["QC-Value identical", ranking["qc_value_equal"]],
                ["eager evaluate (s)", f"{ranking['eager_seconds']:.4f}"],
                ["pruned pipeline (s)", f"{ranking['pruned_seconds']:.4f}"],
                ["speedup", f"{ranking['speedup']:.1f}x"],
            ],
            title="Upper-bound-pruned ranking (dominated spectrum requested)",
        )
    )

    sweep = bench_policy_sweep(donors, attributes)
    emit(
        format_table(
            ["policy", "winner", "QC", "generated", "assessed", "pruned"],
            [
                [
                    policy,
                    row["winner"],
                    f"{row['qc']:.4f}",
                    row["generated"],
                    row["assessed"],
                    row["pruned"],
                ]
                for policy, row in sweep.items()
            ],
            title="Search-policy sweep",
        )
    )

    if not args.smoke:
        if dispatch["speedup"] < 10.0:
            raise SystemExit(
                f"batched dispatch speedup {dispatch['speedup']:.1f}x < 10x"
            )
        if ranking["assessed_pruned"] >= ranking["assessed_exhaustive"]:
            raise SystemExit("upper-bound pruning skipped nothing")
    if not dispatch["outcomes_equal"]:
        raise SystemExit("batched dispatch diverged from eager outcomes")
    if not (ranking["winner_identical"] and ranking["qc_value_equal"]):
        raise SystemExit("pruned ranking diverged from exhaustive winner")

    path = emit_json(
        "sync",
        {
            "batched_dispatch": dispatch,
            "pruned_ranking": ranking,
            "policy_sweep": sweep,
            "system_report": system_report,
            "config": {"smoke": args.smoke},
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
