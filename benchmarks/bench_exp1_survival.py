"""Experiment 1 (Sec. 7.1, Fig. 12): "survival" of a view.

V0 selects R.A (dispensable, replaceable) and R.B (dispensable only);
replicas of A exist at S and T.  After delete-attribute R.A, EVE's choice
between the replaceable branch (V1/V2, via S or T) and the
non-replaceable branch (V3, keep B) is governed by the interface weights:
w1 > w2 keeps the view alive through a second capability change, w2 > w1
dead-ends it — the paper's justification for the default w1 > w2.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.eve import EVESystem
from repro.core.report import format_table
from repro.qc.params import TradeoffParameters
from repro.workloadgen.scenarios import build_survival_scenario


def run_lifespans():
    """(w1, w2) -> (first rewriting shape, generations survived, alive)."""
    outcomes = []
    for w1, w2 in [(0.7, 0.3), (0.3, 0.7)]:
        scenario = build_survival_scenario()
        params = TradeoffParameters(w1=w1, w2=w2).with_divergence_weights(
            1.0, 0.0  # Sec. 7.1 ignores the extent factor
        )
        eve = EVESystem(params=params, space=scenario.space)
        eve.define_view(scenario.view, materialize=False)
        eve.space.delete_attribute("R", "A")
        first_shape = "/".join(eve.vkb.current("V0").relation_names)
        # Second change: whatever carrier was chosen disappears.
        carrier = eve.vkb.current("V0").relation_names[0]
        eve.space.delete_relation(carrier)
        outcomes.append(
            (
                f"w1={w1}, w2={w2}",
                first_shape,
                eve.generations("V0"),
                eve.is_alive("V0"),
            )
        )
    return outcomes


@pytest.fixture(scope="module")
def outcomes():
    return run_lifespans()


def report(outcomes) -> None:
    emit(
        format_table(
            ["Weights", "After change 1", "Generations", "Alive"],
            outcomes,
            title="Figure 12: life span of V0 under two interface weightings",
        )
    )


def test_exp1_report(outcomes):
    report(outcomes)


def test_default_weights_pick_replaceable_branch(outcomes):
    weights, first_shape, generations, alive = outcomes[0]
    assert first_shape in ("S", "T")
    assert generations == 2
    assert alive


def test_inverted_weights_dead_end(outcomes):
    weights, first_shape, generations, alive = outcomes[1]
    assert first_shape == "R"  # kept the non-replaceable B
    assert not alive


def test_benchmark_exp1(benchmark):
    result = benchmark(run_lifespans)
    assert len(result) == 2
    report(result)
