"""Experiment 4 (Sec. 7.4, Tables 3/4, Fig. 15): substitute cardinality.

R2 (4000 tuples) is deleted; five substitutes S1..S5 (2000..6000 tuples,
S1 ⊆ S2 ⊆ S3 = R2 ⊆ S4 ⊆ S5) are available.  The QC-Model ranks the five
rewritings under the three (rho_quality, rho_cost) cases.  Expected:
Table 4 is matched to the paper's own printed numbers (Case 1: QC =
0.9325 / 0.94125 / 0.95 / 0.898 / 0.855, ratings 3/2/1/4/5), and the
Fig. 15 winner flips from V3 (Case 1) to V1 (Cases 2/3).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.report import format_ranking
from repro.qc.model import QCModel
from repro.qc.params import EXPERIMENT4_CASES
from repro.space.changes import DeleteRelation
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_cardinality_scenario


def run_experiment4():
    """All three cases evaluated; returns {case label: evaluations}."""
    scenario = build_cardinality_scenario()
    scenario.space.delete_relation("R2")
    synchronizer = ViewSynchronizer(scenario.space.mkb)
    rewritings = synchronizer.synchronize(
        scenario.view, DeleteRelation("IS1", "R2")
    )
    rewritings.sort(key=lambda r: r.moves[-1].new_relation)
    named = [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]
    results = {}
    for label, params in EXPERIMENT4_CASES:
        model = QCModel(scenario.space.mkb, params)
        results[label] = model.evaluate(named, updated_relation="R1")
    return results


@pytest.fixture(scope="module")
def results():
    return run_experiment4()


def report(results) -> None:
    for label, evaluations in results.items():
        ordered = sorted(evaluations, key=lambda e: e.name)
        emit(format_ranking(ordered, f"Table 4 / Fig. 15 — {label}"))


def test_exp4_report(results):
    report(results)


def test_table4_case1_matches_paper(results):
    by_name = {e.name: e for e in results["Case 1"]}
    expected = {
        "V1": (0.9325, 3),
        "V2": (0.94125, 2),
        "V3": (0.95, 1),
        "V4": (0.898, 4),
        "V5": (0.855, 5),
    }
    for name, (qc, rating) in expected.items():
        assert by_name[name].qc == pytest.approx(qc, abs=1e-5)
        assert by_name[name].rank == rating


def test_fig15_winner_flips_with_weights(results):
    winners = {
        label: evaluations[0].name
        for label, evaluations in results.items()
    }
    assert winners == {"Case 1": "V3", "Case 2": "V1", "Case 3": "V1"}


def test_superset_chain_order_invariant(results):
    """V3 > V4 > V5 in every case (Sec. 7.4's first bullet)."""
    for evaluations in results.values():
        ranks = {e.name: e.rank for e in evaluations}
        assert ranks["V3"] < ranks["V4"] < ranks["V5"]


def test_subset_chain_order_depends_on_weights(results):
    """V1 vs V3 flips between Case 1 and Case 3 (second bullet)."""
    case1 = {e.name: e.rank for e in results["Case 1"]}
    case3 = {e.name: e.rank for e in results["Case 3"]}
    assert case1["V3"] < case1["V1"]
    assert case3["V1"] < case3["V3"]


def test_benchmark_exp4(benchmark):
    result = benchmark(run_experiment4)
    assert len(result) == 3
    report(result)
