"""Analytic cost model vs executed Algorithm 1 (the paper's future work).

Sec. 8 names "experimental studies to compare the cost portion of our
QC-Model with the actual costs encountered by our system" as future work.
Our substrate executes Algorithm 1 for real, so we run that study: for a
three-source join view we replay an update stream through the maintenance
simulator and compare its measured messages/bytes against the analytic
CF_M / CF_T.  Expected: message counts match exactly (deterministic
protocol); average bytes track the estimate within the statistical noise
of synthetic data realizing the assumed join selectivity in expectation.
"""

from __future__ import annotations

import random

import pytest

from conftest import emit
from repro.core.report import format_table
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.qc.cost import cf_bytes, cf_messages_counted, plan_for_view
from repro.space.space import InformationSpace
from repro.workloadgen.generator import make_schema, populate_relation

JS = 0.02
CARDINALITY = 200
UPDATES = 60


def build_space():
    space = InformationSpace()
    key_space = round(1 / JS)
    for index, name in enumerate(["R0", "R1", "R2"]):
        source = f"IS{index}"
        space.add_source(source)
        space.register_relation(
            source,
            populate_relation(
                make_schema(name, ["A", "B"], attribute_size=4),
                CARDINALITY,
                seed=index + 1,
                key_space=key_space,
            ),
            RelationStatistics(
                cardinality=CARDINALITY, tuple_size=8, selectivity=1.0
            ),
        )
    space.mkb.statistics.join_selectivity = JS
    view = parse_view(
        """
        CREATE VIEW V AS
        SELECT R0.A, R1.B AS B1, R2.B AS B2
        FROM R0, R1, R2
        WHERE R0.A = R1.A AND R1.A = R2.A
        """
    )
    return space, view


def run_comparison(seed: int = 7):
    space, view = build_space()
    owners = {n: space.owner_of(n).name for n in view.relation_names}
    plan = plan_for_view(view, owners, updated_relation="R0")
    analytic_messages = cf_messages_counted(plan)
    analytic_bytes = cf_bytes(plan, space.mkb.statistics)

    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(space)
    rng = random.Random(seed)
    measured = []
    for _ in range(UPDATES):
        row = (rng.randrange(round(1 / JS)), rng.randrange(round(1 / JS)))
        update = space.source("IS0").insert("R0", row)
        measured.append(maintainer.maintain(view, extent, update))
    mean_bytes = sum(c.bytes_transferred for c in measured) / len(measured)
    messages = {c.messages for c in measured}
    return {
        "analytic_messages": analytic_messages,
        "measured_messages": messages,
        "analytic_bytes": analytic_bytes,
        "measured_mean_bytes": mean_bytes,
        "extent_ok": sorted(extent.rows)
        == sorted(evaluate_view(view, space.relations()).rows),
    }


@pytest.fixture(scope="module")
def comparison():
    return run_comparison()


def report(comparison) -> None:
    emit(
        format_table(
            ["Quantity", "Analytic model", "Measured (Algorithm 1)"],
            [
                [
                    "messages per update",
                    comparison["analytic_messages"],
                    "/".join(str(m) for m in sorted(comparison["measured_messages"])),
                ],
                [
                    "bytes per update (mean)",
                    f"{comparison['analytic_bytes']:.1f}",
                    f"{comparison['measured_mean_bytes']:.1f}",
                ],
            ],
            title="Cost model vs executed Algorithm 1 (paper's future work)",
        )
    )


def test_sim_vs_model_report(comparison):
    report(comparison)


def test_messages_match_exactly(comparison):
    assert comparison["measured_messages"] == {
        comparison["analytic_messages"]
    }


def test_bytes_within_statistical_band(comparison):
    analytic = comparison["analytic_bytes"]
    measured = comparison["measured_mean_bytes"]
    assert measured == pytest.approx(analytic, rel=1.0)


def test_extent_stays_consistent(comparison):
    assert comparison["extent_ok"]


def test_benchmark_sim_vs_model(benchmark):
    result = benchmark(run_comparison)
    report(result)
