"""Experiment 3 (Sec. 7.3, Fig. 14): relation-distribution evenness vs bytes.

For js in {0.001, 0.0022, 0.005} and each distribution of 6 relations over
2..4 sites, compute CF_T, averaging mirror-image distributions (the paper
groups "(1,5) ~ (5,1)").

Configuration note: Fig. 14's plotted magnitudes (hundreds of bytes at
js = 0.001, up to ~100k at js = 0.005) are reproduced with *no local
selection conditions* (sigma = 1), so the per-join delta growth factor is
``js * |R|``.  With Table 1's sigma = 0.5 the factor at js = 0.005 is
exactly 1.0 and the distribution effect degenerates — evidence the paper's
Experiment 3 varied js with selections disabled.

Expected shape (Fig. 14): at high js (delta grows per join) the even
distribution is cheapest; at low js (delta shrinks) a skewed distribution
wins; there is no single direction — but within any fixed js, fewer sites
still dominate the distribution choice (the Experiment 2 finding).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.report import format_table
from repro.qc.cost import cf_bytes
from repro.workloadgen.scenarios import site_scenarios

JS_VALUES = (0.001, 0.0022, 0.005)
SITES = (2, 3, 4)


def grouped_scenarios(sites: int, js: float) -> dict[tuple[int, ...], list]:
    """Mirror-grouped scenarios with sigma = 1 and the given js."""
    groups: dict[tuple[int, ...], list] = {}
    for scenario in site_scenarios(sites, selectivity=1.0, join_selectivity=js):
        key = tuple(sorted(scenario.distribution))
        groups.setdefault(key, []).append(scenario)
    return groups


def figure14_rows(js: float) -> list[tuple[str, int, float]]:
    """(distribution label, sites, avg CF_T) for one join selectivity."""
    rows = []
    for sites in SITES:
        for key, scenarios in sorted(grouped_scenarios(sites, js).items()):
            values = [
                cf_bytes(scenario.plan, scenario.statistics)
                for scenario in scenarios
            ]
            label = "/".join(str(count) for count in key)
            rows.append((label, sites, sum(values) / len(values)))
    return rows


def all_panels() -> dict[float, list[tuple[str, int, float]]]:
    return {js: figure14_rows(js) for js in JS_VALUES}


@pytest.fixture(scope="module")
def panels():
    return all_panels()


def report(panels) -> None:
    for js, rows in panels.items():
        emit(
            format_table(
                ["Distribution", "Sites", "CF_T bytes (avg)"],
                rows,
                title=f"Figure 14: bytes transferred by distribution (js = {js})",
            )
        )


def test_fig14_report(panels):
    report(panels)


def _per_sites(rows, sites):
    return {label: value for label, s, value in rows if s == sites}


def test_fig14c_high_js_favors_even_distribution(panels):
    """js = 0.005: (3,3) is the cheapest two-site distribution."""
    two_site = _per_sites(panels[0.005], 2)
    assert two_site["3/3"] == min(two_site.values())


def test_fig14a_low_js_favors_skew(panels):
    """js = 0.001: the most skewed group beats the even one."""
    two_site = _per_sites(panels[0.001], 2)
    assert two_site["1/5"] < two_site["3/3"]


def test_no_single_direction_across_js(panels):
    """The paper's headline: no monotone evenness/cost relationship."""
    preferences = set()
    for js in JS_VALUES:
        two_site = _per_sites(panels[js], 2)
        preferences.add(min(two_site, key=two_site.get))
    assert len(preferences) > 1


def test_magnitudes_match_figure_axes(panels):
    """Fig. 14(a) plots hundreds of bytes; Fig. 14(c) tens of thousands."""
    low = _per_sites(panels[0.001], 2)
    high = _per_sites(panels[0.005], 2)
    assert max(low.values()) < 1000
    assert max(high.values()) > 20_000


def test_benchmark_fig14(benchmark):
    result = benchmark(all_panels)
    assert set(result) == set(JS_VALUES)
    report(result)
