"""Engine benchmarks: the indexed execution engine vs the naive paths.

Three timed scenarios, at 10k-row scale by default:

1. **View evaluation** — a three-relation equijoin view whose literal FROM
   order forces the naive engine through a cartesian blow-up; the indexed
   engine reorders greedily by cardinality and probes hash indexes.
2. **Maintenance propagation** — 1k single-tuple updates pushed through
   Algorithm 1; the naive wrapper cross-joins every delta binding with
   every local row, the indexed wrapper probes the local relation's index
   per delta tuple.  The modeled cost counters must match exactly.
3. **Synchronize and rank** — a capability change produces a candidate
   rewriting spectrum which is re-ranked across workloads and rounds,
   with and without the memoized assessment cache.

Results are persisted as machine-readable ``BENCH_engine.json`` at the
repo root (via :func:`conftest.emit_json`).  Run directly::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke] [--no-large]

``--smoke`` shrinks every scale so CI can assert the harness stays
healthy in seconds (the tuple-vs-columnar lane drops to 2k rows but keeps
running its parity check); ``--no-large`` skips that lane entirely.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from conftest import emit, emit_json  # noqa: E402

from repro.config import EngineConfig, MaintenanceConfig, SystemConfig  # noqa: E402
from repro.core.eve import EVESystem  # noqa: E402
from repro.core.report import format_table  # noqa: E402
from repro.esql.evaluator import evaluate_view  # noqa: E402
from repro.esql.parser import parse_view  # noqa: E402
from repro.maintenance.simulator import ViewMaintainer  # noqa: E402
from repro.misd.statistics import RelationStatistics  # noqa: E402
from repro.qc.assessment_cache import AssessmentCache  # noqa: E402
from repro.qc.model import QCModel  # noqa: E402
from repro.qc.workload import WorkloadModel, WorkloadSpec  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.relational.schema import Schema  # noqa: E402
from repro.space.space import InformationSpace  # noqa: E402
from repro.sync.legality import check_legality  # noqa: E402
from repro.sync.synchronizer import ViewSynchronizer  # noqa: E402


# ----------------------------------------------------------------------
# Scenario 1: view evaluation
# ----------------------------------------------------------------------
def _evaluation_relations(rows: int, t_rows: int) -> dict[str, Relation]:
    return {
        "R": Relation(
            Schema("R", ["A", "B"]), [(i, 2 * i) for i in range(rows)]
        ),
        "S": Relation(
            Schema("S", ["A", "B", "C"]),
            [(i, i % t_rows, 3 * i) for i in range(rows)],
        ),
        "T": Relation(
            Schema("T", ["B", "D"]), [(b, 7 * b) for b in range(t_rows)]
        ),
    }


#: FROM order R, T, S leaves both equijoins undecidable until S, so the
#: literal-order engine crosses R with T first — the trap the greedy
#: cardinality order avoids.
_EVALUATION_VIEW = (
    "CREATE VIEW V AS SELECT R.A, S.C, T.D FROM R, T, S "
    "WHERE R.A = S.A AND S.B = T.B"
)


def bench_view_evaluation(rows: int, t_rows: int = 400) -> dict:
    relations = _evaluation_relations(rows, t_rows)
    view = parse_view(_EVALUATION_VIEW)

    start = time.perf_counter()
    naive = evaluate_view(view, relations, config=EngineConfig(engine="naive"))
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    indexed = evaluate_view(view, relations, config=EngineConfig(engine="indexed"))
    indexed_seconds = time.perf_counter() - start

    return {
        "rows": rows,
        "result_cardinality": indexed.cardinality,
        "naive_seconds": round(naive_seconds, 6),
        "indexed_seconds": round(indexed_seconds, 6),
        "speedup": round(naive_seconds / max(indexed_seconds, 1e-9), 2),
        "extents_equal": indexed == naive,
    }


def _timed_large_lane(
    representation: str, rows: int, t_rows: int
) -> tuple[float, int, Relation]:
    """Best-of-3 full evaluations, each on fresh relations (index builds
    and column-store construction are part of every run, as in real
    use); ``min`` is the standard noise-robust estimator for a
    deterministic workload."""
    view = parse_view(_EVALUATION_VIEW)
    config = EngineConfig(representation=representation)
    seconds = float("inf")
    for _ in range(3):
        relations = _evaluation_relations(rows, t_rows)
        start = time.perf_counter()
        extent = evaluate_view(view, relations, config=config)
        seconds = min(seconds, time.perf_counter() - start)

    # Peak-memory pass: separate untimed run so tracemalloc's bookkeeping
    # overhead never pollutes the timing above.
    relations = _evaluation_relations(rows, t_rows)
    tracemalloc.start()
    evaluate_view(view, relations, config=config)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak_bytes, extent


def bench_view_evaluation_large(rows: int, t_rows: int = 400) -> dict:
    """Row plane (positional tuples) vs columnar plane at scale.

    Identical cardinalities, identical result rows; the columnar lane is
    the PR-6 tentpole and ``validate_bench.py`` gates ``speedup >= 3``
    on full (non-smoke) runs.
    """
    tuple_seconds, tuple_peak, tuple_extent = _timed_large_lane(
        "tuple", rows, t_rows
    )
    columnar_seconds, columnar_peak, columnar_extent = _timed_large_lane(
        "columnar", rows, t_rows
    )
    return {
        "rows": rows,
        "result_cardinality": columnar_extent.cardinality,
        "tuple_seconds": round(tuple_seconds, 6),
        "columnar_seconds": round(columnar_seconds, 6),
        "speedup": round(tuple_seconds / max(columnar_seconds, 1e-9), 2),
        "results_equal": columnar_extent.rows == tuple_extent.rows,
        "tuple_peak_bytes": tuple_peak,
        "columnar_peak_bytes": columnar_peak,
    }


# ----------------------------------------------------------------------
# Scenario 2: maintenance propagation
# ----------------------------------------------------------------------
def _maintenance_space(rows: int) -> InformationSpace:
    space = InformationSpace()
    space.add_source("IS1")
    space.add_source("IS2")
    space.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(i, 2 * i) for i in range(rows)]),
        RelationStatistics(cardinality=rows, tuple_size=8),
    )
    space.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "C"]), [(i, 3 * i) for i in range(rows)]),
        RelationStatistics(cardinality=rows, tuple_size=8),
    )
    return space


def _run_maintenance(rows: int, updates: int, use_index: bool):
    space = _maintenance_space(rows)
    view = parse_view(
        "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE R.A = S.A"
    )
    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(
        space, config=MaintenanceConfig(use_index=use_index)
    )
    source = space.source("IS1")
    start = time.perf_counter()
    for k in range(updates):
        update = source.insert("R", ((k * 37) % rows, k))
        maintainer.maintain(view, extent, update)
    seconds = time.perf_counter() - start
    return seconds, extent, maintainer.counters


def bench_maintenance(rows: int, updates: int) -> dict:
    naive_seconds, naive_extent, naive_counters = _run_maintenance(
        rows, updates, use_index=False
    )
    indexed_seconds, indexed_extent, indexed_counters = _run_maintenance(
        rows, updates, use_index=True
    )
    counters_equal = (
        naive_counters.messages == indexed_counters.messages
        and naive_counters.bytes_transferred
        == indexed_counters.bytes_transferred
        and naive_counters.io_operations == indexed_counters.io_operations
    )
    return {
        "rows": rows,
        "updates": updates,
        "naive_seconds": round(naive_seconds, 6),
        "indexed_seconds": round(indexed_seconds, 6),
        "speedup": round(naive_seconds / max(indexed_seconds, 1e-9), 2),
        "extents_equal": indexed_extent == naive_extent,
        "counters_equal": counters_equal,
        "messages": indexed_counters.messages,
        "io_operations": indexed_counters.io_operations,
    }


# ----------------------------------------------------------------------
# Scenario 3: synchronize and rank
# ----------------------------------------------------------------------
def _synchronization_space(rows: int) -> InformationSpace:
    space = InformationSpace()
    space.add_source("IS1")
    space.add_source("IS2")
    space.add_source("IS3")
    space.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B", "C"])),
        RelationStatistics(cardinality=rows, tuple_size=12),
    )
    space.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "D"])),
        RelationStatistics(cardinality=rows, tuple_size=8),
    )
    for index in range(1, 5):
        space.register_relation(
            "IS3",
            Relation(Schema(f"T{index}", ["A", "B", "C"])),
            RelationStatistics(
                cardinality=rows // index, tuple_size=12
            ),
        )
    mkb = space.mkb
    mkb.add_equivalence("R", "T1", ["A", "B", "C"])
    mkb.add_containment("R", "T2", ["A", "B", "C"])
    mkb.add_containment("T3", "R", ["A", "B", "C"])
    mkb.add_equivalence("R", "T4", ["A", "B"])
    return space


_SYNC_VIEW = (
    "CREATE VIEW W AS SELECT R.A (AR = true), "
    "R.B (AR = true, AD = true), R.C (AR = true, AD = true), S.D "
    "FROM R (RR = true, RD = true), S "
    "WHERE R.A = S.A (CR = true, CD = true)"
)


def _rank_rounds(model, rewritings, workloads, rounds):
    start = time.perf_counter()
    rankings = []
    for _ in range(rounds):
        for workload in workloads:
            evaluations = model.evaluate(rewritings, workload)
            rankings.append(tuple(e.name for e in evaluations))
    return time.perf_counter() - start, rankings


def bench_synchronize_and_rank(rows: int, rounds: int = 10) -> dict:
    space = _synchronization_space(rows)
    view = parse_view(_SYNC_VIEW)
    synchronizer = ViewSynchronizer(space.mkb)

    start = time.perf_counter()
    change = space.delete_relation("R")
    rewritings = [
        r
        for r in synchronizer.synchronize(view, change, include_dominated=True)
        if check_legality(r).legal
    ]
    synchronize_seconds = time.perf_counter() - start

    workloads = [
        None,
        WorkloadSpec(WorkloadModel.M1_PROPORTIONAL, 0.01),
        WorkloadSpec(WorkloadModel.M2_PER_RELATION, 5),
        WorkloadSpec(WorkloadModel.M3_PER_SOURCE, 5),
        WorkloadSpec(WorkloadModel.M4_PER_REWRITING, 5),
    ]
    uncached_model = QCModel(space.mkb)
    cache = AssessmentCache()
    cached_model = QCModel(space.mkb, cache=cache)

    uncached_seconds, uncached_rankings = _rank_rounds(
        uncached_model, rewritings, workloads, rounds
    )
    cached_seconds, cached_rankings = _rank_rounds(
        cached_model, rewritings, workloads, rounds
    )
    return {
        "candidates": len(rewritings),
        "rounds": rounds,
        "workloads": len(workloads),
        "synchronize_seconds": round(synchronize_seconds, 6),
        "uncached_seconds": round(uncached_seconds, 6),
        "cached_seconds": round(cached_seconds, 6),
        "speedup": round(uncached_seconds / max(cached_seconds, 1e-9), 2),
        "cache_hit_rate": round(cache.hit_rate, 4),
        "rankings_identical": uncached_rankings == cached_rankings,
    }


# ----------------------------------------------------------------------
# System surface: the same salvage, end to end through EVESystem
# ----------------------------------------------------------------------
def bench_system_surface(rows: int) -> tuple[dict, dict]:
    """Drive the Scenario-3 salvage through ``EVESystem.apply_changes``
    and return the summary plus the run's serializable SystemReport —
    the payload every BENCH file now embeds for ``validate_bench.py``."""
    from repro.space.changes import DeleteRelation

    space = _synchronization_space(rows)
    eve = EVESystem(space=space, config=SystemConfig.fast())
    eve.define_view(parse_view(_SYNC_VIEW))
    start = time.perf_counter()
    results = eve.apply_changes([DeleteRelation("IS1", "R")])
    seconds = time.perf_counter() - start
    report = eve.last_report
    summary = {
        "synchronizations": len(results),
        "survived": sum(1 for r in results if r.survived),
        "seconds": round(seconds, 6),
        "winner_qc": (
            round(results[0].chosen.qc, 6)
            if results and results[0].chosen
            else None
        ),
    }
    return summary, report.to_dict()


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run(
    rows: int = 10_000,
    updates: int = 1_000,
    t_rows: int = 400,
    rounds: int = 10,
    large_rows: int | None = 100_000,
) -> dict:
    payload: dict = {
        "benchmark": "engine",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
    }
    payload["view_evaluation"] = bench_view_evaluation(rows, t_rows)
    payload["maintenance_propagation"] = bench_maintenance(rows, updates)
    payload["synchronize_and_rank"] = bench_synchronize_and_rank(rows, rounds)
    payload["system_surface"], payload["system_report"] = (
        bench_system_surface(rows)
    )
    if large_rows:
        payload["view_evaluation_large"] = bench_view_evaluation_large(
            large_rows, t_rows
        )
    return payload


def report(payload: dict) -> None:
    ve = payload["view_evaluation"]
    mp = payload["maintenance_propagation"]
    sr = payload["synchronize_and_rank"]
    rows = [
        (
            "view evaluation",
            f"{ve['rows']} rows",
            f"{ve['naive_seconds']:.3f}s",
            f"{ve['indexed_seconds']:.3f}s",
            f"{ve['speedup']:.1f}x",
        ),
        (
            "maintenance propagation",
            f"{mp['updates']} updates @ {mp['rows']} rows",
            f"{mp['naive_seconds']:.3f}s",
            f"{mp['indexed_seconds']:.3f}s",
            f"{mp['speedup']:.1f}x",
        ),
        (
            "synchronize and rank",
            f"{sr['candidates']} candidates x {sr['rounds']} rounds",
            f"{sr['uncached_seconds']:.3f}s",
            f"{sr['cached_seconds']:.3f}s",
            f"{sr['speedup']:.1f}x",
        ),
    ]
    vl = payload.get("view_evaluation_large")
    if vl:
        rows.append(
            (
                "view evaluation (columnar)",
                f"{vl['rows']} rows",
                f"{vl['tuple_seconds']:.3f}s",
                f"{vl['columnar_seconds']:.3f}s",
                f"{vl['speedup']:.1f}x",
            )
        )
    emit(
        format_table(
            ["Scenario", "Scale", "Baseline", "Optimized", "Speedup"],
            rows,
            title="Indexed execution engine vs naive paths",
        )
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--updates", type=int, default=1_000)
    parser.add_argument("--t-rows", type=int, default=400)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales for CI health checks",
    )
    parser.add_argument(
        "--no-large",
        action="store_true",
        help="skip the 100k-row tuple-vs-columnar timing",
    )
    parser.add_argument(
        "--large-rows",
        type=int,
        default=100_000,
        help="scale of the tuple-vs-columnar lane",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="print only, do not persist"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.rows, args.updates, args.t_rows, args.rounds = 600, 50, 40, 3
        # Keep the tuple-vs-columnar lane alive at toy scale: the parity
        # check still runs, only the speedup gate is waived (validate_bench
        # SKIPs gated speedups on smoke payloads).
        args.large_rows = 2_000

    payload = run(
        rows=args.rows,
        updates=args.updates,
        t_rows=args.t_rows,
        rounds=args.rounds,
        large_rows=None if args.no_large else args.large_rows,
    )
    report(payload)
    checks = [
        payload["view_evaluation"]["extents_equal"],
        payload["maintenance_propagation"]["extents_equal"],
        payload["maintenance_propagation"]["counters_equal"],
        payload["synchronize_and_rank"]["rankings_identical"],
    ]
    if "view_evaluation_large" in payload:
        checks.append(payload["view_evaluation_large"]["results_equal"])
    if not all(checks):
        print("EQUIVALENCE FAILURE", checks)
        return 1
    # Mode marker for the CI regression gate: smoke-scale timings are
    # not comparable with committed full-run baselines.
    payload["config"] = {"smoke": args.smoke}
    if not args.no_json:
        path = emit_json("engine", payload)
        print(f"wrote {path}")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
