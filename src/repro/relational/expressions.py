"""Predicate expressions over relation rows.

The paper's WHERE clauses are conjunctions of *primitive clauses* (Sec. 3.1):

    (<attribute-name> theta <attribute-name>)  or
    (<attribute-name> theta <value>)           with theta in {<, <=, =, >=, >}

We model each primitive clause as a small immutable AST node that can

* evaluate itself against a named row (dict of attribute -> value),
* report which attributes it references (so the synchronizer knows when a
  clause is affected by a schema change),
* rewrite its attribute references (when a replacement relation is
  substituted), and
* estimate its selectivity given per-attribute statistics.

Conjunctions are modelled explicitly; disjunction is intentionally absent
because the paper's language does not include it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterable, Mapping
from typing import Any

from repro.errors import EvaluationError


class Comparator(enum.Enum):
    """The comparison operator theta of a primitive clause."""

    LT = "<"
    LE = "<="
    EQ = "="
    GE = ">="
    GT = ">"
    NE = "<>"

    def __str__(self) -> str:
        return self.value

    def apply(self, left: Any, right: Any) -> bool:
        """Evaluate ``left theta right``; None never satisfies a clause."""
        if left is None or right is None:
            return False
        if self is Comparator.LT:
            return left < right
        if self is Comparator.LE:
            return left <= right
        if self is Comparator.EQ:
            return left == right
        if self is Comparator.GE:
            return left >= right
        if self is Comparator.GT:
            return left > right
        return left != right

    def flipped(self) -> "Comparator":
        """The comparator with its operands swapped (A < B  <=>  B > A)."""
        flips = {
            Comparator.LT: Comparator.GT,
            Comparator.LE: Comparator.GE,
            Comparator.GT: Comparator.LT,
            Comparator.GE: Comparator.LE,
            Comparator.EQ: Comparator.EQ,
            Comparator.NE: Comparator.NE,
        }
        return flips[self]

    @classmethod
    def from_symbol(cls, symbol: str) -> "Comparator":
        for member in cls:
            if member.value == symbol:
                return member
        raise EvaluationError(f"unknown comparator {symbol!r}")


@dataclass(frozen=True)
class AttributeRef:
    """A (possibly relation-qualified) attribute reference ``R.A`` or ``A``."""

    attribute: str
    relation: str | None = None

    def __str__(self) -> str:
        if self.relation:
            return f"{self.relation}.{self.attribute}"
        return self.attribute

    @property
    def qualified(self) -> str:
        return str(self)

    def matches(self, attribute: str, relation: str | None = None) -> bool:
        """Whether this reference denotes the given attribute.

        An unqualified reference matches any relation; a qualified one only
        matches its own relation (or a lookup that does not care).
        """
        if self.attribute != attribute:
            return False
        if relation is None or self.relation is None:
            return True
        return self.relation == relation

    def requalified(self, new_relation: str | None) -> "AttributeRef":
        """Same attribute name bound to a different relation."""
        return AttributeRef(self.attribute, new_relation)

    def renamed(self, new_attribute: str) -> "AttributeRef":
        """Reference with a different attribute name, same relation."""
        return AttributeRef(new_attribute, self.relation)


@dataclass(frozen=True)
class Constant:
    """A literal operand of a primitive clause."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


Operand = AttributeRef | Constant


def _resolve(operand: Operand, row: Mapping[str, Any]) -> Any:
    """Look an operand up in a named row.

    Qualified references fall back to the bare attribute name because join
    results flatten qualifications; ambiguity is the caller's burden (the
    validator rejects genuinely ambiguous views up front).
    """
    if isinstance(operand, Constant):
        return operand.value
    key = operand.qualified
    if key in row:
        return row[key]
    if operand.attribute in row:
        return row[operand.attribute]
    raise EvaluationError(f"attribute {key!r} not present in row")


@dataclass(frozen=True)
class PrimitiveClause:
    """One comparison ``left theta right`` (Sec. 3.1).

    At least one operand is an :class:`AttributeRef`.  A clause whose two
    operands are both attributes is a *join clause* when they come from
    different relations.
    """

    left: Operand
    comparator: Comparator
    right: Operand

    def __post_init__(self) -> None:
        if isinstance(self.left, Constant) and isinstance(self.right, Constant):
            raise EvaluationError(
                "a primitive clause needs at least one attribute operand"
            )

    def __str__(self) -> str:
        return f"{self.left} {self.comparator} {self.right}"

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def attribute_refs(self) -> tuple[AttributeRef, ...]:
        refs = []
        if isinstance(self.left, AttributeRef):
            refs.append(self.left)
        if isinstance(self.right, AttributeRef):
            refs.append(self.right)
        return tuple(refs)

    @property
    def is_join_clause(self) -> bool:
        """True when both operands are attribute references."""
        return isinstance(self.left, AttributeRef) and isinstance(
            self.right, AttributeRef
        )

    @property
    def is_selection_clause(self) -> bool:
        """True when exactly one operand is a constant (a local condition)."""
        return not self.is_join_clause

    @property
    def is_equijoin(self) -> bool:
        return self.is_join_clause and self.comparator is Comparator.EQ

    def relations(self) -> frozenset[str]:
        """Relation names referenced by this clause (qualified refs only)."""
        return frozenset(
            ref.relation for ref in self.attribute_refs if ref.relation
        )

    def references(self, attribute: str, relation: str | None = None) -> bool:
        """Whether the clause mentions the given attribute."""
        return any(ref.matches(attribute, relation) for ref in self.attribute_refs)

    def references_relation(self, relation: str) -> bool:
        return relation in self.relations()

    # ------------------------------------------------------------------
    # Evaluation and rewriting
    # ------------------------------------------------------------------
    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Truth value of the clause against a named row."""
        return self.comparator.apply(
            _resolve(self.left, row), _resolve(self.right, row)
        )

    def _rewrite_operand(
        self, operand: Operand, old_relation: str, new_relation: str,
        attribute_map: Mapping[str, str] | None,
    ) -> Operand:
        if not isinstance(operand, AttributeRef):
            return operand
        if operand.relation != old_relation:
            return operand
        attribute = operand.attribute
        if attribute_map and attribute in attribute_map:
            attribute = attribute_map[attribute]
        return AttributeRef(attribute, new_relation)

    def with_relation_replaced(
        self,
        old_relation: str,
        new_relation: str,
        attribute_map: Mapping[str, str] | None = None,
    ) -> "PrimitiveClause":
        """Clause with references to ``old_relation`` redirected.

        ``attribute_map`` optionally translates attribute names when the
        replacement relation spells them differently (PC-constraint
        correspondence).
        """
        return PrimitiveClause(
            self._rewrite_operand(
                self.left, old_relation, new_relation, attribute_map
            ),
            self.comparator,
            self._rewrite_operand(
                self.right, old_relation, new_relation, attribute_map
            ),
        )

    def normalized(self) -> "PrimitiveClause":
        """Canonical operand order: attribute refs sorted, constant last."""
        left, right = self.left, self.right
        comparator = self.comparator
        swap = False
        if isinstance(left, Constant):
            swap = True
        elif isinstance(right, AttributeRef) and str(right) < str(left):
            swap = True
        if swap:
            left, right = right, left
            comparator = comparator.flipped()
        return PrimitiveClause(left, comparator, right)


class Condition:
    """A conjunction ``C_1 AND ... AND C_k`` of primitive clauses.

    The empty conjunction is the tautologically true condition used by PC
    constraints whose selection side is unrestricted (Sec. 5.4.3).
    """

    __slots__ = ("_clauses",)

    def __init__(self, clauses: Iterable[PrimitiveClause] = ()) -> None:
        self._clauses: tuple[PrimitiveClause, ...] = tuple(clauses)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def true(cls) -> "Condition":
        """The tautologically true condition (empty conjunction)."""
        return cls(())

    @classmethod
    def of(cls, *clauses: PrimitiveClause) -> "Condition":
        return cls(clauses)

    def and_also(self, other: "Condition | PrimitiveClause") -> "Condition":
        """Conjunction of this condition with another."""
        if isinstance(other, PrimitiveClause):
            return Condition((*self._clauses, other))
        return Condition((*self._clauses, *other._clauses))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clauses(self) -> tuple[PrimitiveClause, ...]:
        return self._clauses

    @property
    def is_true(self) -> bool:
        """Whether this is the tautology (no clauses)."""
        return not self._clauses

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self):
        return iter(self._clauses)

    def __bool__(self) -> bool:
        # Truthiness means "has clauses", i.e. *not* the tautology.
        return bool(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Condition):
            return NotImplemented
        normalize = lambda cond: sorted(  # noqa: E731 - tiny local helper
            str(clause.normalized()) for clause in cond._clauses
        )
        return normalize(self) == normalize(other)

    def __hash__(self) -> int:
        return hash(frozenset(str(c.normalized()) for c in self._clauses))

    def __str__(self) -> str:
        if not self._clauses:
            return "TRUE"
        return " AND ".join(f"({clause})" for clause in self._clauses)

    def relations(self) -> frozenset[str]:
        """All relation names referenced anywhere in the conjunction."""
        names: set[str] = set()
        for clause in self._clauses:
            names |= clause.relations()
        return frozenset(names)

    def attribute_refs(self) -> tuple[AttributeRef, ...]:
        refs: list[AttributeRef] = []
        for clause in self._clauses:
            refs.extend(clause.attribute_refs)
        return tuple(refs)

    def join_clauses(self) -> tuple[PrimitiveClause, ...]:
        return tuple(c for c in self._clauses if c.is_join_clause)

    def selection_clauses(self) -> tuple[PrimitiveClause, ...]:
        return tuple(c for c in self._clauses if c.is_selection_clause)

    # ------------------------------------------------------------------
    # Evaluation and rewriting
    # ------------------------------------------------------------------
    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Conjunction truth value; the empty conjunction is True."""
        return all(clause.evaluate(row) for clause in self._clauses)

    def with_relation_replaced(
        self,
        old_relation: str,
        new_relation: str,
        attribute_map: Mapping[str, str] | None = None,
    ) -> "Condition":
        """All clauses rewritten to reference the replacement relation."""
        return Condition(
            clause.with_relation_replaced(old_relation, new_relation, attribute_map)
            for clause in self._clauses
        )

    def without_clauses_referencing(
        self, attribute: str | None = None, relation: str | None = None
    ) -> "Condition":
        """Drop clauses that mention the given attribute and/or relation.

        Used by the synchronizer when a dispensable condition must be
        discarded because its inputs disappeared.
        """
        kept: list[PrimitiveClause] = []
        for clause in self._clauses:
            mentions = False
            if attribute is not None and clause.references(attribute, relation):
                mentions = True
            if (
                attribute is None
                and relation is not None
                and clause.references_relation(relation)
            ):
                mentions = True
            if not mentions:
                kept.append(clause)
        return Condition(kept)
