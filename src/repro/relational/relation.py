"""Relation instances: a schema plus a bag of typed tuples.

The engine is deliberately simple and fully in memory — the paper's
experiments run on relations of a few thousand tuples.  Tuples are plain
Python tuples validated against the schema on insertion.  Relations are
*bags* (duplicates allowed) because SQL views are; the quality model
(Sec. 5.4.2) explicitly removes duplicates before comparing extents, which
callers do via :meth:`Relation.distinct`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.errors import SchemaError
from repro.relational.columnar import ColumnStore
from repro.relational.index import HashIndex
from repro.relational.schema import Attribute, Schema

Row = tuple[Any, ...]


class Relation:
    """A named relation instance: schema + bag of rows.

    Mutating operations (:meth:`insert`, :meth:`delete`) are used by the
    data-update machinery of the maintenance simulator; algebra operations
    in :mod:`repro.relational.algebra` always return new relations.
    """

    __slots__ = ("schema", "_rows", "_indexes", "_column_store")

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]] = ()) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        self._indexes: dict[tuple[int, ...], HashIndex] = {}
        self._column_store: ColumnStore | None = None
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_named_rows(
        cls, schema: Schema, rows: Iterable[dict[str, Any]]
    ) -> "Relation":
        """Build from dict rows; missing attributes become ``None``."""
        ordered = [
            tuple(row.get(name) for name in schema.attribute_names) for row in rows
        ]
        return cls(schema, ordered)

    @classmethod
    def from_validated(
        cls, schema: Schema, rows: Iterable[Row]
    ) -> "Relation":
        """Adopt rows already validated against ``schema``.

        Execution planes building result extents from rows that each came
        out of a validated relation skip the second per-value validation
        pass; callers own the invariant that every row is a well-typed
        tuple of the right arity.
        """
        relation = cls(schema)
        relation._rows = list(rows)
        return relation

    def empty_like(self) -> "Relation":
        """Fresh empty relation with the same schema."""
        return Relation(self.schema)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def rows(self) -> list[Row]:
        """The underlying row list (treat as read-only)."""
        return self._rows

    @property
    def cardinality(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self._rows)} rows)"

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema and same multiset of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.attribute_names != other.schema.attribute_names:
            return False
        return Counter(self._rows) == Counter(other._rows)

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is unhashable; use row_set() for set semantics")

    def value(self, row: Row, attribute: str) -> Any:
        """Value of ``attribute`` within ``row``."""
        return row[self.schema.position(attribute)]

    def named_row(self, row: Row) -> dict[str, Any]:
        """Row as an attribute-name -> value mapping."""
        return dict(zip(self.schema.attribute_names, row))

    def row_set(self) -> frozenset[Row]:
        """Set of distinct rows — the basis for extent comparisons."""
        return frozenset(self._rows)

    def byte_size(self) -> int:
        """Total payload size in bytes (cardinality x tuple width)."""
        return self.cardinality * self.schema.tuple_byte_size()

    # ------------------------------------------------------------------
    # Hash indexes (lazy build, incrementally maintained)
    # ------------------------------------------------------------------
    def index_on(self, attributes: Sequence[str]) -> HashIndex:
        """Hash index on the named attributes, building it on first use."""
        positions = tuple(self.schema.position(name) for name in attributes)
        return self.index_on_positions(positions)

    #: Most relations are probed on one or two key subsets; cap the cached
    #: indexes so pathological probe diversity cannot make every
    #: insert/delete pay for (or every extent be mirrored by) an unbounded
    #: index set.  Eviction is FIFO over insertion order.
    MAX_CACHED_INDEXES = 8

    def index_on_positions(self, positions: Sequence[int]) -> HashIndex:
        """Hash index keyed on tuple positions; cached across probes."""
        key = tuple(positions)
        index = self._indexes.get(key)
        if index is None:
            if len(self._indexes) >= self.MAX_CACHED_INDEXES:
                self._indexes.pop(next(iter(self._indexes)))
            index = HashIndex(key, self._rows)
            self._indexes[key] = index
        return index

    def drop_indexes(self) -> None:
        """Forget all built indexes (bulk mutations call this)."""
        self._indexes.clear()

    # ------------------------------------------------------------------
    # Column store (the columnar plane's view of this relation)
    # ------------------------------------------------------------------
    def column_store(self) -> ColumnStore:
        """Per-attribute columns of this relation, built on first use.

        Kept live across :meth:`insert` (append-only) and dropped by any
        mutation that can remove or reorder rows — a middle-of-list
        removal would shift every cached row position.
        """
        store = self._column_store
        if store is None:
            store = self._column_store = ColumnStore(self.schema, self._rows)
        return store

    @property
    def index_count(self) -> int:
        return len(self._indexes)

    # ------------------------------------------------------------------
    # Mutation (used by data updates)
    # ------------------------------------------------------------------
    def _validate(self, row: Sequence[Any]) -> Row:
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"row arity {len(row)} != schema arity {self.schema.arity} "
                f"for relation {self.name!r}"
            )
        return tuple(
            attr.type.validate(value) for attr, value in zip(self.schema, row)
        )

    def insert(self, row: Sequence[Any]) -> Row:
        """Validate and append ``row``; returns the normalized tuple."""
        validated = self._validate(row)
        self._rows.append(validated)
        for index in self._indexes.values():
            index.add(validated)
        if self._column_store is not None:
            self._column_store.append(validated)
        return validated

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert every row; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete(self, row: Sequence[Any]) -> bool:
        """Remove one occurrence of ``row``; True if something was removed."""
        validated = self._validate(row)
        try:
            self._rows.remove(validated)
        except ValueError:
            return False
        for index in self._indexes.values():
            index.discard(validated)
        self._column_store = None
        return True

    def delete_where(self, predicate: Callable[[Row], bool]) -> list[Row]:
        """Remove all rows satisfying ``predicate``; returns removed rows."""
        kept: list[Row] = []
        removed: list[Row] = []
        for row in self._rows:
            (removed if predicate(row) else kept).append(row)
        self._rows = kept
        self.drop_indexes()
        self._column_store = None
        return removed

    def clear(self) -> None:
        self._rows.clear()
        self.drop_indexes()
        self._column_store = None

    def replace_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Atomically swap in a new extent (used when refreshing views)."""
        staged = [self._validate(row) for row in rows]
        self._rows = staged
        self.drop_indexes()
        self._column_store = None

    # ------------------------------------------------------------------
    # Schema evolution (used by capability changes)
    # ------------------------------------------------------------------
    def with_schema_dropped_attribute(self, attribute: str) -> "Relation":
        """New relation with ``attribute`` removed from schema and rows."""
        position = self.schema.position(attribute)
        new_schema = self.schema.drop_attribute(attribute)
        rows = [row[:position] + row[position + 1 :] for row in self._rows]
        return Relation(new_schema, rows)

    def with_added_attribute(
        self, attribute: Attribute, default: Any = None
    ) -> "Relation":
        """New relation with ``attribute`` appended, filled with ``default``."""
        new_schema = self.schema.add_attribute(attribute)
        rows = [(*row, default) for row in self._rows]
        return Relation(new_schema, rows)

    def with_renamed_attribute(self, old: str, new: str) -> "Relation":
        """New relation with one attribute renamed; rows unchanged."""
        return Relation(self.schema.rename_attribute(old, new), self._rows)

    def with_renamed_relation(self, new_name: str) -> "Relation":
        """New relation under a different name; rows unchanged."""
        return Relation(self.schema.rename_relation(new_name), self._rows)

    # ------------------------------------------------------------------
    # Set-style derivations
    # ------------------------------------------------------------------
    def distinct(self) -> "Relation":
        """Duplicate-free copy, preserving first-occurrence order."""
        seen: set[Row] = set()
        rows: list[Row] = []
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation(self.schema, rows)

    def copy(self, new_name: str | None = None) -> "Relation":
        """Independent copy, optionally renamed."""
        schema = (
            self.schema.rename_relation(new_name) if new_name else self.schema
        )
        return Relation(schema, list(self._rows))
