"""Attribute domain types for the relational substrate.

The paper's MISD describes attribute domains via *type integrity constraints*
``TC(R.A) = (R(A_i) -> A_i(Type_i))`` (Sec. 3.2, Fig. 4).  We model domains
with a small closed set of types sufficient for the paper's experiments:
integers, floats, strings, and booleans.  Each type knows how to validate
and coerce Python values, and carries a default *byte width* used by the
cost model when per-attribute sizes are not registered in the MKB
(``s_{R.A}`` in Sec. 6.1).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class AttributeType(enum.Enum):
    """Domain of an attribute, with a default storage width in bytes.

    The widths follow typical fixed-width encodings of the era the paper
    targets (4-byte ints/floats, short fixed-width strings); the MKB can
    override them per attribute.
    """

    INT = ("int", 4)
    FLOAT = ("float", 8)
    STRING = ("string", 20)
    BOOL = ("bool", 1)

    def __init__(self, label: str, default_size: int) -> None:
        self.label = label
        self.default_size = default_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttributeType.{self.name}"

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` into this domain or raise :class:`TypeMismatchError`.

        Coercion is strict enough to catch modelling mistakes (a string in an
        INT column) but forgiving across the numeric tower so experiment
        generators may feed ints into FLOAT columns.
        """
        if value is None:
            return None
        if self is AttributeType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(f"expected int, got {value!r}")
            return value
        if self is AttributeType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"expected float, got {value!r}")
            return float(value)
        if self is AttributeType.STRING:
            if not isinstance(value, str):
                raise TypeMismatchError(f"expected str, got {value!r}")
            return value
        if self is AttributeType.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(f"expected bool, got {value!r}")
            return value
        raise TypeMismatchError(f"unsupported type {self!r}")  # pragma: no cover

    def is_comparable_with(self, other: "AttributeType") -> bool:
        """Whether values of the two domains may appear in one primitive clause."""
        numeric = {AttributeType.INT, AttributeType.FLOAT}
        if self in numeric and other in numeric:
            return True
        return self is other


def infer_type(value: Any) -> AttributeType:
    """Infer the narrowest :class:`AttributeType` that admits ``value``."""
    if isinstance(value, bool):
        return AttributeType.BOOL
    if isinstance(value, int):
        return AttributeType.INT
    if isinstance(value, float):
        return AttributeType.FLOAT
    if isinstance(value, str):
        return AttributeType.STRING
    raise TypeMismatchError(f"cannot infer attribute type for {value!r}")
