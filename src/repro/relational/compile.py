"""Compile predicate ASTs into positional-tuple closures.

The interpreted path (:meth:`PrimitiveClause.evaluate`) resolves every
operand through a dict of attribute names on every row.  The hot loops of
the execution engine instead compile each clause *once* against a slot
layout — a mapping from attribute keys to tuple positions — and evaluate
rows as plain tuples with no per-row dict construction or string lookups.

Resolution mirrors :func:`repro.relational.expressions._resolve` exactly:
a qualified reference ``R.A`` matches the key ``"R.A"`` first and falls
back to the bare attribute name ``"A"``; compiled and interpreted paths
therefore agree clause for clause (the equivalence property tests pin
this).  ``None`` (NULL) operands never satisfy a clause, matching
:meth:`Comparator.apply`.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

from repro.errors import EvaluationError
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Condition,
    Constant,
    PrimitiveClause,
)
from repro.relational.schema import Schema

Row = tuple[Any, ...]
RowPredicate = Callable[[Row], bool]

_OPERATORS: dict[Comparator, Callable[[Any, Any], bool]] = {
    Comparator.LT: operator.lt,
    Comparator.LE: operator.le,
    Comparator.EQ: operator.eq,
    Comparator.GE: operator.ge,
    Comparator.GT: operator.gt,
    Comparator.NE: operator.ne,
}


def resolve_slot(ref: AttributeRef, slots: Mapping[str, int]) -> int | None:
    """Tuple position of ``ref`` under the qualified-then-bare rule."""
    position = slots.get(ref.qualified)
    if position is not None:
        return position
    return slots.get(ref.attribute)


def schema_slots(schema: Schema, qualified: bool = True) -> dict[str, int]:
    """Slot layout of one relation's rows: bare and ``R.A`` keys."""
    slots: dict[str, int] = {}
    for position, name in enumerate(schema.attribute_names):
        slots[name] = position
        if qualified:
            slots[f"{schema.name}.{name}"] = position
    return slots


def layout_slots(columns: Sequence[str]) -> dict[str, int]:
    """Slot layout of an explicit column list (e.g. a delta batch).

    Unlike :func:`schema_slots` the keys are exactly the given column
    names — for delta batches these are fully qualified ``R.A`` strings,
    so resolution through :func:`resolve_slot` behaves exactly like the
    interpreted path over a binding dict keyed by qualified names (the
    bare-name fallback never matches a qualified key, in either plane).
    """
    return {column: position for position, column in enumerate(columns)}


def _unresolved(ref: AttributeRef) -> RowPredicate:
    """Predicate that fails like the interpreter: lazily, on first use."""

    def raise_on_use(row: Row) -> bool:
        raise EvaluationError(f"attribute {ref.qualified!r} not present in row")

    return raise_on_use


def compile_clause(
    clause: PrimitiveClause, slots: Mapping[str, int]
) -> RowPredicate:
    """One clause as a positional-tuple predicate.

    An operand that resolves to no slot yields a predicate that raises
    :class:`EvaluationError` when invoked — the same failure, at the same
    time, as the interpreted path (which only fails when a row is actually
    evaluated, e.g. never on an empty relation).
    """
    op = _OPERATORS[clause.comparator]
    left, right = clause.left, clause.right

    if isinstance(left, AttributeRef) and isinstance(right, AttributeRef):
        li = resolve_slot(left, slots)
        ri = resolve_slot(right, slots)
        if li is None:
            return _unresolved(left)
        if ri is None:
            return _unresolved(right)

        def attr_attr(row: Row, li=li, ri=ri, op=op) -> bool:
            a = row[li]
            b = row[ri]
            return a is not None and b is not None and op(a, b)

        return attr_attr

    if isinstance(left, AttributeRef):
        assert isinstance(right, Constant)
        li = resolve_slot(left, slots)
        if li is None:
            return _unresolved(left)
        value = right.value
        if value is None:
            return lambda row: False

        def attr_const(row: Row, li=li, value=value, op=op) -> bool:
            a = row[li]
            return a is not None and op(a, value)

        return attr_const

    assert isinstance(left, Constant) and isinstance(right, AttributeRef)
    ri = resolve_slot(right, slots)
    if ri is None:
        return _unresolved(right)
    value = left.value
    if value is None:
        return lambda row: False

    def const_attr(row: Row, ri=ri, value=value, op=op) -> bool:
        b = row[ri]
        return b is not None and op(value, b)

    return const_attr


def compile_clauses(
    clauses: Sequence[PrimitiveClause], slots: Mapping[str, int]
) -> RowPredicate:
    """Conjunction of compiled clauses (empty conjunction is True)."""
    compiled = [compile_clause(clause, slots) for clause in clauses]
    if not compiled:
        return lambda row: True
    if len(compiled) == 1:
        return compiled[0]

    def conjunction(row: Row, compiled=tuple(compiled)) -> bool:
        for predicate in compiled:
            if not predicate(row):
                return False
        return True

    return conjunction


def compile_condition(
    condition: Condition, slots: Mapping[str, int]
) -> RowPredicate:
    """A whole :class:`Condition` as one positional predicate."""
    return compile_clauses(condition.clauses, slots)


# ----------------------------------------------------------------------
# Column-at-a-time kernels (the columnar plane)
# ----------------------------------------------------------------------
#: A kernel narrows a selection vector over a column layout: it takes the
#: columns (indexed by slot) and the surviving row positions, and returns
#: the positions that also satisfy its clause.
Columns = Sequence[Sequence[Any]]
Selection = Sequence[int]
ColumnKernel = Callable[[Columns, Selection], Selection]

_EMPTY_SLOTS: frozenset[int] = frozenset()


def _unresolved_kernel(
    ref: AttributeRef,
) -> tuple[ColumnKernel, frozenset[int]]:
    """Kernel that fails like the interpreter: only when rows are scanned.

    An unresolved operand over an *empty* selection selects nothing and
    raises nothing — the row planes never invoke their predicate on an
    empty candidate stream either, so lazy-failure timing is identical.
    """

    def raise_on_scan(columns: Columns, selection: Selection) -> Selection:
        if selection:
            raise EvaluationError(
                f"attribute {ref.qualified!r} not present in row"
            )
        return []

    return raise_on_scan, _EMPTY_SLOTS


def compile_clause_kernel(
    clause: PrimitiveClause, slots: Mapping[str, int]
) -> tuple[ColumnKernel, frozenset[int]]:
    """One clause as a selection-vector kernel, plus the slots it reads.

    The slot set lets callers materialize only the columns a conjunction
    actually touches (sparse layouts pass ``None`` placeholders for the
    rest).  NULL semantics match :func:`compile_clause`: a ``None`` in
    either operand never satisfies the clause, and a ``None`` constant
    empties the selection outright.
    """
    op = _OPERATORS[clause.comparator]
    left, right = clause.left, clause.right

    if isinstance(left, AttributeRef) and isinstance(right, AttributeRef):
        li = resolve_slot(left, slots)
        ri = resolve_slot(right, slots)
        if li is None:
            return _unresolved_kernel(left)
        if ri is None:
            return _unresolved_kernel(right)

        def attr_attr(
            columns: Columns, selection: Selection, li=li, ri=ri, op=op
        ) -> Selection:
            a = columns[li]
            b = columns[ri]
            return [
                r
                for r in selection
                if (x := a[r]) is not None
                and (y := b[r]) is not None
                and op(x, y)
            ]

        return attr_attr, frozenset((li, ri))

    if isinstance(left, AttributeRef):
        assert isinstance(right, Constant)
        li = resolve_slot(left, slots)
        if li is None:
            return _unresolved_kernel(left)
        value = right.value
        if value is None:
            return (lambda columns, selection: []), _EMPTY_SLOTS

        def attr_const(
            columns: Columns, selection: Selection, li=li, value=value, op=op
        ) -> Selection:
            a = columns[li]
            return [
                r
                for r in selection
                if (x := a[r]) is not None and op(x, value)
            ]

        return attr_const, frozenset((li,))

    assert isinstance(left, Constant) and isinstance(right, AttributeRef)
    ri = resolve_slot(right, slots)
    if ri is None:
        return _unresolved_kernel(right)
    value = left.value
    if value is None:
        return (lambda columns, selection: []), _EMPTY_SLOTS

    def const_attr(
        columns: Columns, selection: Selection, ri=ri, value=value, op=op
    ) -> Selection:
        b = columns[ri]
        return [
            r for r in selection if (y := b[r]) is not None and op(value, y)
        ]

    return const_attr, frozenset((ri,))


class ColumnFilter:
    """A compiled conjunction over columns: kernels + the slots they read.

    Calling the filter narrows ``selection`` through each kernel in clause
    order, short-circuiting on an empty selection exactly like the row
    conjunction short-circuits per row.  ``slots`` is the union of column
    positions the kernels read — callers may pass a columns list with only
    those positions populated.  With ``counters``, every kernel records
    rows scanned (selection in) vs rows selected (selection out).
    """

    __slots__ = ("kernels", "slots")

    def __init__(
        self,
        kernels: Sequence[ColumnKernel],
        slots: Iterable[int],
    ) -> None:
        self.kernels = tuple(kernels)
        self.slots = frozenset(slots)

    def __call__(
        self,
        columns: Columns,
        selection: Selection,
        counters=None,
    ) -> Selection:
        if counters is None:
            for kernel in self.kernels:
                selection = kernel(columns, selection)
                if not selection:
                    break
        else:
            for kernel in self.kernels:
                scanned = len(selection)
                selection = kernel(columns, selection)
                counters.record(scanned, len(selection))
                if not selection:
                    break
        return selection


def compile_clauses_kernel(
    clauses: Sequence[PrimitiveClause], slots: Mapping[str, int]
) -> ColumnFilter:
    """Conjunction of column kernels (empty conjunction passes through)."""
    kernels: list[ColumnKernel] = []
    used: set[int] = set()
    for clause in clauses:
        kernel, read = compile_clause_kernel(clause, slots)
        kernels.append(kernel)
        used |= read
    return ColumnFilter(kernels, used)
