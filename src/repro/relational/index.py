"""Hash indexes over relation rows.

A :class:`HashIndex` maps the values of a fixed subset of attribute
positions to the rows carrying them, giving O(1) equality probes instead of
full scans.  Indexes are owned by :class:`~repro.relational.relation.Relation`
(see :meth:`Relation.index_on`): they are built lazily on first probe and
maintained incrementally through ``insert``/``delete``, so the hot loops of
the execution engine — equijoin evaluation and per-delta-tuple maintenance
probes — reuse one index across calls rather than rebuilding a dict per
query.

Probe semantics follow SQL: a ``None`` (NULL) component never equals
anything, so probes containing ``None`` return no rows even though rows
with ``None`` in an indexed position are stored (they must survive
re-indexing and deletion bookkeeping).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

Row = tuple[Any, ...]

#: Shared empty probe result; callers must treat probe results as read-only.
_NO_ROWS: tuple[Row, ...] = ()


class HashIndex:
    """Equality index on a tuple of attribute positions.

    Buckets preserve insertion order, so probing yields matching rows in
    relation order — the bag a probe returns is identical (up to the
    ordering across *different* keys) to what a filtered scan would
    produce.
    """

    __slots__ = ("positions", "_buckets")

    def __init__(
        self, positions: Sequence[int], rows: Iterable[Row] = ()
    ) -> None:
        self.positions: tuple[int, ...] = tuple(positions)
        self._buckets: dict[Row, list[Row]] = {}
        for row in rows:
            self.add(row)

    def key_of(self, row: Row) -> Row:
        """The index key carried by ``row``."""
        return tuple(row[p] for p in self.positions)

    def add(self, row: Row) -> None:
        """Register one row (duplicates stack up in the bucket)."""
        self._buckets.setdefault(self.key_of(row), []).append(row)

    def discard(self, row: Row) -> bool:
        """Remove one occurrence of ``row``; True if it was indexed."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        try:
            bucket.remove(row)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[key]
        return True

    def probe(self, key: Sequence[Any]) -> Sequence[Row]:
        """Rows whose indexed values equal ``key`` (NULL never matches)."""
        key = tuple(key)
        for value in key:
            if value is None:
                return _NO_ROWS
        return self._buckets.get(key, _NO_ROWS)

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)

    @property
    def is_unique(self) -> bool:
        """True when no key maps to more than one row *right now*.

        Computed on demand (one pass over the buckets) rather than
        cached: the index mutates in place under insert/delete, so a
        cached flag could go stale.  The optimizer's semi-join proof
        checks this against the live extent immediately before an
        evaluation, which cannot change data mid-run.
        """
        return all(len(bucket) <= 1 for bucket in self._buckets.values())

    def __len__(self) -> int:
        """Total indexed rows (sum of bucket sizes)."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:
        return (
            f"HashIndex(positions={self.positions}, "
            f"{self.distinct_keys} keys, {len(self)} rows)"
        )
