"""In-memory relational engine: the substrate every other package builds on.

Public surface:

* :class:`AttributeType`, :class:`Attribute`, :class:`Schema` — typed schemas
* :class:`Relation` — bag-semantics relation instances
* :class:`AttributeRef`, :class:`Constant`, :class:`Comparator`,
  :class:`PrimitiveClause`, :class:`Condition` — predicate ASTs
* :mod:`repro.relational.algebra` — select/project/join/set operators and
  the common-subset-of-attributes comparisons of the paper's Fig. 7
* :class:`HashIndex` — incrementally maintained equality indexes owned by
  relations (:meth:`Relation.index_on`)
* :mod:`repro.relational.compile` — predicate compilation to
  positional-tuple closures
* :class:`Catalog` — named relation stores
* :class:`ExtentStore` / :class:`ExtentSnapshot` — MVCC extent versions
  for the online serving plane (:mod:`repro.relational.versioning`)
"""

from repro.relational.algebra import (
    cartesian_product,
    common_projection,
    cs_difference,
    cs_equal,
    cs_intersection,
    cs_subset,
    difference,
    intersection,
    join,
    natural_equijoin,
    project,
    rename,
    select,
    union,
)
from repro.relational.catalog import Catalog
from repro.relational.compile import compile_clause, compile_condition
from repro.relational.index import HashIndex
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Condition,
    Constant,
    PrimitiveClause,
)
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType, infer_type
from repro.relational.versioning import ExtentSnapshot, ExtentStore

__all__ = [
    "Attribute",
    "AttributeRef",
    "AttributeType",
    "Catalog",
    "Comparator",
    "Condition",
    "Constant",
    "ExtentSnapshot",
    "ExtentStore",
    "HashIndex",
    "PrimitiveClause",
    "Relation",
    "Row",
    "Schema",
    "cartesian_product",
    "common_projection",
    "compile_clause",
    "compile_condition",
    "cs_difference",
    "cs_equal",
    "cs_intersection",
    "cs_subset",
    "difference",
    "infer_type",
    "intersection",
    "join",
    "natural_equijoin",
    "project",
    "rename",
    "select",
    "union",
]
