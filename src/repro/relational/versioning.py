"""MVCC extent versions: immutable snapshots over mutable storage.

The serving plane's storage contract, next to the index and column-store
lifecycles: an :class:`ExtentStore` holds every materialized view extent
and publishes them as *versions* — immutable ``{view name: Relation}``
mappings replaced wholesale at batch commit points.  Readers pin the
version current at query start (:meth:`ExtentStore.snapshot`) and read
it lock-free; writers stage into a private overlay and publish one new
version per batch, so a reader never observes a half-applied storm.

Two modes, switched by the first :meth:`ExtentStore.snapshot` call:

* **Direct** (the default): no snapshot has ever been taken.  Every
  write lands in the live mapping in place, exactly like the plain dict
  this store replaced — zero copies, zero version churn, zero overhead
  for the library-call workflows that never serve reads.
* **Serving**: once a snapshot exists, published mappings and the
  Relation objects inside them are frozen.  Writes inside a batch
  bracket (:meth:`batch`) stage into an overlay; in-place maintenance
  asks :meth:`mutable` for a staged copy-on-write Relation (at most one
  copy per touched view per batch — untouched views share their
  Relation object across versions, byte for byte).  Commit builds the
  next mapping from ``current + overlay`` and swaps the reference under
  the store lock; pinned readers keep whichever mapping they pinned.

The read path holds no shared lock after the pin: a pin is one lock
acquisition to increment a refcount, and every subsequent
:meth:`ExtentSnapshot.extent` call is a plain dict lookup against an
immutable mapping.

Thread/fork safety: all store mutations take the internal lock.  The
fork-based process executor can fork while a reader thread briefly
holds that lock, so the store re-arms its lock in fork children via a
module-level ``os.register_at_fork`` hook (children never serve reads;
they only replay synchronizations).

The store keeps the mutating half of the mapping API (``get`` /
``pop`` / ``update`` / item access) so the synchronization machinery —
including worker-pool bootstrap, which reads extents per shard — works
unchanged against it.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections.abc import Callable, Iterator, Mapping
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.relational.relation import Relation

__all__ = ["ExtentSnapshot", "ExtentStore"]


#: Live stores whose locks must be re-armed in fork children (a reader
#: thread may hold a store lock at the instant the process executor
#: forks; the child would otherwise deadlock on its inherited copy).
_LIVE_STORES: "weakref.WeakSet[ExtentStore]" = weakref.WeakSet()
_AT_FORK_ARMED = False


def _rearm_locks_after_fork() -> None:
    for store in list(_LIVE_STORES):
        store._rearm_after_fork()


def _arm_at_fork() -> None:
    global _AT_FORK_ARMED
    if not _AT_FORK_ARMED and hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=_rearm_locks_after_fork)
        _AT_FORK_ARMED = True


_SENTINEL = object()


class ExtentSnapshot:
    """One pinned extent version: an immutable read-only view handle.

    Obtained from :meth:`ExtentStore.snapshot` (or
    :meth:`~repro.core.eve.EVESystem.snapshot`).  Reads are plain
    lookups against the pinned mapping — no lock, no copy — and stay
    valid for the snapshot's lifetime regardless of concurrent batches.
    Release the pin with :meth:`release` (or use the handle as a
    context manager); reads after release still resolve (the mapping is
    immutable) but the version is no longer accounted as pinned.
    """

    __slots__ = ("version", "_mapping", "_store", "_released")

    def __init__(
        self,
        version: int,
        mapping: "Mapping[str, Relation]",
        store: "ExtentStore",
    ) -> None:
        #: The monotone version number this snapshot pinned.
        self.version = version
        self._mapping = mapping
        self._store = store
        self._released = False

    # -- reads (lock-free) ---------------------------------------------
    def extent(self, view_name: str) -> "Relation":
        """The pinned extent of ``view_name`` (KeyError if absent)."""
        return self._mapping[view_name]

    def get(self, view_name: str) -> "Relation | None":
        """The pinned extent, or None if not materialized here."""
        return self._mapping.get(view_name)

    def names(self) -> tuple[str, ...]:
        """Every view materialized in this version, sorted."""
        return tuple(sorted(self._mapping))

    def __contains__(self, view_name: str) -> bool:
        return view_name in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    # -- lifecycle ------------------------------------------------------
    @property
    def released(self) -> bool:
        """Whether :meth:`release` has run (idempotent)."""
        return self._released

    def release(self) -> None:
        """Drop this snapshot's pin (idempotent)."""
        if not self._released:
            self._released = True
            self._store._unpin(self.version)

    def __enter__(self) -> "ExtentSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "released" if self._released else "pinned"
        return (
            f"ExtentSnapshot(version={self.version}, "
            f"views={len(self._mapping)}, {state})"
        )


class ExtentStore:
    """Versioned store of materialized view extents (see module doc).

    ``on_publish(version, touched, views, pins)`` and
    ``on_release(version, remaining)`` are optional callbacks the owner
    uses to surface :class:`~repro.events.SnapshotPublished` /
    :class:`~repro.events.SnapshotReleased` events; they run outside
    the store lock.
    """

    def __init__(
        self,
        on_publish: Callable[[int, tuple[str, ...], int, int], None]
        | None = None,
        on_release: Callable[[int, int], None] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._current: dict[str, "Relation"] = {}
        #: Overlay of the open batch (serving mode only); a value of
        #: None stages a deletion.
        self._overlay: dict[str, "Relation | None"] = {}
        self._batch_depth = 0
        self._serving = False
        #: Monotone version counter; 0 until the first serving publish.
        self.version = 0
        #: Cumulative accounting (diffed per call for reports).
        self.publishes = 0
        self.staged_writes = 0
        self.copies = 0
        #: version -> live pin count.
        self._pins: dict[int, int] = {}
        self.on_publish = on_publish
        self.on_release = on_release
        _LIVE_STORES.add(self)
        _arm_at_fork()

    def _rearm_after_fork(self) -> None:
        # Fork children replay searches only; any pin state belongs to
        # the parent's reader threads, which did not cross the fork.
        self._lock = threading.Lock()

    # -- mapping API (writer-side: overlay over current) ---------------
    def get(self, view_name: str, default=None):
        """The latest extent as the writer sees it (overlay included)."""
        if not self._serving:
            # Direct mode: single dict ops are GIL-atomic; skipping the
            # lock keeps the store free for never-serving workloads.
            return self._current.get(view_name, default)
        with self._lock:
            if view_name in self._overlay:
                staged = self._overlay[view_name]
                return default if staged is None else staged
            return self._current.get(view_name, default)

    def __getitem__(self, view_name: str) -> "Relation":
        found = self.get(view_name, _SENTINEL)
        if found is _SENTINEL:
            raise KeyError(view_name)
        return found

    def __contains__(self, view_name: str) -> bool:
        return self.get(view_name, _SENTINEL) is not _SENTINEL

    def __len__(self) -> int:
        with self._lock:
            return len(self._merged())

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._merged()))

    def names(self) -> tuple[str, ...]:
        """Every materialized view name, sorted (overlay included)."""
        with self._lock:
            return tuple(sorted(self._merged()))

    def _merged(self) -> dict[str, "Relation"]:
        if not self._overlay:
            return self._current
        merged = dict(self._current)
        for name, staged in self._overlay.items():
            if staged is None:
                merged.pop(name, None)
            else:
                merged[name] = staged
        return merged

    def __setitem__(self, view_name: str, extent: "Relation") -> None:
        if not self._serving:
            self._current[view_name] = extent
            return
        with self._lock:
            self._overlay[view_name] = extent
            self.staged_writes += 1
            publish = self._batch_depth == 0
        if publish:
            # Out-of-batch serving write (define_view/refresh outside a
            # batch): publish a one-write version immediately.
            self._publish()

    def pop(self, view_name: str, default=None):
        """Remove ``view_name``; returns the removed extent or default."""
        if not self._serving:
            return self._current.pop(view_name, default)
        publish = False
        with self._lock:
            staged = self._overlay.get(view_name, _SENTINEL)
            if staged is None:
                return default
            removed = (
                staged
                if staged is not _SENTINEL
                else self._current.get(view_name, _SENTINEL)
            )
            if removed is _SENTINEL:
                return default
            self._overlay[view_name] = None
            self.staged_writes += 1
            publish = self._batch_depth == 0
        if publish:
            self._publish()
        return removed

    def update(self, mapping: "Mapping[str, Relation]") -> None:
        """Bulk-adopt extents (worker-child bootstrap path)."""
        if not self._serving:
            self._current.update(mapping)
            return
        with self._lock:
            self._overlay.update(mapping)
            self.staged_writes += len(mapping)
            publish = self._batch_depth == 0 and bool(mapping)
        if publish:
            self._publish()

    def mutable(self, view_name: str) -> "Relation | None":
        """The extent as an in-place-mutation target, or None.

        Direct mode returns the live Relation.  Serving mode returns
        the batch's staged copy, creating it on first touch — the one
        copy a maintained view pays per batch; repeat calls inside the
        same batch return the same staged object, and views the batch
        never touches are never copied.
        """
        if not self._serving:
            return self._current.get(view_name)
        with self._lock:
            staged = self._overlay.get(view_name, _SENTINEL)
            if staged is None:
                return None
            if staged is _SENTINEL:
                live = self._current.get(view_name)
                if live is None:
                    return None
                staged = live.copy()
                self._overlay[view_name] = staged
                self.staged_writes += 1
                self.copies += 1
            return staged

    # -- batch bracket --------------------------------------------------
    def batch(self) -> "_BatchBracket":
        """Context manager bracketing one atomic multi-view commit."""
        return _BatchBracket(self)

    def _begin_batch(self) -> None:
        with self._lock:
            self._batch_depth += 1

    def _commit_batch(self) -> None:
        with self._lock:
            self._batch_depth -= 1
            publish = (
                self._batch_depth == 0
                and self._serving
                and bool(self._overlay)
            )
        if publish:
            self._publish()

    def _publish(self) -> None:
        """Swap in ``current + overlay`` as the next pinned version."""
        with self._lock:
            if not self._overlay:
                return
            touched = tuple(sorted(self._overlay))
            self._current = self._merged()
            self._overlay = {}
            self.version += 1
            self.publishes += 1
            version = self.version
            views = len(self._current)
            pins = sum(self._pins.values())
        if self.on_publish is not None:
            self.on_publish(version, touched, views, pins)

    # -- snapshots ------------------------------------------------------
    @property
    def serving(self) -> bool:
        """Whether serving mode is armed (any snapshot ever taken)."""
        return self._serving

    @property
    def active_pins(self) -> int:
        """Total live snapshot pins across all versions."""
        with self._lock:
            return sum(self._pins.values())

    def snapshot(self) -> ExtentSnapshot:
        """Pin the current version for lock-free reads.

        The first call arms serving mode: from here on, published
        mappings are immutable and every batch commit produces a new
        version.  Take the first snapshot before starting concurrent
        writers — arming mid-batch cannot retroactively freeze
        Relations the open batch already mutated in place.
        """
        with self._lock:
            self._serving = True
            version = self.version
            mapping = self._current
            self._pins[version] = self._pins.get(version, 0) + 1
        return ExtentSnapshot(version, mapping, self)

    def _unpin(self, version: int) -> None:
        with self._lock:
            remaining = self._pins.get(version, 0) - 1
            if remaining > 0:
                self._pins[version] = remaining
            else:
                self._pins.pop(version, None)
                remaining = 0
        if self.on_release is not None:
            self.on_release(version, remaining)


class _BatchBracket:
    """``with store.batch():`` — publish once at the outermost exit."""

    __slots__ = ("_store",)

    def __init__(self, store: ExtentStore) -> None:
        self._store = store

    def __enter__(self) -> ExtentStore:
        self._store._begin_batch()
        return self._store

    def __exit__(self, *exc_info) -> None:
        # Publish even on error: committed searches already landed in
        # the VKB and sync log, so holding their extents back would
        # desynchronize readers from the journal (the sequential
        # reference could never produce that state either).
        self._store._commit_batch()
