"""Relational algebra operators over :class:`~repro.relational.relation.Relation`.

Every operator returns a fresh relation; inputs are never mutated.  The
operators cover exactly what EVE view queries and the quality model need:

* ``select`` — sigma with a :class:`Condition` or any row predicate,
* ``project`` — pi with optional duplicate elimination and renaming,
* ``join`` / ``cartesian_product`` — theta-joins via conjunctive conditions,
* ``union`` / ``difference`` / ``intersection`` — set ops used by the
  common-subset-of-attributes comparisons of Sec. 5.3 (Fig. 7).

Conditions are compiled once into positional-tuple closures
(:mod:`repro.relational.compile`) and equijoins probe the relations' own
hash indexes (:mod:`repro.relational.index`); the original interpreted
nested-loop paths remain reachable via ``compiled=False`` /
``use_index=False`` so the equivalence property tests and the engine
benchmarks can compare both.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.errors import SchemaError
from repro.relational.compile import compile_condition, schema_slots
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Condition,
    PrimitiveClause,
)
from repro.relational.relation import Relation, Row
from repro.relational.schema import Schema

RowPredicate = Callable[[Mapping[str, Any]], bool]


def _as_predicate(condition: Condition | RowPredicate) -> RowPredicate:
    if isinstance(condition, Condition):
        return condition.evaluate
    return condition


def select(
    relation: Relation,
    condition: Condition | RowPredicate,
    new_name: str | None = None,
    compiled: bool = True,
) -> Relation:
    """sigma_condition(relation): rows satisfying the condition."""
    schema = (
        relation.schema.rename_relation(new_name) if new_name else relation.schema
    )
    result = Relation(schema)
    if compiled and isinstance(condition, Condition):
        predicate = compile_condition(condition, schema_slots(relation.schema))
        for row in relation:
            if predicate(row):
                result.insert(row)
        return result
    predicate = _as_predicate(condition)
    for row in relation:
        if predicate(relation.named_row(row)):
            result.insert(row)
    return result


def project(
    relation: Relation,
    attributes: Sequence[str],
    new_name: str | None = None,
    distinct: bool = False,
) -> Relation:
    """pi_attributes(relation), optionally duplicate-eliminating.

    The quality model always projects with ``distinct=True`` ("duplicates
    removed first", Sec. 5.4.2); view materialization keeps bag semantics.
    """
    positions = [relation.schema.position(name) for name in attributes]
    schema = relation.schema.project(attributes, new_name)
    result = Relation(schema)
    seen: set[Row] = set()
    for row in relation:
        projected = tuple(row[i] for i in positions)
        if distinct:
            if projected in seen:
                continue
            seen.add(projected)
        result.insert(projected)
    return result


def rename(
    relation: Relation, mapping: Mapping[str, str], new_name: str | None = None
) -> Relation:
    """Relation with attributes renamed per ``mapping`` (old -> new)."""
    schema = relation.schema
    for old, new in mapping.items():
        schema = schema.rename_attribute(old, new)
    if new_name:
        schema = schema.rename_relation(new_name)
    return Relation(schema, relation.rows)


def cartesian_product(
    left: Relation, right: Relation, new_name: str | None = None
) -> Relation:
    """left x right with clash-qualified attribute names."""
    name = new_name or f"{left.name}_x_{right.name}"
    schema = left.schema.concat(right.schema, name)
    result = Relation(schema)
    for lrow in left:
        for rrow in right:
            result.insert((*lrow, *rrow))
    return result


def _equijoin_pairs(
    left: Relation, right: Relation, condition: Condition
) -> list[tuple[int, int]] | None:
    """Positions of equijoin attribute pairs, or None if not all-equijoin."""
    pairs: list[tuple[int, int]] = []
    for clause in condition.clauses:
        if not clause.is_equijoin:
            return None
        assert isinstance(clause.left, AttributeRef)
        assert isinstance(clause.right, AttributeRef)
        refs = [clause.left, clause.right]
        left_ref = next(
            (r for r in refs if _ref_in(r, left.schema, right.schema)), None
        )
        right_ref = next(
            (r for r in refs if r is not left_ref and _ref_in(r, right.schema, left.schema)),
            None,
        )
        if left_ref is None or right_ref is None:
            return None
        pairs.append(
            (
                left.schema.position(left_ref.attribute),
                right.schema.position(right_ref.attribute),
            )
        )
    return pairs


def _ref_in(ref: AttributeRef, schema: Schema, other: Schema) -> bool:
    """Whether ``ref`` unambiguously resolves inside ``schema``."""
    if ref.relation is not None:
        return ref.relation == schema.name and ref.attribute in schema
    return ref.attribute in schema and ref.attribute not in other


def _product_slots(left: Relation, right: Relation) -> dict[str, int]:
    """Slot layout of a concatenated ``(*lrow, *rrow)`` tuple.

    Mirrors the named-row view the interpreted fallback builds: bare names
    resolve left-first (left wins clashes), qualified names resolve to
    their own relation.
    """
    slots: dict[str, int] = {}
    offset = left.schema.arity
    for position, attr in enumerate(right.schema.attribute_names):
        slots[attr] = offset + position
        slots[f"{right.name}.{attr}"] = offset + position
    for position, attr in enumerate(left.schema.attribute_names):
        slots[attr] = position  # left wins bare-name clashes
        slots[f"{left.name}.{attr}"] = position
    return slots


def join(
    left: Relation,
    right: Relation,
    condition: Condition,
    new_name: str | None = None,
    use_index: bool = True,
) -> Relation:
    """Theta-join of two relations under a conjunctive condition.

    Pure-equijoin conditions whose sides resolve unambiguously probe the
    right relation's hash index; everything else runs nested loops with a
    condition compiled over the product tuple.  ``use_index=False`` forces
    the original interpreted nested-loop evaluation (the reference the
    equivalence tests compare against).
    """
    name = new_name or f"{left.name}_join_{right.name}"
    schema = left.schema.concat(right.schema, name)
    result = Relation(schema)

    pairs = _equijoin_pairs(left, right, condition) if condition else None
    if pairs and use_index:
        index = right.index_on_positions(tuple(rpos for _, rpos in pairs))
        left_positions = tuple(lpos for lpos, _ in pairs)
        for lrow in left:
            key = tuple(lrow[p] for p in left_positions)
            for rrow in index.probe(key):
                result.insert((*lrow, *rrow))
        return result
    if pairs:
        index_map: dict[tuple[Any, ...], list[Row]] = {}
        for rrow in right:
            key = tuple(rrow[rpos] for _, rpos in pairs)
            index_map.setdefault(key, []).append(rrow)
        for lrow in left:
            key = tuple(lrow[lpos] for lpos, _ in pairs)
            if None in key:
                continue
            for rrow in index_map.get(key, ()):
                result.insert((*lrow, *rrow))
        return result

    if use_index:
        predicate = compile_condition(condition, _product_slots(left, right))
        for lrow in left:
            for rrow in right:
                combined = (*lrow, *rrow)
                if predicate(combined):
                    result.insert(combined)
        return result

    for lrow in left:
        lnamed = left.named_row(lrow)
        qualified_l = {f"{left.name}.{k}": v for k, v in lnamed.items()}
        for rrow in right:
            rnamed = right.named_row(rrow)
            row_view: dict[str, Any] = {}
            row_view.update(rnamed)
            row_view.update(lnamed)  # left wins bare-name clashes
            row_view.update({f"{right.name}.{k}": v for k, v in rnamed.items()})
            row_view.update(qualified_l)
            if condition.evaluate(row_view):
                result.insert((*lrow, *rrow))
    return result


def natural_equijoin(
    left: Relation, right: Relation, on: Sequence[tuple[str, str]],
    new_name: str | None = None,
) -> Relation:
    """Convenience equijoin on explicit (left_attr, right_attr) pairs."""
    clauses = [
        PrimitiveClause(
            AttributeRef(l, left.name), Comparator.EQ, AttributeRef(r, right.name)
        )
        for l, r in on
    ]
    return join(left, right, Condition(clauses), new_name)


def _check_compatible(left: Relation, right: Relation, op: str) -> None:
    if left.schema.arity != right.schema.arity:
        raise SchemaError(
            f"{op}: arity mismatch {left.schema.arity} vs {right.schema.arity}"
        )


def union(left: Relation, right: Relation, distinct: bool = True) -> Relation:
    """Set (default) or bag union; schema taken from the left operand."""
    _check_compatible(left, right, "union")
    result = Relation(left.schema)
    if distinct:
        seen: set[Row] = set()
        for row in list(left) + list(right):
            if row not in seen:
                seen.add(row)
                result.insert(row)
    else:
        for row in list(left) + list(right):
            result.insert(row)
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference left \\ right (duplicates in left collapse)."""
    _check_compatible(left, right, "difference")
    right_rows = right.row_set()
    result = Relation(left.schema)
    seen: set[Row] = set()
    for row in left:
        if row not in right_rows and row not in seen:
            seen.add(row)
            result.insert(row)
    return result


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection of the two extents; schema from the left operand."""
    _check_compatible(left, right, "intersection")
    right_rows = right.row_set()
    result = Relation(left.schema)
    seen: set[Row] = set()
    for row in left:
        if row in right_rows and row not in seen:
            seen.add(row)
            result.insert(row)
    return result


# ----------------------------------------------------------------------
# Common-subset-of-attributes operators (Sec. 5.3, Fig. 7)
# ----------------------------------------------------------------------
def common_projection(view: Relation, other: Relation) -> Relation:
    """``V^(V_i)`` of Definition 1: pi over the shared attributes, distinct.

    Raises :class:`SchemaError` when the views share no attributes, because
    every Fig. 7 operator is undefined in that case.
    """
    common = view.schema.common_attributes(other.schema)
    if not common:
        raise SchemaError(
            f"views {view.name!r} and {other.name!r} share no attributes"
        )
    return project(view, common, distinct=True)


def cs_equal(view: Relation, other: Relation) -> bool:
    """``V =~ V_i``: equality on the common subset of attributes."""
    return (
        common_projection(view, other).row_set()
        == common_projection(other, view).row_set()
    )


def cs_subset(view: Relation, other: Relation) -> bool:
    """``view ⊆~ other`` on the common subset of attributes."""
    return common_projection(view, other).row_set() <= common_projection(
        other, view
    ).row_set()


def cs_intersection(view: Relation, other: Relation) -> Relation:
    """``V ∩~ V_i`` (Fig. 7): shared projected tuples."""
    return intersection(
        common_projection(view, other), common_projection(other, view)
    )


def cs_difference(view: Relation, other: Relation) -> Relation:
    """``V \\~ V_i`` (Fig. 7): projected tuples of V missing from V_i."""
    return difference(
        common_projection(view, other), common_projection(other, view)
    )
