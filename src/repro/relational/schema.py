"""Relation schemas: named, typed attribute lists.

A schema is the static description ``IS.R(A_1, ..., A_n)`` from MISD
(Sec. 3.2, Eq. 3).  Attribute order matters (tuples are positional), names
are unique within a schema, and every attribute carries a domain type plus
an optional byte size override used by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.types import AttributeType


@dataclass(frozen=True)
class Attribute:
    """A single named, typed attribute of a relation schema.

    ``size`` is the byte width ``s_{R.A}`` of Sec. 6.1; when ``None`` the
    type's default width is used.
    """

    name: str
    type: AttributeType = AttributeType.INT
    size: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name {self.name!r}")
        if self.size is not None and self.size <= 0:
            raise SchemaError(f"attribute {self.name!r} has non-positive size")

    @property
    def byte_size(self) -> int:
        """Width in bytes, falling back to the domain default."""
        return self.size if self.size is not None else self.type.default_size

    def renamed(self, new_name: str) -> "Attribute":
        """Copy of this attribute under a different name (same type/size)."""
        return Attribute(new_name, self.type, self.size)

    def __str__(self) -> str:
        return f"{self.name}:{self.type.label}"


class Schema:
    """An ordered collection of uniquely named attributes.

    Supports the projection/renaming operations the synchronizer and the
    quality model need: lookup by name, positional index, sub-schema
    extraction, and concatenation for joins.
    """

    __slots__ = ("name", "_attributes", "_index", "_tuple_byte_size")

    def __init__(self, name: str, attributes: Iterable[Attribute | str]) -> None:
        self.name = name
        normalized: list[Attribute] = []
        for attr in attributes:
            normalized.append(Attribute(attr) if isinstance(attr, str) else attr)
        self._attributes: tuple[Attribute, ...] = tuple(normalized)
        self._index: dict[str, int] = {}
        for position, attr in enumerate(self._attributes):
            if attr.name in self._index:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in schema {name!r}"
                )
            self._index[attr.name] = position
        # Schemas are immutable, so the tuple width is fixed at birth;
        # computing it here keeps the per-message maintenance loop O(1).
        self._tuple_byte_size = sum(attr.byte_size for attr in self._attributes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes)

    @property
    def arity(self) -> int:
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:
        attrs = ", ".join(str(attr) for attr in self._attributes)
        return f"{self.name}({attrs})"

    def attribute(self, name: str) -> Attribute:
        """The attribute called ``name`` or :class:`UnknownAttributeError`."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.name) from None

    def position(self, name: str) -> int:
        """Zero-based index of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(name, self.name) from None

    def tuple_byte_size(self) -> int:
        """Total width of one tuple in bytes (``s_R`` of the cost model)."""
        return self._tuple_byte_size

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str], new_name: str | None = None) -> "Schema":
        """Sub-schema restricted (and re-ordered) to ``names``."""
        return Schema(
            new_name if new_name is not None else self.name,
            [self.attribute(name) for name in names],
        )

    def rename_relation(self, new_name: str) -> "Schema":
        """Same attributes under a new relation name."""
        return Schema(new_name, self._attributes)

    def rename_attribute(self, old: str, new: str) -> "Schema":
        """Schema with attribute ``old`` renamed to ``new``."""
        if old not in self._index:
            raise UnknownAttributeError(old, self.name)
        if new in self._index and new != old:
            raise SchemaError(f"attribute {new!r} already exists in {self.name!r}")
        return Schema(
            self.name,
            [a.renamed(new) if a.name == old else a for a in self._attributes],
        )

    def drop_attribute(self, name: str) -> "Schema":
        """Schema without attribute ``name`` (must leave at least one)."""
        if name not in self._index:
            raise UnknownAttributeError(name, self.name)
        remaining = [a for a in self._attributes if a.name != name]
        if not remaining:
            raise SchemaError(f"cannot drop last attribute of {self.name!r}")
        return Schema(self.name, remaining)

    def add_attribute(self, attribute: Attribute) -> "Schema":
        """Schema with ``attribute`` appended."""
        if attribute.name in self._index:
            raise SchemaError(
                f"attribute {attribute.name!r} already exists in {self.name!r}"
            )
        return Schema(self.name, [*self._attributes, attribute])

    def concat(self, other: "Schema", new_name: str) -> "Schema":
        """Concatenation for cartesian products/joins.

        Name clashes are resolved by qualifying the clashing attribute of
        ``other`` with its relation name (``B`` -> ``other_B``), mirroring
        how SQL engines disambiguate.
        """
        merged: list[Attribute] = list(self._attributes)
        taken = set(self._index)
        for attr in other._attributes:
            name = attr.name
            if name in taken:
                name = f"{other.name}_{attr.name}"
                if name in taken:
                    raise SchemaError(
                        f"cannot disambiguate attribute {attr.name!r} when "
                        f"joining {self.name!r} with {other.name!r}"
                    )
            taken.add(name)
            merged.append(attr.renamed(name))
        return Schema(new_name, merged)

    def common_attributes(self, other: "Schema") -> tuple[str, ...]:
        """Names present in both schemas, in this schema's order.

        This is ``Attr(V) ∩ Attr(V_i)`` of Definition 1 — the comparison
        basis for every extent-divergence computation.
        """
        return tuple(n for n in self.attribute_names if n in other)
