"""A named catalog of relations.

Both individual information sources and the warehouse's view store keep
their relations in a :class:`Catalog`; it provides the uniform
name -> relation mapping plus the schema-evolution entry points that
capability changes go through.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import UnknownRelationError, WorkspaceError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


class Catalog:
    """Mutable mapping of relation name -> :class:`Relation`.

    The ``owner`` label only feeds error messages ("relation R in IS1").
    """

    __slots__ = ("owner", "_relations")

    def __init__(self, owner: str = "catalog") -> None:
        self.owner = owner
        self._relations: dict[str, Relation] = {}

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def get(self, name: str) -> Relation:
        """The relation called ``name`` or :class:`UnknownRelationError`."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, self.owner) from None

    def schema(self, name: str) -> Schema:
        return self.get(name).schema

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, relation: Relation) -> Relation:
        """Register ``relation`` under its own name; names must be fresh."""
        if relation.name in self._relations:
            raise WorkspaceError(
                f"relation {relation.name!r} already exists in {self.owner}"
            )
        self._relations[relation.name] = relation
        return relation

    def add_empty(self, schema: Schema) -> Relation:
        """Create and register an empty relation with the given schema."""
        return self.add(Relation(schema))

    def remove(self, name: str) -> Relation:
        """Deregister and return the named relation."""
        if name not in self._relations:
            raise UnknownRelationError(name, self.owner)
        return self._relations.pop(name)

    # ------------------------------------------------------------------
    # Schema evolution (capability changes land here)
    # ------------------------------------------------------------------
    def rename_relation(self, old: str, new: str) -> Relation:
        """change-relation-name: re-register under ``new``."""
        if new in self._relations and new != old:
            raise WorkspaceError(
                f"cannot rename {old!r} to {new!r}: name taken in {self.owner}"
            )
        relation = self.remove(old).with_renamed_relation(new)
        self._relations[new] = relation
        return relation

    def drop_attribute(self, relation_name: str, attribute: str) -> Relation:
        """delete-attribute: replace the stored relation in place."""
        evolved = self.get(relation_name).with_schema_dropped_attribute(attribute)
        self._relations[relation_name] = evolved
        return evolved

    def add_attribute(
        self, relation_name: str, attribute: Attribute, default=None
    ) -> Relation:
        """add-attribute with a fill value for existing rows."""
        evolved = self.get(relation_name).with_added_attribute(attribute, default)
        self._relations[relation_name] = evolved
        return evolved

    def rename_attribute(self, relation_name: str, old: str, new: str) -> Relation:
        """change-attribute-name on the stored relation."""
        evolved = self.get(relation_name).with_renamed_attribute(old, new)
        self._relations[relation_name] = evolved
        return evolved
