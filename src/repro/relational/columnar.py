"""Columnar extent storage: per-attribute column arrays + position indexes.

The row planes (dict bindings, positional tuples) execute one Python-level
iteration per row.  This module owns the storage side of the third plane,
``representation="columnar"``: a :class:`ColumnStore` keeps one column per
schema attribute — an ``array.array`` for NULL-free INT/FLOAT columns, a
plain list otherwise — and serves *position indexes* (value -> row
positions) for vectorized hash probes.  Compiled column kernels
(:mod:`repro.relational.compile`) run over these columns with selection
vectors, so a conjunction of WHERE clauses costs a handful of list
comprehensions instead of a per-row predicate call.

Stores are owned by :class:`~repro.relational.relation.Relation`
(see :meth:`Relation.column_store`) and follow the same lifecycle as its
hash indexes: built lazily on first use, appended to on ``insert``, and
dropped on ``delete``/bulk mutation (middle-of-column removal would shift
every cached row position).

Everything here is execution machinery only: the modeled CF_M/CF_T/CF_IO
cost counters never observe which plane ran.  :class:`KernelCounters` is
the *observability* surface — rows scanned vs rows selected per kernel —
reported through ``StageCounters`` and ``SystemReport``.
"""

from __future__ import annotations

from array import array
from operator import itemgetter
from collections.abc import Iterable, Sequence
from typing import Any

from repro.relational.schema import Schema
from repro.relational.types import AttributeType

Row = tuple[Any, ...]

#: Array typecodes for columns that can drop the per-value object boxing.
#: BOOL stays a list (``array`` would coerce to 0/1 ints and break type
#: validation on round trips); STRING has no fixed-width array form.
_ARRAY_CODES = {
    AttributeType.INT: "q",
    AttributeType.FLOAT: "d",
}


def typed_column(attr_type: AttributeType, values: Sequence) -> "list | array":
    """The most compact column for ``values`` of domain ``attr_type``.

    INT/FLOAT columns become ``array.array`` when every value fits (no
    NULLs, no out-of-range ints); everything else — including columns
    that merely *might* hold a NULL later — stays a plain list and is
    upgraded lazily by :meth:`ColumnStore.append`'s fallback.
    """
    code = _ARRAY_CODES.get(attr_type)
    if code is not None:
        try:
            return array(code, values)
        except (TypeError, OverflowError):
            # NULLs or ints beyond 64 bits: keep the boxed list form.
            pass
    return values if isinstance(values, list) else list(values)


class ColumnStore:
    """Per-attribute columns of one relation, plus cached position indexes.

    ``columns[i]`` holds the values of schema attribute ``i`` for rows
    ``0..length-1`` in relation row order.  A *position index* maps a key
    (one column's value, or a tuple across several columns) to the row
    positions carrying it — a bare ``int`` for the overwhelmingly common
    unique-key case, a list in insertion order otherwise — so a probe
    yields matches in relation order exactly like
    :meth:`~repro.relational.index.HashIndex.probe` without allocating a
    single-element list per distinct key.  Rows with a NULL key
    component are not indexed at all: NULL never equals anything, so a
    probe for them must find nothing (and a probe *with* a NULL key
    misses naturally, because no such key was ever stored).
    """

    __slots__ = ("schema", "columns", "_position_indexes", "_unique")

    #: Same probe-diversity guard as ``Relation.MAX_CACHED_INDEXES``.
    MAX_CACHED_INDEXES = 8

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()) -> None:
        self.schema = schema
        rows = rows if isinstance(rows, list) else list(rows)
        columns: list = []
        # Per-column itemgetter extraction: array() consumes the mapped
        # iterator at C speed, and no transpose-wide iterator state is
        # ever materialized (zip(*rows) would allocate one iterator per
        # row up front).
        for i, attr in enumerate(schema.attributes):
            code = _ARRAY_CODES.get(attr.type)
            if code is not None:
                try:
                    columns.append(array(code, map(itemgetter(i), rows)))
                    continue
                except (TypeError, OverflowError):
                    pass
            columns.append(list(map(itemgetter(i), rows)))
        self.columns = columns
        self._position_indexes: dict[tuple[int, ...], dict] = {}
        self._unique: set[tuple[int, ...]] = set()

    @property
    def length(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def append(self, row: Row) -> None:
        """Register one inserted row (keeps cached indexes live)."""
        for i, value in enumerate(row):
            column = self.columns[i]
            try:
                column.append(value)
            except (TypeError, OverflowError):
                # A NULL (or oversized int) landing in an array column:
                # fall back to the boxed list form for good.
                column = list(column)
                column.append(value)
                self.columns[i] = column
        position = len(self.columns[0]) - 1
        for positions, index in self._position_indexes.items():
            if len(positions) == 1:
                key = row[positions[0]]
                if key is None:
                    continue
            else:
                key = tuple(row[p] for p in positions)
                if None in key:
                    continue
            bucket = index.get(key)
            if bucket is None:
                index[key] = position
            elif bucket.__class__ is list:
                bucket.append(position)
            else:
                index[key] = [bucket, position]
                self._unique.discard(positions)

    def position_index(self, positions: Sequence[int]) -> dict:
        """Value -> row position(s), over the given column(s).

        Buckets are a bare ``int`` for unique keys and a list (insertion
        order) for duplicated ones; a single-column index with any
        duplicate key stores every bucket as a list (the grouping loop
        stays branch-free), and single-column keys are stored bare (not
        1-tuples).  Both choices keep the hot probe loop free of
        per-key allocations.  Cached per position set with FIFO
        eviction, like the relation's row-level hash indexes.
        """
        key = tuple(positions)
        index = self._position_indexes.get(key)
        if index is None:
            if len(self._position_indexes) >= self.MAX_CACHED_INDEXES:
                evicted = next(iter(self._position_indexes))
                self._position_indexes.pop(evicted)
                self._unique.discard(evicted)
            index = {}
            if len(key) == 1:
                column = self.columns[key[0]]
                nullable = isinstance(column, list)
                # All-unique fast path: one C-level dict build.  If any
                # key repeats, later positions overwrite earlier ones
                # and the length check catches it; a NULL key shows up
                # as a None entry (one O(1) lookup, no column scan).
                index = dict(zip(column, range(len(column))))
                if len(index) == len(column) and (
                    not nullable or None not in index
                ):
                    self._position_indexes[key] = index
                    self._unique.add(key)
                    return index
                # Duplicates (or NULLs) present: group positions into
                # list buckets.  try/except beats get()-and-branch here
                # because hits vastly outnumber first sightings.
                index = {}
                for position, value in enumerate(column):
                    if nullable and value is None:
                        continue
                    try:
                        index[value].append(position)
                    except KeyError:
                        index[value] = [position]
            else:
                get = index.get
                for position, values in enumerate(
                    zip(*(self.columns[p] for p in key))
                ):
                    if None in values:
                        continue
                    bucket = get(values)
                    if bucket is None:
                        index[values] = position
                    elif bucket.__class__ is list:
                        bucket.append(position)
                    else:
                        index[values] = [bucket, position]
            self._position_indexes[key] = index
        return index

    def index_is_unique(self, positions: Sequence[int]) -> bool:
        """Whether the cached index over ``positions`` has all-int buckets.

        Only ever True for indexes built via the all-unique fast path
        and not degraded since by a duplicate-key ``append`` — a safe
        underestimate that lets probes take the vectorized path.
        """
        return tuple(positions) in self._unique


def probe_positions(
    key_columns: Sequence[Sequence[Any]],
    index: dict,
    counters: "KernelCounters | None" = None,
    unique: bool = False,
) -> tuple[list[int], list[int]]:
    """Vectorized hash probe: one dict lookup per incoming row.

    ``key_columns`` are the already-bound columns feeding the probe key
    (one entry per indexed position, all the same length); ``index`` is
    a :meth:`ColumnStore.position_index`.  Returns ``(left, right)``
    position vectors: ``left[k]`` is the incoming row and ``right[k]``
    the matching stored row of match ``k``, in incoming-major order with
    bucket (relation) order within — exactly the candidate order of the
    row planes.  NULL keys miss by construction (never indexed).

    ``unique=True`` asserts every bucket is a bare int (see
    :meth:`ColumnStore.index_is_unique`): the probe then becomes one
    C-level ``map`` over the key column, with a compaction pass only
    when some keys missed.
    """
    left: list[int] = []
    right: list[int] = []
    if unique:
        keys: Iterable = (
            key_columns[0] if len(key_columns) == 1 else zip(*key_columns)
        )
        hits = list(map(index.get, keys))
        count = len(hits)
        if None in hits:
            left = [i for i, bucket in enumerate(hits) if bucket is not None]
            right = [hits[i] for i in left]
        else:
            left = list(range(count))
            right = hits
        if counters is not None:
            counters.record(count, len(left))
        return left, right
    left_append = left.append
    right_append = right.append
    get = index.get
    if len(key_columns) == 1:
        for i, value in enumerate(key_columns[0]):
            bucket = get(value)
            if bucket is None:
                continue
            if bucket.__class__ is list:
                left.extend([i] * len(bucket))
                right.extend(bucket)
            else:
                left_append(i)
                right_append(bucket)
    else:
        for i, values in enumerate(zip(*key_columns)):
            bucket = get(values)
            if bucket is None:
                continue
            if bucket.__class__ is list:
                left.extend([i] * len(bucket))
                right.extend(bucket)
            else:
                left_append(i)
                right_append(bucket)
    if counters is not None:
        scanned = len(key_columns[0]) if key_columns else 0
        counters.record(scanned, len(left))
    return left, right


class KernelCounters:
    """Rows scanned vs rows selected, per column kernel application.

    The observability half of the columnar plane: every kernel (filter
    or probe) records how many rows it looked at and how many survived.
    Accumulated per :class:`~repro.esql.evaluator.evaluate_view` call
    site and per :class:`~repro.maintenance.simulator.ViewMaintainer`,
    surfaced through ``StageCounters`` and ``SystemReport``.  Row planes
    record nothing (they run no kernels).
    """

    __slots__ = ("rows_scanned", "rows_selected")

    def __init__(self, rows_scanned: int = 0, rows_selected: int = 0) -> None:
        self.rows_scanned = rows_scanned
        self.rows_selected = rows_selected

    def record(self, scanned: int, selected: int) -> None:
        self.rows_scanned += scanned
        self.rows_selected += selected

    def snapshot(self) -> tuple[int, int]:
        return (self.rows_scanned, self.rows_selected)

    def diff(self, snapshot: tuple[int, int]) -> "KernelCounters":
        """Counters accumulated since ``snapshot()`` was taken."""
        scanned, selected = snapshot
        return KernelCounters(
            self.rows_scanned - scanned, self.rows_selected - selected
        )

    def merged(self, other: "KernelCounters") -> "KernelCounters":
        return KernelCounters(
            self.rows_scanned + other.rows_scanned,
            self.rows_selected + other.rows_selected,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "rows_scanned": self.rows_scanned,
            "rows_selected": self.rows_selected,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KernelCounters):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        return (
            f"KernelCounters(rows_scanned={self.rows_scanned}, "
            f"rows_selected={self.rows_selected})"
        )
