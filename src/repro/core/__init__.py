"""The EVE facade: the paper's full system behind one entry point.

Public surface:

* :class:`EVESystem` — register sources/relations/constraints, define
  E-SQL views, feed data updates and capability changes, get QC-ranked
  rewritings committed automatically
* :class:`SynchronizationResult` — per-view synchronization outcome
* :func:`format_table` / :func:`format_ranking` — report rendering
"""

from repro.core.eve import EVESystem, SynchronizationResult
from repro.core.report import format_ranking, format_table

__all__ = [
    "EVESystem",
    "SynchronizationResult",
    "format_ranking",
    "format_table",
]
