"""Plain-text report tables for experiment harnesses and examples.

Every benchmark prints its results through these helpers so the output
format matches across the suite (and stays diff-friendly in
EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.qc.model import Evaluation


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width text table with a separator under the header."""
    rendered_rows = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _render_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_ranking(evaluations: Sequence[Evaluation], title: str | None = None) -> str:
    """The Table 4 layout: DD breakdown, cost, normalized cost, QC, rating."""
    rows = []
    for evaluation in evaluations:
        rows.append(
            [
                evaluation.name,
                f"{evaluation.quality.dd_attr:.4f}",
                f"{evaluation.quality.dd_ext:.4f}",
                f"{evaluation.quality.dd:.4f}",
                f"{evaluation.cost.total:.1f}",
                f"{evaluation.normalized_cost:.4f}",
                f"{evaluation.qc:.5f}",
                evaluation.rank,
            ]
        )
    return format_table(
        ["Rewriting", "DD_attr", "DD_ext", "DD", "Cost", "Cost*", "QC", "Rating"],
        rows,
        title,
    )
