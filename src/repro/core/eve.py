"""The EVE system facade: the top of Fig. 1, wired end to end.

:class:`EVESystem` owns the information space, the MKB, the VKB, the view
synchronizer, the QC-Model evaluator, and the maintenance simulator, and
exposes the workflow a warehouse operator walks through:

1. register sources, relations, constraints, statistics;
2. define E-SQL views (optionally materializing them);
3. feed data updates — materialized views are maintained incrementally
   (batched streams go through :meth:`EVESystem.apply_updates`, which
   groups updates per view and streams each group through the
   maintainer's compiled tuple pipeline);
4. feed capability changes — affected views are synchronized through the
   streaming rewriting-search pipeline
   (:class:`~repro.sync.pipeline.RewritingSearchPipeline`): candidate
   rewritings stream out of pluggable generators, are legality-filtered
   and deduplicated in-flight, and ranked with upper-bound pruning; the
   best legal rewriting is committed (the paper's headline improvement
   over the first EVE prototype, which "simply picked the first legal
   view rewriting it discovered" — that behaviour survives as the
   ``first_legal`` search policy).

Dispatch is *indexed*: the VKB maintains a relation → views inverted
index, so a capability change or data update touches only the views that
actually reference the changed relation.  Batches of changes go through
:meth:`EVESystem.apply_changes`, which applies the whole batch to the
space first and then visits each affected view once — replaying only the
changes relevant to it and rematerializing its extent a single time.
"""

from __future__ import annotations

import dataclasses
import math
import os
import threading
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.config import SystemConfig
from repro.errors import EvaluationError, SynchronizationError
from repro.esql import explain as explain_plans
from repro.esql.ast import ViewDefinition
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.esql.validate import ViewValidator
from repro.events import (
    BatchScheduled,
    CacheInvalidated,
    DegradedToFirstLegal,
    EventBus,
    SnapshotPublished,
    SnapshotReleased,
    SynchronizationDeferred,
    ViewMaintained,
    ViewSynchronized,
)
from repro.misd.statistics import RelationStatistics
from repro.qc.assessment_cache import AssessmentCache
from repro.qc.model import Evaluation, QCModel
from repro.qc.params import TradeoffParameters
from repro.qc.workload import WorkloadSpec
from repro.relational.columnar import KernelCounters
from repro.relational.relation import Relation
from repro.relational.versioning import ExtentSnapshot, ExtentStore
from repro.report import PLAN_CAPTURE_LIMIT, MaintenanceFlush, SystemReport
from repro.space.changes import (
    DeleteRelation,
    RenameRelation,
    SchemaChange,
)
from repro.space.source import clause_decidable
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate, UpdateKind
from repro.sync.legality import check_legality
from repro.sync.pipeline import (
    RewritingSearchPipeline,
    SearchPolicy,
    StageCounters,
)
from repro.sync.rewriting import Rewriting
from repro.sync.scheduler import (
    BatchWorkPlan,
    DeferredSynchronization,
    ScheduleReport,
    SynchronizationScheduler,
    UnitBudgetMeter,
    ViewWorkItem,
    build_work_plan,
    coalesce_fingerprint,
)
from repro.sync.synchronizer import ViewSynchronizer
from repro.sync.vkb import ViewKnowledgeBase, ViewRecord
from repro.maintenance.counters import MaintenanceCounters
from repro.maintenance.simulator import ViewMaintainer


@dataclass
class SynchronizationResult:
    """Outcome of synchronizing one view under one capability change."""

    view_name: str
    change: SchemaChange
    evaluations: list[Evaluation]
    chosen: Evaluation | None
    #: Per-stage pipeline accounting (generated / filtered / pruned /
    #: assessed); None only for results predating the pipeline.
    counters: StageCounters | None = None
    #: The search policy that produced this result.
    policy: SearchPolicy | None = None

    @property
    def survived(self) -> bool:
        """Whether a legal rewriting was committed for the view."""
        return self.chosen is not None

    def ranking(self) -> list[str]:
        """Candidate names in QC-rank order (winner first)."""
        return [e.name for e in self.evaluations]


class _PendingMaintenance:
    """One view's unflushed update run inside :meth:`EVESystem.apply_updates`.

    Carries the updates in stream order, the set of relations present
    (the O(1) fast path of the join-graph boundary test), and the
    cardinality overlays a deferred flush must price modeled I/O
    against.  Overlays are captured *only at skip events*: between two
    boundary events none of a pending update's priced relations can
    change (any update to a relation the view references is itself a
    boundary), so every update enqueued before a skip shares the
    catalog state captured at that skip, and updates after the last
    skip price the live catalog.  The common single-relation storm
    therefore allocates nothing per update.
    """

    __slots__ = ("updates", "relations", "closed")

    def __init__(self) -> None:
        self.updates: list[DataUpdate] = []
        self.relations: set[str] = set()
        #: (end_index, sizes): updates[:end_index] not covered by an
        #: earlier entry price against ``sizes``; past the last entry,
        #: against the live catalog.
        self.closed: list[tuple[int, dict[str, int]]] = []

    def append(self, update: DataUpdate) -> None:
        """Queue one update for the next flush of this view."""
        self.updates.append(update)
        self.relations.add(update.relation)

    def mark_boundary(self, sizes: dict[str, int]) -> None:
        """A skipped foreign update is about to change the catalog:
        freeze the pricing state for every update enqueued so far."""
        end = len(self.updates)
        if end and (not self.closed or self.closed[-1][0] != end):
            self.closed.append((end, sizes))

    def overlays(self) -> list[dict[str, int] | None] | None:
        """Per-update ``relation_sizes`` for the flush (None = live)."""
        if not self.closed:
            return None
        result: list[dict[str, int] | None] = []
        boundary = 0
        for end, sizes in self.closed:
            result.extend([sizes] * (end - boundary))
            boundary = end
        result.extend([None] * (len(self.updates) - boundary))
        return result


class EVESystem:
    """End-to-end Evolvable View Environment over a simulated space.

    ``config`` (a :class:`~repro.config.SystemConfig`) is the one entry
    point for every behavioural knob: evaluation engine, search policy
    and generator chain, batch scheduling, and delta representation.

    Observers subscribe to the system's typed event bus
    (:meth:`subscribe`); each :meth:`apply_changes` /
    :meth:`apply_updates` call additionally aggregates its event
    payloads into a serializable :class:`~repro.report.SystemReport`
    exposed as :attr:`last_report`.

    Concurrent readers use the online serving plane: :meth:`snapshot`
    pins the current extent version for lock-free reads while batches
    keep committing (see :mod:`repro.relational.versioning` and
    :mod:`repro.serving`).
    """

    def __init__(
        self,
        params: TradeoffParameters | None = None,
        space: InformationSpace | None = None,
        auto_synchronize: bool = True,
        config: SystemConfig | None = None,
    ) -> None:
        #: The resolved system profile; every subsystem below is built
        #: from its slice.
        self.config = config if config is not None else SystemConfig()
        self.space = space if space is not None else InformationSpace()
        self.params = params if params is not None else TradeoffParameters()
        self.auto_synchronize = auto_synchronize
        #: Typed event bus; see :meth:`subscribe`.
        self.events = EventBus()
        # Fork-based executors replay searches in child processes; an
        # event observed there would fire again when the parent adopts
        # the results, so emission is suppressed outside the owner pid.
        self._owner_pid = os.getpid()
        #: Batch executor built from ``config.schedule``: the default
        #: (serial, cost-ordered, no budget) reproduces the sequential
        #: reference exactly.
        self.scheduler = SynchronizationScheduler(self.config.schedule)
        #: ScheduleReports of the most recent :meth:`apply_changes`
        #: call, one per chain-free sub-batch.
        self.last_schedule: tuple[ScheduleReport, ...] = ()
        #: SystemReport of the most recent :meth:`apply_changes` or
        #: :meth:`apply_updates` call (None before the first call).
        self.last_report: SystemReport | None = None
        #: Column-kernel rows scanned vs selected across evaluation call
        #: sites (define/refresh/rematerialize); non-zero only when the
        #: engine runs the columnar plane.
        self.kernel_counters = KernelCounters()
        # Guards VKB commits and extent bookkeeping when a parallel
        # executor replays independent views concurrently.
        self._commit_lock = threading.Lock()
        #: Crash-consistency journal: inside apply_changes, every
        #: committed result is appended here the moment it lands so an
        #: executor exception cannot desynchronize VKB and sync log.
        self._batch_journal: list[SynchronizationResult] | None = None
        self.vkb = ViewKnowledgeBase()
        # Shared memo for assessments and view resolution; invalidated on
        # every capability change (registered before the synchronization
        # handler so rewritings are never scored against stale knowledge).
        self.assessment_cache = AssessmentCache()
        self.synchronizer = ViewSynchronizer(
            self.space.mkb,
            cache=self.assessment_cache,
            generators=self.config.search.build_generators(),
        )
        self.qc_model = QCModel(
            self.space.mkb, self.params, cache=self.assessment_cache
        )
        self.pipeline = RewritingSearchPipeline(
            self.synchronizer, self.qc_model, config=self.config.search
        )
        self.maintainer = ViewMaintainer(
            self.space, config=self.config.maintenance
        )
        #: True while :meth:`apply_updates` batches maintenance itself;
        #: the per-update listener backs off so updates are not
        #: propagated twice.
        self._defer_maintenance = False
        #: MVCC extent storage: a plain-dict-speed store until the
        #: first :meth:`snapshot` arms serving mode, then versioned
        #: copy-on-write publishing at batch commit points.
        self._extents: ExtentStore = ExtentStore(
            on_publish=self._on_snapshot_published,
            on_release=self._on_snapshot_released,
        )
        self._sync_log: list[SynchronizationResult] = []
        self.space.on_data_update(self._handle_data_update)
        self.space.on_capability_change(self._invalidate_cache)
        self.space.on_capability_change(self._handle_capability_change)

    def _invalidate_cache(self, change: SchemaChange) -> None:
        self.assessment_cache.invalidate()
        if self._observed(CacheInvalidated):
            self.events.emit(CacheInvalidated("capability-change"))

    def _observed(self, event_type) -> bool:
        """Whether an event of this type should be built and emitted.

        False in fork-executor children: the parent emits exactly once
        when it adopts the child's results.
        """
        return os.getpid() == self._owner_pid and self.events.wants(
            event_type
        )

    # ------------------------------------------------------------------
    # Online serving plane (MVCC snapshots)
    # ------------------------------------------------------------------
    def _on_snapshot_published(
        self, version: int, touched: tuple[str, ...], views: int, pins: int
    ) -> None:
        if self._observed(SnapshotPublished):
            self.events.emit(
                SnapshotPublished(version, touched, views, pins)
            )

    def _on_snapshot_released(self, version: int, remaining: int) -> None:
        if self._observed(SnapshotReleased):
            self.events.emit(SnapshotReleased(version, remaining))

    def snapshot(self) -> ExtentSnapshot:
        """Pin the current extent version for lock-free concurrent reads.

        Returns an :class:`~repro.relational.versioning.ExtentSnapshot`
        — a read-only view-query handle over the extents committed as
        of this call.  Reads against it never block on running batches
        and never observe a half-applied storm: each
        :meth:`apply_changes` / :meth:`apply_updates` call publishes
        its extents as one atomic version swap, and the snapshot keeps
        serving the version it pinned.  Release the pin with
        ``snapshot.release()`` (or use it as a context manager).

        The first call arms MVCC serving mode for the system's
        lifetime; take it before starting concurrent writers (the
        :class:`~repro.serving.ServingFrontend` does this on
        construction).  Version/pin traffic is observable through
        :class:`~repro.events.SnapshotPublished` /
        :class:`~repro.events.SnapshotReleased` events and the
        ``serving`` section of :attr:`last_report`.
        """
        return self._extents.snapshot()

    def _serving_marks(self) -> tuple[int, int, int]:
        """Cumulative store counters, for per-call report diffs."""
        store = self._extents
        return (store.publishes, store.staged_writes, store.copies)

    def _serving_section(
        self, marks: tuple[int, int, int]
    ) -> dict[str, object]:
        """The ``serving`` report section for the call since ``marks``."""
        store = self._extents
        return {
            "enabled": store.serving,
            "version": store.version,
            "published": store.publishes - marks[0],
            "staged": store.staged_writes - marks[1],
            "copied": store.copies - marks[2],
            "pins": store.active_pins,
        }

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def mkb(self):
        """The space's Meta Knowledge Base (schemas, constraints, stats)."""
        return self.space.mkb

    @property
    def policy(self) -> SearchPolicy:
        """The active rewriting-search policy (from ``config.search``)."""
        return self.pipeline.policy

    def add_source(self, name: str):
        """Register an information source and return its handle."""
        return self.space.add_source(name)

    def register_relation(
        self,
        source: str,
        relation: Relation,
        statistics: RelationStatistics | None = None,
    ) -> Relation:
        """Attach ``relation`` (plus optional statistics) to ``source``.

        Registration changes ownership maps and replacement routes, so
        the shared assessment cache is invalidated first.
        """
        # New relations change ownership maps and replacement routes.
        self.assessment_cache.invalidate()
        if self._observed(CacheInvalidated):
            self.events.emit(CacheInvalidated("relation-registered"))
        return self.space.register_relation(source, relation, statistics)

    # ------------------------------------------------------------------
    # Event bus
    # ------------------------------------------------------------------
    def subscribe(self, event_type, handler):
        """Register ``handler`` for every event of ``event_type``.

        ``event_type`` is one of the :mod:`repro.events` classes (or its
        name); subscribing to :class:`~repro.events.SystemEvent` is the
        firehose.  Handlers run synchronously on the emitting thread —
        under a parallel scheduler that may be a worker thread — and
        must not raise.  Returns ``handler`` (decorator-friendly).
        """
        return self.events.subscribe(event_type, handler)

    def unsubscribe(self, event_type, handler) -> None:
        """Remove one prior :meth:`subscribe` registration."""
        self.events.unsubscribe(event_type, handler)

    def close(self) -> None:
        """Release external resources — currently the scheduler's
        persistent worker pool, when one is running.

        The system stays fully usable afterwards: a later
        ``executor="workers"`` batch simply bootstraps a fresh fleet.
        Only systems configured with the workers executor hold any
        out-of-process state, so for every other profile this is a
        no-op.
        """
        self.scheduler.close()

    # ------------------------------------------------------------------
    # View definition
    # ------------------------------------------------------------------
    def define_view(
        self, view: ViewDefinition | str, materialize: bool = True
    ) -> ViewRecord:
        """Validate, register, and (by default) materialize a view."""
        definition = parse_view(view) if isinstance(view, str) else view
        schemas = {
            name: self.space.relation(name).schema
            for name in definition.relation_names
        }
        resolved = ViewValidator(schemas).resolve_view(definition)
        record = self.vkb.define(resolved)
        if materialize:
            self._extents[resolved.name] = evaluate_view(
                resolved,
                self.space.relations(),
                self.space.mkb.statistics,
                config=self.config.engine,
                kernel_counters=self.kernel_counters,
            )
        return record

    def extent(self, view_name: str) -> Relation:
        """The materialized extent of ``view_name``."""
        try:
            return self._extents[view_name]
        except KeyError:
            raise SynchronizationError(
                f"view {view_name!r} is not materialized"
            ) from None

    def refresh(self, view_name: str) -> Relation:
        """Recompute the extent from scratch (full recomputation)."""
        view = self.vkb.current(view_name)
        self._extents[view_name] = evaluate_view(
            view,
            self.space.relations(),
            self.space.mkb.statistics,
            config=self.config.engine,
            kernel_counters=self.kernel_counters,
        )
        return self._extents[view_name]

    # ------------------------------------------------------------------
    # Data updates -> incremental maintenance (index-dispatched)
    # ------------------------------------------------------------------
    def _handle_data_update(self, update: DataUpdate) -> None:
        if self._defer_maintenance:
            return
        observed = self._observed(ViewMaintained)
        # One version per propagated update: every affected extent's
        # maintenance lands in the same atomic publish.
        with self._extents.batch():
            for record in self.vkb.views_referencing(update.relation):
                extent = self._extents.mutable(record.name)
                if extent is None:
                    continue
                charged = self.maintainer.maintain(
                    record.current, extent, update
                )
                if observed:
                    self.events.emit(
                        ViewMaintained(
                            record.name, (update.relation,), 1, charged
                        )
                    )

    def apply_updates(
        self,
        updates: Iterable[tuple],
    ) -> MaintenanceCounters:
        """Apply a batched data-update stream, maintenance batched per view.

        Each entry is ``(relation, kind, row)`` with ``kind`` an
        :class:`~repro.space.updates.UpdateKind` (or its string value).
        Updates are applied to their owning sources in stream order;
        instead of propagating each one through every referencing view
        immediately (the per-update listener path), updates accumulate
        per affected materialized view and flow through
        :meth:`~repro.maintenance.simulator.ViewMaintainer.maintain_batch`
        — one view resolution and one compiled tuple pipeline per run.

        Outcomes are identical to the sequential per-update protocol.
        A view's pending batch must be flushed before an update lands on
        a *different* relation the view joins — past that boundary the
        pending deltas would join against rows from the future.  The
        boundary test is a *join-graph dependency analysis*, not a
        relation-identity check: the incoming row is evaluated against
        the view's WHERE clauses linking its relation to each pending
        update's relation (plus the incoming relation's local
        selections), and when every pending delta provably cannot join
        the row — a failed equijoin key, a failed local filter — the
        batch keeps growing across the boundary.  Modeled CF_IO prices
        each update against an enqueue-time cardinality snapshot
        (:class:`~repro.maintenance.simulator.ViewMaintainer`'s
        ``relation_sizes`` overlay), so deferred flushes charge exactly
        what the sequential protocol charged even though the catalog
        has since moved on.  Single-relation streams — the common storm
        shape — batch end to end, adversarial interleavings keep
        batching as far as the join graph allows, and only updates that
        can actually reach a pending delta force per-update work; never
        wrong extents, never drifted counters
        (``tests/property/test_delta_parity.py``).

        Returns the maintenance counters accumulated by the stream;
        per-flush accounting lands in :attr:`last_report` and on
        :class:`~repro.events.ViewMaintained` events.
        """
        before = self.maintainer.counters.snapshot()
        kernels_before = self.maintainer.kernel_counters.snapshot()
        serving_marks = self._serving_marks()
        pending: dict[str, _PendingMaintenance] = {}
        flushes: list[MaintenanceFlush] = []

        def flush(view_name: str) -> None:
            work = pending.pop(view_name)
            record = self.vkb.record(view_name)
            extent = self._extents.mutable(view_name)
            if not record.alive or extent is None:
                return
            charged = self.maintainer.maintain_batch(
                record.current, extent, work.updates,
                relation_sizes=work.overlays(),
            )
            relations: list[str] = []
            for update in work.updates:
                if update.relation not in relations:
                    relations.append(update.relation)
            flushes.append(
                MaintenanceFlush(
                    view_name, tuple(relations), len(work.updates), charged
                )
            )
            if self._observed(ViewMaintained):
                self.events.emit(
                    ViewMaintained(
                        view_name,
                        tuple(relations),
                        len(work.updates),
                        charged,
                    )
                )

        was_deferred = self._defer_maintenance
        self._defer_maintenance = True
        # The whole stream commits as one atomic extent version: a
        # concurrent snapshot reader sees every flush or none.
        self._extents._begin_batch()
        try:
            for relation, kind, row in updates:
                kind = UpdateKind(kind) if isinstance(kind, str) else kind
                row = tuple(row)
                # Flush any view whose pending deltas could actually
                # join against this relation once the update lands; a
                # view that safely batches across the boundary instead
                # freezes its pricing state (the landing update changes
                # a cardinality its pending deltas are priced by).
                referencing = list(self.vkb.views_referencing(relation))
                for record in referencing:
                    work = pending.get(record.name)
                    if work is None:
                        continue
                    if self._pending_joins_update(
                        record.current, work, relation, row
                    ):
                        flush(record.name)
                    elif work.relations - {relation}:
                        work.mark_boundary(
                            {
                                name: self.space.relation(name).cardinality
                                for name in record.current.relation_names
                            }
                        )
                if kind is UpdateKind.INSERT:
                    update = self.space.insert(relation, row)
                else:
                    update = self.space.delete(relation, row)
                for record in referencing:
                    if record.name in self._extents:
                        work = pending.get(record.name)
                        if work is None:
                            work = pending[record.name] = (
                                _PendingMaintenance()
                            )
                        work.append(update)
        finally:
            # Pending batches cover updates that already landed on the
            # sources, so they are flushed even when the stream fails
            # mid-way (an invalid delete, say) — otherwise every extent
            # with pending work would be left permanently stale, which
            # the sequential per-update protocol could never produce.
            # Every view gets its flush even when one of them fails;
            # the first flush error surfaces after the rest completed.
            try:
                flush_error: BaseException | None = None
                for view_name in list(pending):
                    try:
                        flush(view_name)
                    except BaseException as error:  # noqa: BLE001 - first error re-raised below
                        if flush_error is None:
                            flush_error = error
                if flush_error is not None:
                    raise flush_error
            finally:
                self._defer_maintenance = was_deferred
                # Publish the stream's staged extents before the report
                # reads the post-call version number.
                self._extents._commit_batch()
                charged = self.maintainer.counters.diff(before)
                plans, plans_total = self._capture_maintenance_plans(
                    flushes
                )
                self.last_report = SystemReport.for_updates(
                    flushes,
                    charged,
                    kernels=self.maintainer.kernel_counters.diff(
                        kernels_before
                    ),
                    plans=plans,
                    plans_total=plans_total,
                    serving=self._serving_section(serving_marks),
                )
        return charged

    #: Above this many pending foreign updates the boundary analysis
    #: flushes instead of scanning — a deterministic cost cap (flushing
    #: is always outcome-preserving; only batching opportunity is lost).
    _JOIN_ANALYSIS_LIMIT = 64

    def _pending_joins_update(
        self,
        view: ViewDefinition,
        work: "_PendingMaintenance",
        relation: str,
        row: tuple,
    ) -> bool:
        """Whether ``row`` landing on ``relation`` can reach any pending
        delta — the join-graph boundary test of :meth:`apply_updates`.

        A pending update at the same relation never joins it (an
        update's own relation is not part of its propagation plan).  For
        a pending update at another relation ``X``, the propagation
        *does* join ``relation`` — but the row is still unreachable
        when some WHERE clause over ``{X, relation}`` (a join edge of
        the view's join graph, or a local selection on ``relation``)
        provably fails for the (pending seed row, incoming row) pair:
        the seed's ``X`` columns survive into every delta row unchanged,
        so a failed edge excludes the candidate in the actual
        propagation too.  Undecidable edges (three-relation chains,
        stale schemas) conservatively force the flush.
        """
        if not (work.relations - {relation}):
            return False  # single-relation run at the incoming relation
        foreign = [u for u in work.updates if u.relation != relation]
        if len(foreign) > self._JOIN_ANALYSIS_LIMIT:
            return True
        condition = view.condition()
        schema = self.space.relation(relation).schema
        incoming = {
            f"{relation}.{attr}": value
            for attr, value in zip(schema.attribute_names, row)
        }
        for clause in condition.clauses:
            relations = clause.relations()
            if relations == {relation}:
                # A failed local selection keeps the row out of every
                # propagation of this view, whatever is pending.
                if clause_decidable(clause, incoming) and not clause.evaluate(
                    incoming
                ):
                    return False
        for update in foreign:
            seed_schema = self.space.relation(update.relation).schema
            binding = dict(incoming)
            binding.update(
                (f"{update.relation}.{attr}", value)
                for attr, value in zip(
                    seed_schema.attribute_names, update.row
                )
            )
            # Any clause fully decidable over the (seed, incoming) pair
            # can exclude the candidate: a join edge between the two
            # relations, the incoming row's local selections, or the
            # seed's own local selections (a pruned seed has an empty
            # delta and reaches nothing).
            for clause in condition.clauses:
                relations = clause.relations()
                if relations and relations <= {relation, update.relation}:
                    if clause_decidable(
                        clause, binding
                    ) and not clause.evaluate(binding):
                        break  # this pending delta cannot reach the row
            else:
                return True  # no edge excludes it: the row is reachable
        return False

    # ------------------------------------------------------------------
    # Capability changes -> synchronization (index-dispatched)
    # ------------------------------------------------------------------
    def _handle_capability_change(self, change: SchemaChange) -> None:
        if not self.auto_synchronize:
            return
        for record in self.vkb.views_referencing(change.relation):
            if not self.synchronizer.is_affected(record.current, change):
                continue
            self._sync_log.append(self.synchronize_view(record, change))

    def synchronize_view(
        self,
        record: ViewRecord,
        change: SchemaChange,
        workload: WorkloadSpec | None = None,
        policy: SearchPolicy | str | None = None,
    ) -> SynchronizationResult:
        """Generate, rank, and commit the best legal rewriting."""
        with self._extents.batch():
            result = self._synchronize_record(record, change, workload, policy)
            if result.survived and record.name in self._extents:
                before = self.kernel_counters.snapshot()
                self._extents[record.name] = evaluate_view(
                    record.current,
                    self.space.relations(),
                    self.space.mkb.statistics,
                    config=self.config.engine,
                    kernel_counters=self.kernel_counters,
                )
                if result.counters is not None:
                    scanned = self.kernel_counters.diff(before)
                    result.counters.rows_scanned += scanned.rows_scanned
                    result.counters.rows_selected += scanned.rows_selected
        return result

    def _synchronize_record(
        self,
        record: ViewRecord,
        change: SchemaChange,
        workload: WorkloadSpec | None = None,
        policy: SearchPolicy | str | None = None,
    ) -> SynchronizationResult:
        """Pipeline search + VKB commit, without touching the extent."""
        outcome = self.pipeline.search(
            record.current, change, workload=workload, policy=policy
        )
        if outcome.chosen is None:
            with self._commit_lock:
                self.vkb.mark_undefined(record.name)
                self._extents.pop(record.name, None)
            result = SynchronizationResult(
                record.name, change, [], None, outcome.counters, outcome.policy
            )
        else:
            with self._commit_lock:
                self.vkb.apply_rewriting(outcome.chosen.rewriting)
            result = SynchronizationResult(
                record.name,
                change,
                outcome.evaluations,
                outcome.chosen,
                outcome.counters,
                outcome.policy,
            )
        if self._observed(ViewSynchronized):
            self.events.emit(
                ViewSynchronized(result.view_name, result.change, result)
            )
        return result

    # ------------------------------------------------------------------
    # Batched capability changes
    # ------------------------------------------------------------------
    def apply_changes(
        self,
        changes: Iterable[SchemaChange],
        scheduler: SynchronizationScheduler | None = None,
    ) -> list[SynchronizationResult]:
        """Apply a composed batch of capability changes, dispatch indexed.

        Batches are split at relation-identity chains — links where a
        change can only be replayed against a *live* intermediate state:

        * a change addressing a name an earlier ``RenameRelation`` in the
          batch introduced (rename-the-rename, delete-the-renamed), and
        * a ``RenameRelation``/``DeleteRelation`` whose subject an earlier
          change in the batch already touched (views synchronized for the
          earlier change would land mid-chain on a relation the batch end
          state no longer offers).

        Each such link starts a fresh sub-batch, restoring sequential
        semantics exactly there; chain-free batches — the normal case —
        pay nothing but one linear scan.

        Each sub-batch is staged into an immutable
        :class:`~repro.sync.scheduler.BatchWorkPlan` and handed to the
        ``scheduler`` (argument, else :attr:`scheduler`) for cost-aware,
        possibly parallel/budgeted dispatch; per-sub-batch
        :class:`~repro.sync.scheduler.ScheduleReport`\\ s land in
        :attr:`last_schedule`.  Whatever the executor, results and the
        synchronization log arrive in plan (view definition) order, and
        committed winners/extents are identical to the serial reference.
        """
        from time import perf_counter

        active = scheduler if scheduler is not None else self.scheduler
        batch = list(changes)
        results: list[SynchronizationResult] = []
        reports: list[ScheduleReport] = []
        # One deadline anchor (and one modeled-cost meter) for the whole
        # call: a chain-split batch runs several scheduler executions,
        # and either budget covers their sum, not each sub-batch afresh.
        deadline_anchor = perf_counter()
        unit_meter = (
            UnitBudgetMeter() if active.budget_units is not None else None
        )
        serving_marks = self._serving_marks()
        # The whole call is one MVCC commit point: every sub-batch's
        # extent swaps stage into one overlay, published as a single
        # atomic version when the bracket exits (even on error — the
        # journal already recorded the commits that landed), so a
        # concurrent snapshot reader never sees a half-applied storm.
        with self._extents.batch():
            for sub_batch in self._split_identity_chains(batch):
                plan = self._stage_batch(sub_batch, coalesce=active.coalesce)
                # Committed results are journaled as they land so that an
                # executor exception mid-batch cannot leave VKB commits the
                # synchronization log never saw; on success the journal is
                # discarded in favour of the report's plan-ordered results.
                # Reports of completed sub-batches are preserved either way
                # — their DeferredSynchronization records must stay
                # resumable even when a later sub-batch fails.
                self._batch_journal = []
                try:
                    report = active.execute(
                        plan, self, deadline_anchor=deadline_anchor,
                        unit_meter=unit_meter,
                    )
                except BaseException:
                    self._sync_log.extend(self._batch_journal)
                    self.last_schedule = tuple(reports)
                    raise
                finally:
                    self._batch_journal = None
                self._sync_log.extend(report.results)
                results.extend(report.results)
                reports.append(report)
                self._emit_schedule_events(report, active)
        self.last_schedule = tuple(reports)
        plans, plans_total = self._capture_evaluation_plans(results)
        self.last_report = SystemReport.for_changes(
            results, reports, plans=plans, plans_total=plans_total,
            serving=self._serving_section(serving_marks),
        )
        return results

    def _emit_schedule_events(
        self, report: ScheduleReport, scheduler: SynchronizationScheduler
    ) -> None:
        """Publish one completed sub-batch's scheduling outcomes."""
        if self._observed(BatchScheduled):
            self.events.emit(BatchScheduled(report))
        if report.degraded_views and self._observed(DegradedToFirstLegal):
            for view_name in report.degraded_views:
                self.events.emit(
                    DegradedToFirstLegal(
                        view_name,
                        budget=scheduler.budget,
                        budget_units=scheduler.budget_units,
                    )
                )
        if report.deferred and self._observed(SynchronizationDeferred):
            for record in report.deferred:
                self.events.emit(SynchronizationDeferred(record))

    @staticmethod
    def _split_identity_chains(
        batch: list[SchemaChange],
    ) -> list[list[SchemaChange]]:
        """Split at relation-identity chain links (see apply_changes)."""
        sub_batches: list[list[SchemaChange]] = []
        start = 0
        introduced: set[str] = set()
        touched: set[str] = set()
        for index, change in enumerate(batch):
            chains = change.relation in introduced or (
                isinstance(change, (RenameRelation, DeleteRelation))
                and change.relation in touched
            )
            if chains:
                sub_batches.append(batch[start:index])
                start = index
                introduced, touched = set(), set()
            touched.add(change.relation)
            if isinstance(change, RenameRelation):
                introduced.add(change.new_name)
        sub_batches.append(batch[start:])
        return sub_batches

    def _stage_batch(
        self, batch: list[SchemaChange], coalesce: bool = True
    ) -> BatchWorkPlan:
        """Apply one chain-free batch to the space; emit the work plan.

        The whole batch is applied to the information space first (the
        per-change listeners still run, minus auto-synchronization);
        affected views are collected through the VKB's inverted index as
        each change lands.  Each affected view becomes one immutable
        :class:`~repro.sync.scheduler.ViewWorkItem` carrying its ordered
        worklist, its salvage-cost lower bound
        (:meth:`~repro.qc.model.QCModel.salvage_lower_bound`, priced the
        moment the view enters the plan, while the touched relation's
        statistics are still live), and its coalescing identity.  Views
        never referencing a changed relation are never examined at all,
        which is what makes thousand-view spaces cheap to evolve.

        Synchronization then happens against the *post-batch* knowledge:
        when changes in one batch interact (a donor deleted later in the
        same batch, say), the pipeline only ever substitutes relations
        that survive the whole batch.  Composition can therefore reach
        the sequential end state in *fewer rewritings* — e.g. a
        replacement lands directly on a donor column renamed later in
        the batch — so a view's ``generations`` count may be lower than
        under one-change-at-a-time application even though the
        definitions and extents agree.
        """
        #: view name -> (order, worklist, cost_bound, definition_key).
        staged: dict[str, list] = {}
        was_auto = self.auto_synchronize
        self.auto_synchronize = False
        try:
            for position, change in enumerate(batch):
                for record in self.vkb.views_referencing(change.relation):
                    if not self.synchronizer.is_affected(
                        record.current, change
                    ):
                        continue
                    entry = staged.get(record.name)
                    if entry is None:
                        # First touch: price the salvage bound against
                        # the statistics as they stand right now (the
                        # changed relation still exists) and fingerprint
                        # the definition modulo the view name.
                        try:
                            bound = self.qc_model.salvage_lower_bound(
                                record.current, change.relation
                            )
                        except EvaluationError:
                            # Unpriceable views (no statistics-backed
                            # bound) schedule last, behind every priced
                            # one, rather than blocking the batch.
                            bound = math.inf
                        # Fingerprinting renders printer forms — skip
                        # it when no coalescing scheduler will read the
                        # key (the view name is unique, so identity
                        # keys make coalescing a safe no-op).
                        key = (
                            coalesce_fingerprint(record.current)
                            if coalesce
                            else record.name
                        )
                        entry = staged[record.name] = [
                            len(staged), [], bound, key
                        ]
                    entry[1].append((position, change))
                self.space.apply_change(change)
        finally:
            self.auto_synchronize = was_auto
        return build_work_plan(
            [
                (name, order, tuple(worklist), bound, key)
                for name, (order, worklist, bound, key) in staged.items()
            ],
            batch,
        )

    # ------------------------------------------------------------------
    # SchedulerRuntime protocol (consumed by SynchronizationScheduler)
    # ------------------------------------------------------------------
    def replay_item(
        self,
        item: ViewWorkItem,
        plan: BatchWorkPlan,
        policy: SearchPolicy | str | None = None,
    ) -> list[SynchronizationResult]:
        """Replay one view's worklist against its evolving definition.

        Changes that no longer touch the evolved definition are skipped.
        A committed rewriting changes what the view references —
        relations it pulled in, and attribute names an earlier rename
        introduced (which the pre-batch affectedness test could not
        see) — so every later change on a relation the view now
        references is re-queued; the replay's own ``is_affected`` check
        skips the irrelevant ones against the evolved definition.
        """
        record = self.vkb.record(item.view_name)
        worklist = list(item.worklist)
        queued = {position for position, _ in worklist}
        results: list[SynchronizationResult] = []
        cursor = 0
        while cursor < len(worklist) and record.alive:
            position, change = worklist[cursor]
            cursor += 1
            if not self.synchronizer.is_affected(record.current, change):
                continue
            result = self._synchronize_record(record, change, policy=policy)
            if self._batch_journal is not None:
                self._batch_journal.append(result)
            results.append(result)
            if not record.alive:
                break
            merged = False
            for relation in record.current.relation_names:
                for later in plan.changes_on(relation):
                    if later[0] > position and later[0] not in queued:
                        queued.add(later[0])
                        worklist.append(later)
                        merged = True
            if merged:
                worklist[cursor:] = sorted(worklist[cursor:])
        return results

    def adopt_results(
        self, results: Sequence[SynchronizationResult]
    ) -> None:
        """Commit replay results produced outside the live VKB.

        Used by the process executor (results searched in a forked
        child) and by coalesced followers (results rebound from a
        structurally identical leader): replays exactly the commits
        :meth:`_synchronize_record` would have made.
        """
        with self._commit_lock:
            for result in results:
                if result.chosen is None:
                    self.vkb.mark_undefined(result.view_name)
                    self._extents.pop(result.view_name, None)
                else:
                    self.vkb.apply_rewriting(result.chosen.rewriting)
                if self._batch_journal is not None:
                    self._batch_journal.append(result)
        if self._observed(ViewSynchronized):
            for result in results:
                self.events.emit(
                    ViewSynchronized(result.view_name, result.change, result)
                )

    def finalize_view(self, view_name: str) -> None:
        """Rematerialize one replayed view's extent, once per batch."""
        record = self.vkb.record(view_name)
        if record.alive and view_name in self._extents:
            self._extents[view_name] = evaluate_view(
                record.current,
                self.space.relations(),
                self.space.mkb.statistics,
                config=self.config.engine,
                kernel_counters=self.kernel_counters,
            )

    def resume_deferred(
        self,
        deferred: Sequence[DeferredSynchronization] | None = None,
    ) -> list[SynchronizationResult]:
        """Replay synchronizations a budgeted scheduler parked.

        With no argument, resumes every deferral recorded by the most
        recent :meth:`apply_changes` call — and consumes those records,
        so calling again is a no-op rather than a re-replay.  Deferral
        is pure postponement: the batch already landed on the space, so
        the replay runs against the same post-batch knowledge it would
        have seen at schedule time.
        """
        if deferred is None:
            deferred = tuple(
                record
                for report in self.last_schedule
                for record in report.deferred
            )
            self.last_schedule = tuple(
                dataclasses.replace(report, deferred=())
                for report in self.last_schedule
            )
        results: list[SynchronizationResult] = []
        with self._extents.batch():
            for record in deferred:
                replayed = self.replay_item(record.item, record.plan)
                self._sync_log.extend(replayed)
                results.extend(replayed)
                self.finalize_view(record.view_name)
        return results

    # ------------------------------------------------------------------
    # Candidate inspection / external ranking
    # ------------------------------------------------------------------
    def candidate_rewritings(
        self,
        view_name: str,
        change: SchemaChange,
        include_dominated: bool = False,
    ) -> list[Rewriting]:
        """Legal rewritings without committing anything (for analysis)."""
        record = self.vkb.record(view_name)
        rewritings = self.synchronizer.synchronize(
            record.current, change, include_dominated
        )
        return [r for r in rewritings if check_legality(r).legal]

    def rank_rewritings(
        self,
        rewritings: Sequence[Rewriting],
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> list[Evaluation]:
        """Rank externally produced candidates with the system's QC-Model."""
        return self.qc_model.evaluate(rewritings, workload, updated_relation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(
        self, view_name: str, analyze: bool = False
    ) -> "explain_plans.EvaluationPlan":
        """The evaluation plan ``view_name`` runs under this system's
        engine config: greedy join order with the cardinality estimates
        that drove it, per-step index-probe vs scan, projection
        pushdown, and — when ``config.engine.optimize`` is set — every
        optimizer transform decision (applied or refused, with costs).

        ``analyze=True`` additionally executes the view with a step
        trace and reconciles estimated vs actual cardinalities (plus
        column-kernel rows scanned/selected on the columnar plane); the
        run is side-effect free — the cached extent is not touched.

        Returns an :class:`~repro.esql.explain.EvaluationPlan`; render
        with ``to_text()`` or serialize with ``to_dict()``.
        """
        record = self.vkb.record(view_name)
        if not record.alive:
            raise EvaluationError(
                f"view {view_name!r} is undefined; nothing to explain"
            )
        return explain_plans.explain_view(
            record.current,
            self.space.relations(),
            self.space.mkb.statistics,
            config=self.config.engine,
            analyze=analyze,
        )

    def explain_maintenance(
        self, view_name: str, updated_relation: str | None = None
    ) -> "explain_plans.MaintenanceExplain":
        """Algorithm 1's itinerary for maintaining ``view_name`` after
        an update to ``updated_relation`` (defaults to the view's first
        FROM relation): source visit order and, per joined relation,
        whether the delta probes a hash index or scans.

        Returns a :class:`~repro.esql.explain.MaintenanceExplain`.
        """
        record = self.vkb.record(view_name)
        if not record.alive:
            raise EvaluationError(
                f"view {view_name!r} is undefined; nothing to explain"
            )
        view = record.current
        owners = {
            name: self.space.owner_of(name).name
            for name in view.relation_names
        }
        schemas = {
            name: self.space.relation(name).schema
            for name in view.relation_names
        }
        return explain_plans.explain_maintenance(
            view,
            owners,
            schemas,
            updated_relation,
            config=self.config.maintenance,
        )

    def _capture_evaluation_plans(
        self, results: "Sequence[SynchronizationResult]"
    ) -> tuple[list[dict], int]:
        """EXPLAIN dicts for a batch's surviving materialized views.

        Capped at :data:`~repro.report.PLAN_CAPTURE_LIMIT` plans chosen
        by sorted view name (deterministic under any executor); the
        returned total still counts every candidate.  Final actual
        cardinalities come from the just-rematerialized extents; a view
        whose plan cannot be built (e.g. racing definition churn) is
        skipped rather than failing the batch.
        """
        candidates = sorted(
            {
                result.view_name
                for result in results
                if result.survived and result.view_name in self._extents
            }
        )
        plans: list[dict] = []
        for name in candidates[:PLAN_CAPTURE_LIMIT]:
            record = self.vkb.record(name)
            if not record.alive:
                continue
            try:
                plan = explain_plans.explain_view(
                    record.current,
                    self.space.relations(),
                    self.space.mkb.statistics,
                    config=self.config.engine,
                )
                plan.actual_rows = self._extents[name].cardinality
            except Exception:  # noqa: BLE001 - best-effort EXPLAIN; plan dropped
                continue
            plans.append(plan.to_dict())
        return plans, len(candidates)

    def _capture_maintenance_plans(
        self, flushes: "Sequence[MaintenanceFlush]"
    ) -> tuple[list[dict], int]:
        """EXPLAIN dicts for a stream's maintenance flushes, one per
        (view, updated relation) pair up to the capture cap.  Actual
        counters reconcile the whole flush (which may have covered
        several relations), noted against the per-relation itinerary.
        """
        total = sum(len(flush.relations) for flush in flushes)
        plans: list[dict] = []
        for flush in flushes:
            if len(plans) >= PLAN_CAPTURE_LIMIT:
                break
            if flush.view not in self.vkb:
                continue
            record = self.vkb.record(flush.view)
            if not record.alive:
                continue
            view = record.current
            actual = {
                "messages": flush.counters.messages,
                "bytes_transferred": flush.counters.bytes_transferred,
                "io_operations": flush.counters.io_operations,
                "updates": flush.updates,
            }
            for relation in flush.relations:
                if len(plans) >= PLAN_CAPTURE_LIMIT:
                    break
                try:
                    owners = {
                        name: self.space.owner_of(name).name
                        for name in view.relation_names
                    }
                    schemas = {
                        name: self.space.relation(name).schema
                        for name in view.relation_names
                    }
                    explained = explain_plans.explain_maintenance(
                        view,
                        owners,
                        schemas,
                        relation,
                        config=self.config.maintenance,
                        actual=actual,
                    )
                except Exception:  # noqa: BLE001 - best-effort EXPLAIN; plan dropped
                    continue
                plans.append(explained.to_dict())
        return plans, total

    @property
    def synchronization_log(self) -> tuple[SynchronizationResult, ...]:
        """Every search outcome this system has committed, in order."""
        return tuple(self._sync_log)

    def is_alive(self, view_name: str) -> bool:
        """Whether the view currently has a committed rewriting."""
        return self.vkb.record(view_name).alive

    def generations(self, view_name: str) -> int:
        """How many capability changes the view has survived."""
        return self.vkb.record(view_name).generations
