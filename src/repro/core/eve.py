"""The EVE system facade: the top of Fig. 1, wired end to end.

:class:`EVESystem` owns the information space, the MKB, the VKB, the view
synchronizer, the QC-Model evaluator, and the maintenance simulator, and
exposes the workflow a warehouse operator walks through:

1. register sources, relations, constraints, statistics;
2. define E-SQL views (optionally materializing them);
3. feed data updates — materialized views are maintained incrementally;
4. feed capability changes — affected views are synchronized through the
   streaming rewriting-search pipeline
   (:class:`~repro.sync.pipeline.RewritingSearchPipeline`): candidate
   rewritings stream out of pluggable generators, are legality-filtered
   and deduplicated in-flight, and ranked with upper-bound pruning; the
   best legal rewriting is committed (the paper's headline improvement
   over the first EVE prototype, which "simply picked the first legal
   view rewriting it discovered" — that behaviour survives as the
   ``first_legal`` search policy).

Dispatch is *indexed*: the VKB maintains a relation → views inverted
index, so a capability change or data update touches only the views that
actually reference the changed relation.  Batches of changes go through
:meth:`EVESystem.apply_changes`, which applies the whole batch to the
space first and then visits each affected view once — replaying only the
changes relevant to it and rematerializing its extent a single time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SynchronizationError, ViewUndefinedError
from repro.esql.ast import ViewDefinition
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.esql.validate import ViewValidator
from repro.misd.statistics import RelationStatistics
from repro.qc.assessment_cache import AssessmentCache
from repro.qc.model import Evaluation, QCModel
from repro.qc.params import TradeoffParameters
from repro.qc.workload import WorkloadSpec
from repro.relational.relation import Relation
from repro.space.changes import (
    DeleteRelation,
    RenameRelation,
    SchemaChange,
)
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate
from repro.sync.legality import check_legality
from repro.sync.pipeline import (
    RewritingSearchPipeline,
    SearchPolicy,
    StageCounters,
)
from repro.sync.rewriting import Rewriting
from repro.sync.synchronizer import ViewSynchronizer
from repro.sync.vkb import ViewKnowledgeBase, ViewRecord
from repro.maintenance.simulator import ViewMaintainer


@dataclass
class SynchronizationResult:
    """Outcome of synchronizing one view under one capability change."""

    view_name: str
    change: SchemaChange
    evaluations: list[Evaluation]
    chosen: Evaluation | None
    #: Per-stage pipeline accounting (generated / filtered / pruned /
    #: assessed); None only for results predating the pipeline.
    counters: StageCounters | None = None
    #: The search policy that produced this result.
    policy: SearchPolicy | None = None

    @property
    def survived(self) -> bool:
        return self.chosen is not None

    def ranking(self) -> list[str]:
        return [e.name for e in self.evaluations]


class EVESystem:
    """End-to-end Evolvable View Environment over a simulated space.

    ``policy`` selects the rewriting-search policy (see
    :class:`~repro.sync.pipeline.SearchPolicy`): ``"pruned"`` (default)
    commits the identical winner as ``"exhaustive"`` while skipping
    provably-dominated assessments; ``"first_legal"`` reproduces the
    original EVE prototype.
    """

    def __init__(
        self,
        params: TradeoffParameters | None = None,
        space: InformationSpace | None = None,
        auto_synchronize: bool = True,
        policy: SearchPolicy | str = "pruned",
    ) -> None:
        self.space = space if space is not None else InformationSpace()
        self.params = params if params is not None else TradeoffParameters()
        self.auto_synchronize = auto_synchronize
        self.vkb = ViewKnowledgeBase()
        # Shared memo for assessments and view resolution; invalidated on
        # every capability change (registered before the synchronization
        # handler so rewritings are never scored against stale knowledge).
        self.assessment_cache = AssessmentCache()
        self.synchronizer = ViewSynchronizer(
            self.space.mkb, cache=self.assessment_cache
        )
        self.qc_model = QCModel(
            self.space.mkb, self.params, cache=self.assessment_cache
        )
        self.pipeline = RewritingSearchPipeline(
            self.synchronizer, self.qc_model, policy
        )
        self.maintainer = ViewMaintainer(self.space)
        self._extents: dict[str, Relation] = {}
        self._sync_log: list[SynchronizationResult] = []
        self.space.on_data_update(self._handle_data_update)
        self.space.on_capability_change(
            lambda change: self.assessment_cache.invalidate()
        )
        self.space.on_capability_change(self._handle_capability_change)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def mkb(self):
        return self.space.mkb

    @property
    def policy(self) -> SearchPolicy:
        return self.pipeline.policy

    def add_source(self, name: str):
        return self.space.add_source(name)

    def register_relation(
        self,
        source: str,
        relation: Relation,
        statistics: RelationStatistics | None = None,
    ) -> Relation:
        # New relations change ownership maps and replacement routes.
        self.assessment_cache.invalidate()
        return self.space.register_relation(source, relation, statistics)

    # ------------------------------------------------------------------
    # View definition
    # ------------------------------------------------------------------
    def define_view(
        self, view: ViewDefinition | str, materialize: bool = True
    ) -> ViewRecord:
        """Validate, register, and (by default) materialize a view."""
        definition = parse_view(view) if isinstance(view, str) else view
        schemas = {
            name: self.space.relation(name).schema
            for name in definition.relation_names
        }
        resolved = ViewValidator(schemas).resolve_view(definition)
        record = self.vkb.define(resolved)
        if materialize:
            self._extents[resolved.name] = evaluate_view(
                resolved, self.space.relations(), self.space.mkb.statistics
            )
        return record

    def extent(self, view_name: str) -> Relation:
        """The materialized extent of ``view_name``."""
        try:
            return self._extents[view_name]
        except KeyError:
            raise SynchronizationError(
                f"view {view_name!r} is not materialized"
            ) from None

    def refresh(self, view_name: str) -> Relation:
        """Recompute the extent from scratch (full recomputation)."""
        view = self.vkb.current(view_name)
        self._extents[view_name] = evaluate_view(
            view, self.space.relations(), self.space.mkb.statistics
        )
        return self._extents[view_name]

    # ------------------------------------------------------------------
    # Data updates -> incremental maintenance (index-dispatched)
    # ------------------------------------------------------------------
    def _handle_data_update(self, update: DataUpdate) -> None:
        for record in self.vkb.views_referencing(update.relation):
            extent = self._extents.get(record.name)
            if extent is None:
                continue
            self.maintainer.maintain(record.current, extent, update)

    # ------------------------------------------------------------------
    # Capability changes -> synchronization (index-dispatched)
    # ------------------------------------------------------------------
    def _handle_capability_change(self, change: SchemaChange) -> None:
        if not self.auto_synchronize:
            return
        for record in self.vkb.views_referencing(change.relation):
            if not self.synchronizer.is_affected(record.current, change):
                continue
            self._sync_log.append(self.synchronize_view(record, change))

    def synchronize_view(
        self,
        record: ViewRecord,
        change: SchemaChange,
        workload: WorkloadSpec | None = None,
        policy: SearchPolicy | str | None = None,
    ) -> SynchronizationResult:
        """Generate, rank, and commit the best legal rewriting."""
        result = self._synchronize_record(record, change, workload, policy)
        if result.survived and record.name in self._extents:
            self._extents[record.name] = evaluate_view(
                record.current,
                self.space.relations(),
                self.space.mkb.statistics,
            )
        return result

    def _synchronize_record(
        self,
        record: ViewRecord,
        change: SchemaChange,
        workload: WorkloadSpec | None = None,
        policy: SearchPolicy | str | None = None,
    ) -> SynchronizationResult:
        """Pipeline search + VKB commit, without touching the extent."""
        outcome = self.pipeline.search(
            record.current, change, workload=workload, policy=policy
        )
        if outcome.chosen is None:
            self.vkb.mark_undefined(record.name)
            self._extents.pop(record.name, None)
            return SynchronizationResult(
                record.name, change, [], None, outcome.counters, outcome.policy
            )
        self.vkb.apply_rewriting(outcome.chosen.rewriting)
        return SynchronizationResult(
            record.name,
            change,
            outcome.evaluations,
            outcome.chosen,
            outcome.counters,
            outcome.policy,
        )

    # ------------------------------------------------------------------
    # Batched capability changes
    # ------------------------------------------------------------------
    def apply_changes(
        self, changes: Iterable[SchemaChange]
    ) -> list[SynchronizationResult]:
        """Apply a composed batch of capability changes, dispatch indexed.

        Batches are split at relation-identity chains — links where a
        change can only be replayed against a *live* intermediate state:

        * a change addressing a name an earlier ``RenameRelation`` in the
          batch introduced (rename-the-rename, delete-the-renamed), and
        * a ``RenameRelation``/``DeleteRelation`` whose subject an earlier
          change in the batch already touched (views synchronized for the
          earlier change would land mid-chain on a relation the batch end
          state no longer offers).

        Each such link starts a fresh sub-batch, restoring sequential
        semantics exactly there; chain-free batches — the normal case —
        pay nothing but one linear scan.
        """
        batch = list(changes)
        introduced: set[str] = set()
        touched: set[str] = set()
        for index, change in enumerate(batch):
            chains = change.relation in introduced or (
                isinstance(change, (RenameRelation, DeleteRelation))
                and change.relation in touched
            )
            if chains:
                return self._apply_batch(batch[:index]) + self.apply_changes(
                    batch[index:]
                )
            touched.add(change.relation)
            if isinstance(change, RenameRelation):
                introduced.add(change.new_name)
        return self._apply_batch(batch)

    def _apply_batch(
        self, changes: Iterable[SchemaChange]
    ) -> list[SynchronizationResult]:
        """One chain-free batch: apply all, then visit each view once.

        The whole batch is applied to the information space first (the
        per-change listeners still run, minus auto-synchronization);
        affected views are collected through the VKB's inverted index as
        each change lands.  Every affected view is then visited *once*:
        the batch's changes are replayed against its evolving definition
        — skipping changes that no longer touch it — and its extent is
        rematerialized a single time at the end instead of once per
        change.  Views never referencing a changed relation are never
        examined at all, which is what makes thousand-view spaces cheap
        to evolve.

        Synchronization happens against the *post-batch* knowledge: when
        changes in one batch interact (a donor deleted later in the same
        batch, say), the pipeline only ever substitutes relations that
        survive the whole batch.  Composition can therefore reach the
        sequential end state in *fewer rewritings* — e.g. a replacement
        lands directly on a donor column renamed later in the batch —
        so a view's ``generations`` count may be lower than under
        one-change-at-a-time application even though the definitions
        and extents agree.
        """
        batch = list(changes)
        by_relation: dict[str, list[tuple[int, SchemaChange]]] = {}
        for position, change in enumerate(batch):
            by_relation.setdefault(change.relation, []).append(
                (position, change)
            )

        #: view name -> ordered (position, change) worklist.
        affected: dict[str, list[tuple[int, SchemaChange]]] = {}
        was_auto = self.auto_synchronize
        self.auto_synchronize = False
        try:
            for position, change in enumerate(batch):
                for record in self.vkb.views_referencing(change.relation):
                    if self.synchronizer.is_affected(record.current, change):
                        affected.setdefault(record.name, []).append(
                            (position, change)
                        )
                self.space.apply_change(change)
        finally:
            self.auto_synchronize = was_auto

        results: list[SynchronizationResult] = []
        for name, worklist in affected.items():
            record = self.vkb.record(name)
            queued = {position for position, _ in worklist}
            cursor = 0
            while cursor < len(worklist) and record.alive:
                position, change = worklist[cursor]
                cursor += 1
                if not self.synchronizer.is_affected(record.current, change):
                    continue
                result = self._synchronize_record(record, change)
                results.append(result)
                self._sync_log.append(result)
                if not record.alive:
                    break
                # A committed rewriting changes what the view references —
                # relations it pulled in, and attribute names an earlier
                # rename introduced (which the pre-batch affectedness test
                # could not see).  Re-queue every later change on a relation
                # the view now references; the replay's own is_affected
                # check skips the irrelevant ones against the evolved
                # definition.
                merged = False
                for relation in record.current.relation_names:
                    for later in by_relation.get(relation, ()):
                        if later[0] > position and later[0] not in queued:
                            queued.add(later[0])
                            worklist.append(later)
                            merged = True
                if merged:
                    worklist[cursor:] = sorted(worklist[cursor:])
            if record.alive and name in self._extents:
                self._extents[name] = evaluate_view(
                    record.current,
                    self.space.relations(),
                    self.space.mkb.statistics,
                )
        return results

    # ------------------------------------------------------------------
    # Candidate inspection / external ranking
    # ------------------------------------------------------------------
    def candidate_rewritings(
        self,
        view_name: str,
        change: SchemaChange,
        include_dominated: bool = False,
    ) -> list[Rewriting]:
        """Legal rewritings without committing anything (for analysis)."""
        record = self.vkb.record(view_name)
        rewritings = self.synchronizer.synchronize(
            record.current, change, include_dominated
        )
        return [r for r in rewritings if check_legality(r).legal]

    def rank_rewritings(
        self,
        rewritings: Sequence[Rewriting],
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> list[Evaluation]:
        """Rank externally produced candidates with the system's QC-Model."""
        return self.qc_model.evaluate(rewritings, workload, updated_relation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def synchronization_log(self) -> tuple[SynchronizationResult, ...]:
        return tuple(self._sync_log)

    def is_alive(self, view_name: str) -> bool:
        return self.vkb.record(view_name).alive

    def generations(self, view_name: str) -> int:
        """How many capability changes the view has survived."""
        return self.vkb.record(view_name).generations
