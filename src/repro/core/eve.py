"""The EVE system facade: the top of Fig. 1, wired end to end.

:class:`EVESystem` owns the information space, the MKB, the VKB, the view
synchronizer, the QC-Model evaluator, and the maintenance simulator, and
exposes the workflow a warehouse operator walks through:

1. register sources, relations, constraints, statistics;
2. define E-SQL views (optionally materializing them);
3. feed data updates — materialized views are maintained incrementally;
4. feed capability changes — affected views are synchronized: candidate
   rewritings are generated, ranked by the QC-Model, and the best legal
   rewriting is committed (the paper's headline improvement over the first
   EVE prototype, which "simply picked the first legal view rewriting it
   discovered").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SynchronizationError, ViewUndefinedError
from repro.esql.ast import ViewDefinition
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.esql.validate import ViewValidator
from repro.misd.statistics import RelationStatistics
from repro.qc.assessment_cache import AssessmentCache
from repro.qc.model import Evaluation, QCModel
from repro.qc.params import TradeoffParameters
from repro.qc.workload import WorkloadSpec
from repro.relational.relation import Relation
from repro.space.changes import SchemaChange
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate
from repro.sync.legality import check_legality
from repro.sync.rewriting import Rewriting
from repro.sync.synchronizer import ViewSynchronizer
from repro.sync.vkb import ViewKnowledgeBase, ViewRecord
from repro.maintenance.simulator import ViewMaintainer


@dataclass
class SynchronizationResult:
    """Outcome of synchronizing one view under one capability change."""

    view_name: str
    change: SchemaChange
    evaluations: list[Evaluation]
    chosen: Evaluation | None

    @property
    def survived(self) -> bool:
        return self.chosen is not None

    def ranking(self) -> list[str]:
        return [e.name for e in self.evaluations]


class EVESystem:
    """End-to-end Evolvable View Environment over a simulated space."""

    def __init__(
        self,
        params: TradeoffParameters | None = None,
        space: InformationSpace | None = None,
        auto_synchronize: bool = True,
    ) -> None:
        self.space = space if space is not None else InformationSpace()
        self.params = params if params is not None else TradeoffParameters()
        self.auto_synchronize = auto_synchronize
        self.vkb = ViewKnowledgeBase()
        # Shared memo for assessments and view resolution; invalidated on
        # every capability change (registered before the synchronization
        # handler so rewritings are never scored against stale knowledge).
        self.assessment_cache = AssessmentCache()
        self.synchronizer = ViewSynchronizer(
            self.space.mkb, cache=self.assessment_cache
        )
        self.qc_model = QCModel(
            self.space.mkb, self.params, cache=self.assessment_cache
        )
        self.maintainer = ViewMaintainer(self.space)
        self._extents: dict[str, Relation] = {}
        self._sync_log: list[SynchronizationResult] = []
        self.space.on_data_update(self._handle_data_update)
        self.space.on_capability_change(
            lambda change: self.assessment_cache.invalidate()
        )
        self.space.on_capability_change(self._handle_capability_change)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def mkb(self):
        return self.space.mkb

    def add_source(self, name: str):
        return self.space.add_source(name)

    def register_relation(
        self,
        source: str,
        relation: Relation,
        statistics: RelationStatistics | None = None,
    ) -> Relation:
        # New relations change ownership maps and replacement routes.
        self.assessment_cache.invalidate()
        return self.space.register_relation(source, relation, statistics)

    # ------------------------------------------------------------------
    # View definition
    # ------------------------------------------------------------------
    def define_view(
        self, view: ViewDefinition | str, materialize: bool = True
    ) -> ViewRecord:
        """Validate, register, and (by default) materialize a view."""
        definition = parse_view(view) if isinstance(view, str) else view
        schemas = {
            name: self.space.relation(name).schema
            for name in definition.relation_names
        }
        resolved = ViewValidator(schemas).resolve_view(definition)
        record = self.vkb.define(resolved)
        if materialize:
            self._extents[resolved.name] = evaluate_view(
                resolved, self.space.relations(), self.space.mkb.statistics
            )
        return record

    def extent(self, view_name: str) -> Relation:
        """The materialized extent of ``view_name``."""
        try:
            return self._extents[view_name]
        except KeyError:
            raise SynchronizationError(
                f"view {view_name!r} is not materialized"
            ) from None

    def refresh(self, view_name: str) -> Relation:
        """Recompute the extent from scratch (full recomputation)."""
        view = self.vkb.current(view_name)
        self._extents[view_name] = evaluate_view(
            view, self.space.relations(), self.space.mkb.statistics
        )
        return self._extents[view_name]

    # ------------------------------------------------------------------
    # Data updates -> incremental maintenance
    # ------------------------------------------------------------------
    def _handle_data_update(self, update: DataUpdate) -> None:
        for record in self.vkb.alive_views():
            if update.relation not in record.current.relation_names:
                continue
            extent = self._extents.get(record.name)
            if extent is None:
                continue
            self.maintainer.maintain(record.current, extent, update)

    # ------------------------------------------------------------------
    # Capability changes -> synchronization
    # ------------------------------------------------------------------
    def _handle_capability_change(self, change: SchemaChange) -> None:
        if not self.auto_synchronize:
            return
        for record in list(self.vkb.alive_views()):
            if not self.synchronizer.is_affected(record.current, change):
                continue
            self._sync_log.append(self.synchronize_view(record, change))

    def synchronize_view(
        self,
        record: ViewRecord,
        change: SchemaChange,
        workload: WorkloadSpec | None = None,
    ) -> SynchronizationResult:
        """Generate, rank, and commit the best legal rewriting."""
        rewritings = self.synchronizer.synchronize(record.current, change)
        rewritings = [r for r in rewritings if check_legality(r).legal]
        if not rewritings:
            self.vkb.mark_undefined(record.name)
            self._extents.pop(record.name, None)
            return SynchronizationResult(record.name, change, [], None)
        evaluations = self.qc_model.evaluate(rewritings, workload)
        chosen = evaluations[0]
        self.vkb.apply_rewriting(chosen.rewriting)
        if record.name in self._extents:
            self._extents[record.name] = evaluate_view(
                chosen.rewriting.view,
                self.space.relations(),
                self.space.mkb.statistics,
            )
        return SynchronizationResult(record.name, change, evaluations, chosen)

    def candidate_rewritings(
        self,
        view_name: str,
        change: SchemaChange,
        include_dominated: bool = False,
    ) -> list[Rewriting]:
        """Legal rewritings without committing anything (for analysis)."""
        record = self.vkb.record(view_name)
        rewritings = self.synchronizer.synchronize(
            record.current, change, include_dominated
        )
        return [r for r in rewritings if check_legality(r).legal]

    def rank_rewritings(
        self,
        rewritings: Sequence[Rewriting],
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> list[Evaluation]:
        """Rank externally produced candidates with the system's QC-Model."""
        return self.qc_model.evaluate(rewritings, workload, updated_relation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def synchronization_log(self) -> tuple[SynchronizationResult, ...]:
        return tuple(self._sync_log)

    def is_alive(self, view_name: str) -> bool:
        return self.vkb.record(view_name).alive

    def generations(self, view_name: str) -> int:
        """How many capability changes the view has survived."""
        return self.vkb.record(view_name).generations
