"""Capability (schema) changes — the events that trigger view synchronization.

Sec. 3.3 lists the changes supported by EVE, "the ones commonly found in
commercial systems": delete-attribute, add-attribute, change-attribute-name,
delete-relation, add-relation, change-relation-name.  Each change is an
immutable event object that knows which relation (and attribute) it touches;
the :class:`~repro.space.space.InformationSpace` applies it to the owning
source and the MKB, then notifies subscribers (EVE's View Synchronizer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.relational.relation import Relation
from repro.relational.schema import Attribute


@dataclass(frozen=True)
class SchemaChange:
    """Base class for capability-change events."""

    source: str
    relation: str

    @property
    def kind(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return f"{self.kind}({self.source}.{self.relation})"

    def affects_attribute(self, attribute: str) -> bool:
        """Whether the change removes/renames this specific attribute."""
        return False

    @property
    def removes_relation(self) -> bool:
        return False


@dataclass(frozen=True)
class DeleteRelation(SchemaChange):
    """delete-relation: the IS stops offering ``relation`` entirely."""

    @property
    def removes_relation(self) -> bool:
        return True

    def affects_attribute(self, attribute: str) -> bool:
        return True  # every attribute of the relation disappears


@dataclass(frozen=True)
class AddRelation(SchemaChange):
    """add-relation: the IS starts offering a new relation.

    Carries the new relation instance so the space can install it.  Existing
    views are never *broken* by an add, but the MKB may gain constraints
    that enable better future rewritings.
    """

    new_relation: Relation = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.new_relation is None:
            raise ValueError("AddRelation requires the new relation instance")


@dataclass(frozen=True)
class RenameRelation(SchemaChange):
    """change-relation-name: ``relation`` becomes ``new_name``."""

    new_name: str = ""

    def __post_init__(self) -> None:
        if not self.new_name:
            raise ValueError("RenameRelation requires new_name")

    def describe(self) -> str:
        return (
            f"RenameRelation({self.source}.{self.relation} -> {self.new_name})"
        )


@dataclass(frozen=True)
class DeleteAttribute(SchemaChange):
    """delete-attribute: one column of ``relation`` disappears."""

    attribute: str = ""

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError("DeleteAttribute requires attribute")

    def describe(self) -> str:
        return f"DeleteAttribute({self.source}.{self.relation}.{self.attribute})"

    def affects_attribute(self, attribute: str) -> bool:
        return attribute == self.attribute


@dataclass(frozen=True)
class AddAttribute(SchemaChange):
    """add-attribute: a new column appears, filled with ``default``."""

    new_attribute: Attribute = None  # type: ignore[assignment]
    default: Any = None

    def __post_init__(self) -> None:
        if self.new_attribute is None:
            raise ValueError("AddAttribute requires the new attribute")

    def describe(self) -> str:
        return (
            f"AddAttribute({self.source}.{self.relation}."
            f"{self.new_attribute.name})"
        )


@dataclass(frozen=True)
class RenameAttribute(SchemaChange):
    """change-attribute-name: one column of ``relation`` is renamed."""

    attribute: str = ""
    new_name: str = ""

    def __post_init__(self) -> None:
        if not self.attribute or not self.new_name:
            raise ValueError("RenameAttribute requires attribute and new_name")

    def describe(self) -> str:
        return (
            f"RenameAttribute({self.source}.{self.relation}."
            f"{self.attribute} -> {self.new_name})"
        )

    def affects_attribute(self, attribute: str) -> bool:
        return attribute == self.attribute
