"""Data-content updates: tuple inserts and deletes at information sources.

Sec. 6.1 assumes updates "are sufficiently spaced from each other", i.e.
non-concurrent: each update is fully propagated to the warehouse before the
next one happens.  An update notification carries the delta tuple so the
view maintainer (Algorithm 1) can start its per-source sweep.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class UpdateKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DataUpdate:
    """One tuple inserted into or deleted from ``source.relation``."""

    source: str
    relation: str
    kind: UpdateKind
    row: tuple[Any, ...]

    def describe(self) -> str:
        return f"{self.kind} {self.row} @ {self.source}.{self.relation}"

    @property
    def is_insert(self) -> bool:
        return self.kind is UpdateKind.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is UpdateKind.DELETE
