"""The distributed information space (Fig. 1, bottom half).

Public surface:

* :class:`InformationSource` — one autonomous IS with a wrapper interface
* :class:`InformationSpace` — sources + MKB + change/update fan-out
* :class:`SchemaChange` hierarchy — the six capability changes of Sec. 3.3
* :class:`DataUpdate` / :class:`UpdateKind` — tuple-level content updates
"""

from repro.space.changes import (
    AddAttribute,
    AddRelation,
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
    SchemaChange,
)
from repro.space.source import InformationSource
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate, UpdateKind

__all__ = [
    "AddAttribute",
    "AddRelation",
    "DataUpdate",
    "DeleteAttribute",
    "DeleteRelation",
    "InformationSource",
    "InformationSpace",
    "RenameAttribute",
    "RenameRelation",
    "SchemaChange",
    "UpdateKind",
]
