"""Information sources: autonomous, semi-cooperative relation providers.

Each IS owns a catalog of relations, accepts data updates, undergoes
capability changes, and answers *single-site queries* — the wrapper
primitive the view maintainer (Algorithm 1, Sec. 6.1) relies on: "join this
incoming delta relation with your local relations referenced by the view,
apply the local selection conditions, send the result back".

Delta relations in flight are represented as *bindings*: mappings from
fully qualified attribute names (``"R.A"``) to values.  This mirrors how a
real delta accumulates columns from every relation it has joined with so
far, without inventing synthetic schemas for intermediate results.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import MaintenanceError, WorkspaceError
from repro.relational.catalog import Catalog
from repro.relational.expressions import Condition, PrimitiveClause
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.updates import DataUpdate, UpdateKind

Binding = dict[str, Any]


class InformationSource:
    """One autonomous IS: named catalog + wrapper query interface."""

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkspaceError("information source needs a non-empty name")
        self.name = name
        self.catalog = Catalog(owner=f"IS {name!r}")

    # ------------------------------------------------------------------
    # Relation hosting
    # ------------------------------------------------------------------
    def host(self, relation: Relation) -> Relation:
        """Begin offering ``relation``."""
        return self.catalog.add(relation)

    def host_empty(self, schema: Schema) -> Relation:
        return self.catalog.add_empty(schema)

    def relation(self, name: str) -> Relation:
        return self.catalog.get(name)

    def offers(self, name: str) -> bool:
        return name in self.catalog

    @property
    def relation_names(self) -> tuple[str, ...]:
        return self.catalog.relation_names

    def __repr__(self) -> str:
        return f"<IS {self.name} offering {list(self.relation_names)}>"

    # ------------------------------------------------------------------
    # Data updates (generate notifications for the space to fan out)
    # ------------------------------------------------------------------
    def insert(self, relation: str, row: Sequence[Any]) -> DataUpdate:
        validated = self.relation(relation).insert(row)
        return DataUpdate(self.name, relation, UpdateKind.INSERT, validated)

    def delete(self, relation: str, row: Sequence[Any]) -> DataUpdate:
        target = self.relation(relation)
        if not target.delete(row):
            raise MaintenanceError(
                f"delete of non-existent row {tuple(row)!r} "
                f"from {self.name}.{relation}"
            )
        return DataUpdate(self.name, relation, UpdateKind.DELETE, tuple(row))

    # ------------------------------------------------------------------
    # Wrapper query interface (single-site queries of Algorithm 1)
    # ------------------------------------------------------------------
    def answer_single_site_query(
        self,
        incoming: list[Binding],
        local_relations: Sequence[str],
        condition: Condition,
    ) -> list[Binding]:
        """Extend the incoming delta bindings with this IS's relations.

        For each local relation in turn, every binding is joined with every
        local row; WHERE conjuncts fire as soon as all their attributes are
        bound (joins across ISs included, because earlier sources' columns
        are already in the binding).  This is the per-IS step of
        Algorithm 1; message/byte accounting happens in the maintenance
        simulator, not here.
        """
        current = incoming
        for name in local_relations:
            local = self.relation(name)
            if not self.offers(name):  # pragma: no cover - defensive
                raise MaintenanceError(f"IS {self.name!r} does not offer {name!r}")
            attribute_keys = [
                f"{name}.{attr}" for attr in local.schema.attribute_names
            ]
            extended: list[Binding] = []
            for binding in current:
                for row in local:
                    candidate = dict(binding)
                    candidate.update(zip(attribute_keys, row))
                    if _satisfied_so_far(condition, candidate):
                        extended.append(candidate)
            current = extended
        return current


def _satisfied_so_far(condition: Condition, binding: Binding) -> bool:
    """Evaluate every clause whose attributes are all bound; skip the rest."""
    for clause in condition.clauses:
        if _clause_decidable(clause, binding):
            if not clause.evaluate(binding):
                return False
    return True


def _clause_decidable(clause: PrimitiveClause, binding: Binding) -> bool:
    return all(ref.qualified in binding for ref in clause.attribute_refs)
