"""Information sources: autonomous, semi-cooperative relation providers.

Each IS owns a catalog of relations, accepts data updates, undergoes
capability changes, and answers *single-site queries* — the wrapper
primitive the view maintainer (Algorithm 1, Sec. 6.1) relies on: "join this
incoming delta relation with your local relations referenced by the view,
apply the local selection conditions, send the result back".

Delta relations in flight are represented as *bindings*: mappings from
fully qualified attribute names (``"R.A"``) to values.  This mirrors how a
real delta accumulates columns from every relation it has joined with so
far, without inventing synthetic schemas for intermediate results.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import MaintenanceError, WorkspaceError
from repro.relational.catalog import Catalog
from repro.relational.expressions import Comparator, Condition, PrimitiveClause
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.updates import DataUpdate, UpdateKind

Binding = dict[str, Any]


class InformationSource:
    """One autonomous IS: named catalog + wrapper query interface."""

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkspaceError("information source needs a non-empty name")
        self.name = name
        self.catalog = Catalog(owner=f"IS {name!r}")

    # ------------------------------------------------------------------
    # Relation hosting
    # ------------------------------------------------------------------
    def host(self, relation: Relation) -> Relation:
        """Begin offering ``relation``."""
        return self.catalog.add(relation)

    def host_empty(self, schema: Schema) -> Relation:
        return self.catalog.add_empty(schema)

    def relation(self, name: str) -> Relation:
        return self.catalog.get(name)

    def offers(self, name: str) -> bool:
        return name in self.catalog

    @property
    def relation_names(self) -> tuple[str, ...]:
        return self.catalog.relation_names

    def __repr__(self) -> str:
        return f"<IS {self.name} offering {list(self.relation_names)}>"

    # ------------------------------------------------------------------
    # Data updates (generate notifications for the space to fan out)
    # ------------------------------------------------------------------
    def insert(self, relation: str, row: Sequence[Any]) -> DataUpdate:
        validated = self.relation(relation).insert(row)
        return DataUpdate(self.name, relation, UpdateKind.INSERT, validated)

    def delete(self, relation: str, row: Sequence[Any]) -> DataUpdate:
        target = self.relation(relation)
        if not target.delete(row):
            raise MaintenanceError(
                f"delete of non-existent row {tuple(row)!r} "
                f"from {self.name}.{relation}"
            )
        return DataUpdate(self.name, relation, UpdateKind.DELETE, tuple(row))

    # ------------------------------------------------------------------
    # Wrapper query interface (single-site queries of Algorithm 1)
    # ------------------------------------------------------------------
    def answer_single_site_query(
        self,
        incoming: list[Binding],
        local_relations: Sequence[str],
        condition: Condition,
        use_index: bool = True,
    ) -> list[Binding]:
        """Extend the incoming delta bindings with this IS's relations.

        For each local relation in turn, every binding is joined with the
        local rows; WHERE conjuncts fire as soon as all their attributes
        are bound (joins across ISs included, because earlier sources'
        columns are already in the binding).  This is the per-IS step of
        Algorithm 1; message/byte accounting happens in the maintenance
        simulator, not here — the modeled min(scan, probe) I/O price is
        unchanged by how the join is actually executed.

        With ``use_index`` (the default) equijoin conjuncts linking a local
        relation to already-bound delta columns probe the relation's hash
        index per delta tuple instead of cross-joining every binding with
        every local row; ``use_index=False`` forces the original
        nested-loop execution (the reference path of the equivalence
        tests and engine benchmarks).  Both produce the same bindings.
        """
        current = incoming
        for name in local_relations:
            local = self.relation(name)
            if not self.offers(name):  # pragma: no cover - defensive
                raise MaintenanceError(f"IS {self.name!r} does not offer {name!r}")
            attribute_keys = [
                f"{name}.{attr}" for attr in local.schema.attribute_names
            ]
            if use_index and current:
                current = _extend_indexed(
                    current, local, name, attribute_keys, condition
                )
            else:
                extended: list[Binding] = []
                for binding in current:
                    for row in local:
                        candidate = dict(binding)
                        candidate.update(zip(attribute_keys, row))
                        if _satisfied_so_far(condition, candidate):
                            extended.append(candidate)
                current = extended
        return current


def _extend_indexed(
    bindings: list[Binding],
    local: Relation,
    name: str,
    attribute_keys: list[str],
    condition: Condition,
) -> list[Binding]:
    """One local-relation step of the single-site query, via index probes.

    Equijoins between a local attribute and a delta column present in
    *every* incoming binding become probes (a column missing from some
    binding is undecidable there and must not filter, so it stays
    residual).  Residual clauses keep the decidable-so-far semantics of
    the nested-loop path, evaluated per candidate.
    """
    bound_keys = set(bindings[0])
    for binding in bindings[1:]:
        bound_keys &= set(binding)

    probe_attrs: list[str] = []
    probe_keys: list[str] = []
    residual: list[PrimitiveClause] = []
    for clause in condition.clauses:
        pair = _probe_pair(clause, name, local, bound_keys)
        if pair is not None:
            probe_attrs.append(pair[0])
            probe_keys.append(pair[1])
        else:
            residual.append(clause)
    residual_condition = Condition(residual)

    extended: list[Binding] = []
    if probe_attrs:
        index = local.index_on(probe_attrs)
        for binding in bindings:
            key = tuple(binding[k] for k in probe_keys)
            for row in index.probe(key):
                candidate = dict(binding)
                candidate.update(zip(attribute_keys, row))
                if _satisfied_so_far(residual_condition, candidate):
                    extended.append(candidate)
        return extended

    # No equijoin link: prune rows once with the clauses local to this
    # relation, then cross with the bindings (the naive path re-evaluated
    # those clauses per binding x row).
    local_only = [
        c
        for c in residual
        if c.attribute_refs
        and all(
            ref.relation == name and ref.attribute in local.schema
            for ref in c.attribute_refs
        )
    ]
    cross = [c for c in residual if c not in local_only]
    cross_condition = Condition(cross)
    rows = list(local)
    if local_only:
        local_condition = Condition(local_only)
        rows = [
            row
            for row in rows
            if _satisfied_so_far(
                local_condition, dict(zip(attribute_keys, row))
            )
        ]
    for binding in bindings:
        for row in rows:
            candidate = dict(binding)
            candidate.update(zip(attribute_keys, row))
            if _satisfied_so_far(cross_condition, candidate):
                extended.append(candidate)
    return extended


def _probe_pair(
    clause: PrimitiveClause,
    name: str,
    local: Relation,
    bound_keys: set[str],
) -> tuple[str, str] | None:
    """``(local_attribute, bound_binding_key)`` when the clause can probe."""
    if clause.comparator is not Comparator.EQ or not clause.is_join_clause:
        return None
    left, right = clause.left, clause.right
    for new, bound in ((left, right), (right, left)):
        if (
            new.relation == name
            and new.attribute in local.schema
            and bound.qualified in bound_keys
            and not (bound.relation == name and bound.attribute in local.schema)
        ):
            return new.attribute, bound.qualified
    return None


def _satisfied_so_far(condition: Condition, binding: Binding) -> bool:
    """Evaluate every clause whose attributes are all bound; skip the rest."""
    for clause in condition.clauses:
        if _clause_decidable(clause, binding):
            if not clause.evaluate(binding):
                return False
    return True


def _clause_decidable(clause: PrimitiveClause, binding: Binding) -> bool:
    return all(ref.qualified in binding for ref in clause.attribute_refs)
