"""Information sources: autonomous, semi-cooperative relation providers.

Each IS owns a catalog of relations, accepts data updates, undergoes
capability changes, and answers *single-site queries* — the wrapper
primitive the view maintainer (Algorithm 1, Sec. 6.1) relies on: "join this
incoming delta relation with your local relations referenced by the view,
apply the local selection conditions, send the result back".

Three in-flight representations of the delta relation exist:

* the **tuple plane** (:meth:`InformationSource.answer_single_site_batch`,
  the default) — a :class:`~repro.maintenance.delta.DeltaBatch` of
  positional tuples under an ordered schema of bound qualified columns,
  with probe keys and residual WHERE conjuncts compiled once per
  (condition, layout) and evaluated with no per-row dict construction;
* the **columnar plane**
  (:meth:`InformationSource.answer_single_site_columnar`) — a
  :class:`~repro.maintenance.delta.ColumnBatch` of parallel per-column
  lists under the same layout, with WHERE conjuncts as selection-vector
  kernels and equijoins as vectorized position-index probes;
* the **binding plane** (:meth:`InformationSource.answer_single_site_query`)
  — per-row ``dict`` mappings from fully qualified attribute names
  (``"R.A"``) to values, with clauses interpreted per candidate.  It is
  retained as the equivalence reference
  (``ViewMaintainer(representation="dict")``): both planes accept the
  same candidates in the same order, enforced by
  ``tests/property/test_delta_parity.py``.

Either way the delta accumulates columns from every relation it has
joined with so far, without inventing synthetic schemas for intermediate
results; message/byte/IO accounting lives in the maintenance simulator
and is byte-identical across representations.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.errors import MaintenanceError, WorkspaceError
from repro.relational.catalog import Catalog
from repro.relational.expressions import Comparator, Condition, PrimitiveClause
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.updates import DataUpdate, UpdateKind

Binding = dict[str, Any]


class InformationSource:
    """One autonomous IS: named catalog + wrapper query interface."""

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkspaceError("information source needs a non-empty name")
        self.name = name
        self.catalog = Catalog(owner=f"IS {name!r}")

    # ------------------------------------------------------------------
    # Relation hosting
    # ------------------------------------------------------------------
    def host(self, relation: Relation) -> Relation:
        """Begin offering ``relation``."""
        return self.catalog.add(relation)

    def host_empty(self, schema: Schema) -> Relation:
        return self.catalog.add_empty(schema)

    def relation(self, name: str) -> Relation:
        return self.catalog.get(name)

    def offers(self, name: str) -> bool:
        return name in self.catalog

    @property
    def relation_names(self) -> tuple[str, ...]:
        return self.catalog.relation_names

    def __repr__(self) -> str:
        return f"<IS {self.name} offering {list(self.relation_names)}>"

    # ------------------------------------------------------------------
    # Data updates (generate notifications for the space to fan out)
    # ------------------------------------------------------------------
    def insert(self, relation: str, row: Sequence[Any]) -> DataUpdate:
        validated = self.relation(relation).insert(row)
        return DataUpdate(self.name, relation, UpdateKind.INSERT, validated)

    def delete(self, relation: str, row: Sequence[Any]) -> DataUpdate:
        target = self.relation(relation)
        if not target.delete(row):
            raise MaintenanceError(
                f"delete of non-existent row {tuple(row)!r} "
                f"from {self.name}.{relation}"
            )
        return DataUpdate(self.name, relation, UpdateKind.DELETE, tuple(row))

    # ------------------------------------------------------------------
    # Wrapper query interface (single-site queries of Algorithm 1)
    # ------------------------------------------------------------------
    def answer_single_site_query(
        self,
        incoming: list[Binding],
        local_relations: Sequence[str],
        condition: Condition,
        use_index: bool = True,
    ) -> list[Binding]:
        """Extend the incoming delta bindings with this IS's relations.

        For each local relation in turn, every binding is joined with the
        local rows; WHERE conjuncts fire as soon as all their attributes
        are bound (joins across ISs included, because earlier sources'
        columns are already in the binding).  This is the per-IS step of
        Algorithm 1; message/byte accounting happens in the maintenance
        simulator, not here — the modeled min(scan, probe) I/O price is
        unchanged by how the join is actually executed.

        With ``use_index`` (the default) equijoin conjuncts linking a local
        relation to already-bound delta columns probe the relation's hash
        index per delta tuple instead of cross-joining every binding with
        every local row; ``use_index=False`` forces the original
        nested-loop execution (the reference path of the equivalence
        tests and engine benchmarks).  Both produce the same bindings.
        """
        current = incoming
        for name in local_relations:
            if not self.offers(name):  # pragma: no cover - defensive
                raise MaintenanceError(f"IS {self.name!r} does not offer {name!r}")
            local = self.relation(name)
            attribute_keys = [
                f"{name}.{attr}" for attr in local.schema.attribute_names
            ]
            if use_index and current:
                current = _extend_indexed(
                    current, local, name, attribute_keys, condition
                )
            else:
                extended: list[Binding] = []
                for binding in current:
                    for row in local:
                        candidate = dict(binding)
                        candidate.update(zip(attribute_keys, row))
                        if _satisfied_so_far(condition, candidate):
                            extended.append(candidate)
                current = extended
        return current

    def answer_single_site_batch(
        self,
        batch,
        local_relations: Sequence[str],
        condition: Condition,
        use_index: bool = True,
    ):
        """Tuple-plane single-site query: extend a ``DeltaBatch``.

        The compiled counterpart of :meth:`answer_single_site_query`:
        ``batch`` is a :class:`~repro.maintenance.delta.DeltaBatch`
        whose rows share one bound-column layout, so probe keys and the
        decidable-so-far residual clauses are planned once per
        (condition, layout, relation) — memoized across calls — instead
        of being re-derived per incoming row.  Provenance tags ride
        along row for row.  Accepted candidates and their order are
        identical to the binding plane's, for both ``use_index`` modes.
        """
        # Imported lazily: repro.maintenance imports this module back
        # (the simulator consumes the wrapper interface), so a top-level
        # import would cycle during package initialization.
        from repro.maintenance.delta import extend_batch

        for name in local_relations:
            if not self.offers(name):  # pragma: no cover - defensive
                raise MaintenanceError(
                    f"IS {self.name!r} does not offer {name!r}"
                )
        return extend_batch(
            self, batch, local_relations, condition, use_index=use_index
        )

    def answer_single_site_columnar(
        self,
        batch,
        local_relations: Sequence[str],
        condition: Condition,
        use_index: bool = True,
        counters=None,
    ):
        """Columnar single-site query: extend a ``ColumnBatch``.

        The column-kernel counterpart of
        :meth:`answer_single_site_batch`: the batch flows as parallel
        per-column lists, join steps run as vectorized probes plus
        selection-vector kernels, and ``counters`` (a
        :class:`~repro.relational.columnar.KernelCounters`) records rows
        scanned vs selected per kernel.  Accepted candidates and their
        order are identical to both row planes.
        """
        # Lazily imported for the same package-cycle reason as above.
        from repro.maintenance.delta import extend_batch_columnar

        for name in local_relations:
            if not self.offers(name):  # pragma: no cover - defensive
                raise MaintenanceError(
                    f"IS {self.name!r} does not offer {name!r}"
                )
        return extend_batch_columnar(
            self,
            batch,
            local_relations,
            condition,
            use_index=use_index,
            counters=counters,
        )


def _extend_indexed(
    bindings: list[Binding],
    local: Relation,
    name: str,
    attribute_keys: list[str],
    condition: Condition,
) -> list[Binding]:
    """One local-relation step of the single-site query, via index probes.

    Equijoins between a local attribute and a delta column present in
    *every* incoming binding become probes (a column missing from some
    binding is undecidable there and must not filter, so it stays
    residual).  Residual clauses keep the decidable-so-far semantics of
    the nested-loop path, evaluated per candidate.
    """
    bound_keys = set(bindings[0])
    for binding in bindings[1:]:
        bound_keys &= set(binding)

    probe_attrs: list[str] = []
    probe_keys: list[str] = []
    residual: list[PrimitiveClause] = []
    for clause in condition.clauses:
        pair = probe_pair(clause, name, local.schema, bound_keys)
        if pair is not None:
            probe_attrs.append(pair[0])
            probe_keys.append(pair[1])
        else:
            residual.append(clause)
    residual_condition = Condition(residual)

    extended: list[Binding] = []
    if probe_attrs:
        index = local.index_on(probe_attrs)
        for binding in bindings:
            key = tuple(binding[k] for k in probe_keys)
            for row in index.probe(key):
                candidate = dict(binding)
                candidate.update(zip(attribute_keys, row))
                if _satisfied_so_far(residual_condition, candidate):
                    extended.append(candidate)
        return extended

    # No equijoin link: prune rows once with the clauses local to this
    # relation, then cross with the bindings (the naive path re-evaluated
    # those clauses per binding x row).  Partitioned in one pass — the
    # former ``c not in local_only`` list probe re-scanned the local
    # list per clause, O(n^2) in the conjunction size.
    local_only, cross = partition_local_clauses(residual, name, local.schema)
    cross_condition = Condition(cross)
    rows = list(local)
    if local_only:
        local_condition = Condition(local_only)
        rows = [
            row
            for row in rows
            if _satisfied_so_far(
                local_condition, dict(zip(attribute_keys, row))
            )
        ]
    for binding in bindings:
        for row in rows:
            candidate = dict(binding)
            candidate.update(zip(attribute_keys, row))
            if _satisfied_so_far(cross_condition, candidate):
                extended.append(candidate)
    return extended


# ----------------------------------------------------------------------
# Clause classifiers — shared by BOTH delta planes
# ----------------------------------------------------------------------
# The binding plane below and the compiled tuple plane
# (:mod:`repro.maintenance.delta`) must accept exactly the same
# candidates, so the clause classification they plan joins with is one
# implementation, not two kept in lockstep by hand.


def probe_pair(
    clause: PrimitiveClause,
    relation_name: str,
    schema: Schema,
    bound_keys: frozenset[str] | set[str],
) -> tuple[str, str] | None:
    """``(local_attribute, bound_key)`` when the clause can index-probe.

    The clause must be an equijoin linking an attribute of the local
    relation to a column every incoming delta row already binds (and
    not a self-join within the local relation, which only the extended
    layout can decide).
    """
    if clause.comparator is not Comparator.EQ or not clause.is_join_clause:
        return None
    left, right = clause.left, clause.right
    for new, bound in ((left, right), (right, left)):
        if (
            new.relation == relation_name
            and new.attribute in schema
            and bound.qualified in bound_keys
            and not (
                bound.relation == relation_name
                and bound.attribute in schema
            )
        ):
            return new.attribute, bound.qualified
    return None


def partition_local_clauses(
    clauses: Sequence[PrimitiveClause],
    relation_name: str,
    schema: Schema,
) -> tuple[list[PrimitiveClause], list[PrimitiveClause]]:
    """Split clauses into (local to the relation, everything else).

    A clause is local when every attribute reference is qualified to
    the relation and names one of its attributes — decidable against a
    local row alone, so the no-probe path can prune the relation once
    before cross-joining.  One pass, order preserved within each part.
    """
    local_only: list[PrimitiveClause] = []
    others: list[PrimitiveClause] = []
    for clause in clauses:
        refs = clause.attribute_refs
        if refs and all(
            ref.relation == relation_name and ref.attribute in schema
            for ref in refs
        ):
            local_only.append(clause)
        else:
            others.append(clause)
    return local_only, others


def _satisfied_so_far(condition: Condition, binding: Binding) -> bool:
    """Evaluate every clause whose attributes are all bound; skip the rest."""
    for clause in condition.clauses:
        if clause_decidable(clause, binding):
            if not clause.evaluate(binding):
                return False
    return True


def clause_decidable(clause: PrimitiveClause, binding: Binding) -> bool:
    """Whether every attribute the clause references is bound.

    Part of the shared clause-classification surface: the maintenance
    simulator's seed filter and the system's join-graph flush analysis
    (``EVESystem.apply_updates``) both rely on it, so the decidability
    rule every delta plane uses stays one implementation.
    """
    return all(ref.qualified in binding for ref in clause.attribute_refs)


#: Backwards-compatible alias of :func:`clause_decidable`.
_clause_decidable = clause_decidable
