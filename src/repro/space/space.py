"""The information space: all sources plus the MKB, with change fan-out.

This is the "INFORMATION SPACE" half of Fig. 1.  The space

* registers sources and their relations (filling the MKB),
* routes relation lookups ("which IS offers R?"),
* applies capability changes atomically to the owning source *and* the MKB,
  then notifies capability-change subscribers (the View Synchronizer),
* fans data-update notifications out to data-update subscribers (the View
  Maintainer).

Subscribers are plain callables, keeping the wiring explicit and testable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.errors import UnknownRelationError, WorkspaceError
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.space.changes import (
    AddAttribute,
    AddRelation,
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
    SchemaChange,
)
from repro.space.source import InformationSource
from repro.space.updates import DataUpdate

ChangeListener = Callable[[SchemaChange], None]
UpdateListener = Callable[[DataUpdate], None]


class InformationSpace:
    """All participating ISs and the shared meta knowledge base."""

    def __init__(self, mkb: MetaKnowledgeBase | None = None) -> None:
        self.mkb = mkb if mkb is not None else MetaKnowledgeBase()
        self._sources: dict[str, InformationSource] = {}
        self._change_listeners: list[ChangeListener] = []
        self._update_listeners: list[UpdateListener] = []

    def __getstate__(self) -> dict:
        """Pickle without subscribers.

        Listeners are bound methods of whatever system observes the
        space (often lock-holding, unpicklable objects); a shipped copy
        is observed by *its* host, which re-registers its own listeners.
        """
        state = self.__dict__.copy()
        state["_change_listeners"] = []
        state["_update_listeners"] = []
        return state

    # ------------------------------------------------------------------
    # Source / relation registration
    # ------------------------------------------------------------------
    def add_source(self, name: str) -> InformationSource:
        """Create and register a fresh IS."""
        if name in self._sources:
            raise WorkspaceError(f"information source {name!r} already exists")
        source = InformationSource(name)
        self._sources[name] = source
        return source

    def source(self, name: str) -> InformationSource:
        try:
            return self._sources[name]
        except KeyError:
            raise WorkspaceError(f"unknown information source {name!r}") from None

    @property
    def source_names(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def __iter__(self) -> Iterator[InformationSource]:
        return iter(self._sources.values())

    def register_relation(
        self,
        source_name: str,
        relation: Relation,
        statistics: RelationStatistics | None = None,
    ) -> Relation:
        """Host ``relation`` at the IS and register it in the MKB."""
        source = self.source(source_name)
        hosted = source.host(relation)
        self.mkb.register_relation(relation.schema, source_name, statistics)
        return hosted

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owner_of(self, relation: str) -> InformationSource:
        """The IS currently offering ``relation``."""
        for source in self._sources.values():
            if source.offers(relation):
                return source
        raise UnknownRelationError(relation, "information space")

    def relation(self, name: str) -> Relation:
        return self.owner_of(name).relation(name)

    def has_relation(self, name: str) -> bool:
        return any(source.offers(name) for source in self._sources.values())

    def relations(self) -> dict[str, Relation]:
        """Snapshot of every offered relation (name -> instance)."""
        snapshot: dict[str, Relation] = {}
        for source in self._sources.values():
            for name in source.relation_names:
                snapshot[name] = source.relation(name)
        return snapshot

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def on_capability_change(self, listener: ChangeListener) -> None:
        self._change_listeners.append(listener)

    def on_data_update(self, listener: UpdateListener) -> None:
        self._update_listeners.append(listener)

    # ------------------------------------------------------------------
    # Data updates
    # ------------------------------------------------------------------
    def insert(self, relation: str, row: Iterable) -> DataUpdate:
        """Insert at whichever IS offers ``relation``; fan out the update."""
        source = self.owner_of(relation)
        update = source.insert(relation, tuple(row))
        self._notify_update(update)
        return update

    def delete(self, relation: str, row: Iterable) -> DataUpdate:
        source = self.owner_of(relation)
        update = source.delete(relation, tuple(row))
        self._notify_update(update)
        return update

    def _notify_update(self, update: DataUpdate) -> None:
        for listener in self._update_listeners:
            listener(update)

    # ------------------------------------------------------------------
    # Capability changes
    # ------------------------------------------------------------------
    def apply_change(self, change: SchemaChange) -> None:
        """Apply a capability change to source + MKB, then notify.

        The MKB is evolved first only for deletes (constraints must go
        before the schema disappears is irrelevant — order here is chosen
        so that listeners always observe the *post-change* space).
        """
        source = self.source(change.source)
        if isinstance(change, AddRelation):
            source.host(change.new_relation)
            self.mkb.register_relation(
                change.new_relation.schema, change.source
            )
        elif isinstance(change, DeleteRelation):
            if not source.offers(change.relation):
                raise UnknownRelationError(change.relation, f"IS {change.source!r}")
            source.catalog.remove(change.relation)
            self.mkb.on_relation_deleted(change.relation)
        elif isinstance(change, RenameRelation):
            source.catalog.rename_relation(change.relation, change.new_name)
            self.mkb.on_relation_renamed(change.relation, change.new_name)
        elif isinstance(change, DeleteAttribute):
            source.catalog.drop_attribute(change.relation, change.attribute)
            self.mkb.on_attribute_deleted(change.relation, change.attribute)
        elif isinstance(change, AddAttribute):
            evolved = source.catalog.add_attribute(
                change.relation, change.new_attribute, change.default
            )
            self.mkb.on_attribute_added(change.relation, evolved.schema)
        elif isinstance(change, RenameAttribute):
            source.catalog.rename_attribute(
                change.relation, change.attribute, change.new_name
            )
            self.mkb.on_attribute_renamed(
                change.relation, change.attribute, change.new_name
            )
        else:  # pragma: no cover - closed hierarchy
            raise WorkspaceError(f"unsupported change {change!r}")
        for listener in self._change_listeners:
            listener(change)

    # ------------------------------------------------------------------
    # Convenience change constructors (resolve the owning source)
    # ------------------------------------------------------------------
    def delete_relation(self, relation: str) -> DeleteRelation:
        change = DeleteRelation(self.owner_of(relation).name, relation)
        self.apply_change(change)
        return change

    def delete_attribute(self, relation: str, attribute: str) -> DeleteAttribute:
        change = DeleteAttribute(
            self.owner_of(relation).name, relation, attribute
        )
        self.apply_change(change)
        return change

    def rename_attribute(
        self, relation: str, attribute: str, new_name: str
    ) -> RenameAttribute:
        change = RenameAttribute(
            self.owner_of(relation).name, relation, attribute, new_name
        )
        self.apply_change(change)
        return change

    def rename_relation(self, relation: str, new_name: str) -> RenameRelation:
        change = RenameRelation(
            self.owner_of(relation).name, relation, new_name
        )
        self.apply_change(change)
        return change

    def __repr__(self) -> str:
        return (
            f"<InformationSpace {len(self._sources)} sources, "
            f"{len(self.mkb.relation_names)} relations>"
        )
