"""Reproduction of "Data Warehouse Evolution: Trade-offs between Quality
and Cost of Query Rewritings" (Lee, Koeller, Nica, Rundensteiner; WPI
TR-98-2 / ICDE 1999) — the QC-Model of the EVE project, with every
substrate it depends on implemented here:

* :mod:`repro.relational` — in-memory relational engine
* :mod:`repro.esql` — the E-SQL language (parser, AST, evaluator)
* :mod:`repro.misd` — MISD constraints and the Meta Knowledge Base
* :mod:`repro.space` — the distributed information space simulation
* :mod:`repro.sync` — view synchronization (rewriting generation/legality)
* :mod:`repro.qc` — the QC-Model (quality, cost, workload, ranking)
* :mod:`repro.maintenance` — Algorithm 1 executed with measured counters
* :mod:`repro.workloadgen` — experiment scenario generators
* :mod:`repro.core` — the :class:`~repro.core.eve.EVESystem` facade

Quickstart::

    from repro import EVESystem
    eve = EVESystem()
    ...

See README.md for the guided tour and DESIGN.md for the paper mapping.
"""

from repro.core.eve import EVESystem, SynchronizationResult
from repro.qc.model import Evaluation, QCModel
from repro.qc.params import TradeoffParameters

__version__ = "1.0.0"

__all__ = [
    "EVESystem",
    "Evaluation",
    "QCModel",
    "SynchronizationResult",
    "TradeoffParameters",
    "__version__",
]
