"""Reproduction of "Data Warehouse Evolution: Trade-offs between Quality
and Cost of Query Rewritings" (Lee, Koeller, Nica, Rundensteiner; WPI
TR-98-2 / ICDE 1999) — the QC-Model of the EVE project, with every
substrate it depends on implemented here:

* :mod:`repro.relational` — in-memory relational engine
* :mod:`repro.esql` — the E-SQL language (parser, AST, evaluator)
* :mod:`repro.misd` — MISD constraints and the Meta Knowledge Base
* :mod:`repro.space` — the distributed information space simulation
* :mod:`repro.sync` — view synchronization (rewriting generation/legality)
* :mod:`repro.qc` — the QC-Model (quality, cost, workload, ranking)
* :mod:`repro.maintenance` — Algorithm 1 executed with measured counters
* :mod:`repro.workloadgen` — experiment scenario generators
* :mod:`repro.core` — the :class:`~repro.core.eve.EVESystem` facade
* :mod:`repro.config` — typed, serializable system configuration profiles
* :mod:`repro.events` — the typed event/observer bus
* :mod:`repro.report` — serializable per-call run reports

Quickstart::

    from repro import EVESystem, SystemConfig, ViewSynchronized
    eve = EVESystem(config=SystemConfig.fast())
    eve.subscribe(ViewSynchronized, lambda event: print(event.view_name))
    ...

See README.md for the guided tour and DESIGN.md for the paper mapping.
"""

from repro.config import (
    EngineConfig,
    MaintenanceConfig,
    ScheduleConfig,
    SearchConfig,
    SystemConfig,
)
from repro.core.eve import EVESystem, SynchronizationResult
from repro.errors import ConfigurationError
from repro.events import (
    BatchScheduled,
    CacheInvalidated,
    DegradedToFirstLegal,
    EventBus,
    ShardRebalanced,
    SynchronizationDeferred,
    SystemEvent,
    ViewMaintained,
    ViewSynchronized,
    WorkerRecycled,
)
from repro.qc.model import Evaluation, QCModel
from repro.qc.params import TradeoffParameters
from repro.report import (
    MaintenanceFlush,
    SynchronizationRecord,
    SystemReport,
)

__version__ = "2.0.0"

__all__ = [
    "BatchScheduled",
    "CacheInvalidated",
    "ConfigurationError",
    "DegradedToFirstLegal",
    "EVESystem",
    "EngineConfig",
    "Evaluation",
    "EventBus",
    "MaintenanceConfig",
    "MaintenanceFlush",
    "QCModel",
    "ScheduleConfig",
    "SearchConfig",
    "ShardRebalanced",
    "SynchronizationDeferred",
    "SynchronizationRecord",
    "SynchronizationResult",
    "SystemConfig",
    "SystemEvent",
    "SystemReport",
    "TradeoffParameters",
    "ViewMaintained",
    "ViewSynchronized",
    "WorkerRecycled",
    "__version__",
]
