"""Deterministic synthetic data and update-stream generation.

The paper's experiments are analytic, but the exact quality path and the
maintenance simulator need concrete extents.  The generators here are
seeded, so every experiment, test, and benchmark is reproducible bit for
bit.  Relations are populated so that the registered statistics hold in
expectation: local selections with selectivity ``sigma`` select roughly
``sigma * |R|`` tuples, and equijoins across relations match with roughly
the configured join selectivity.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Sequence

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


def make_schema(
    name: str,
    attributes: Sequence[str],
    attribute_type: AttributeType = AttributeType.INT,
    attribute_size: int | None = None,
) -> Schema:
    """Uniform schema helper: every attribute shares a type and width."""
    return Schema(
        name,
        [Attribute(attr, attribute_type, attribute_size) for attr in attributes],
    )


def populate_relation(
    schema: Schema,
    cardinality: int,
    seed: int = 0,
    key_space: int | None = None,
) -> Relation:
    """Random integer relation with controllable join behaviour.

    ``key_space`` bounds the value domain: two relations populated with the
    same key space of size ``K`` equijoin with selectivity ~ ``1/K``, which
    lets callers realize a target join selectivity ``js`` by choosing
    ``K = round(1/js)``.  Defaults to ``10 * cardinality`` (sparse joins).
    """
    # zlib.crc32, not hash(): Python string hashing is salted per process,
    # which would silently break cross-run reproducibility.
    rng = random.Random(seed ^ zlib.crc32(schema.name.encode()))
    space = key_space if key_space is not None else max(10 * cardinality, 10)
    rows = [
        tuple(rng.randrange(space) for _ in range(schema.arity))
        for _ in range(cardinality)
    ]
    return Relation(schema, rows)


def populate_contained_family(
    schemas: Sequence[Schema],
    cardinalities: Sequence[int],
    seed: int = 0,
    key_space: int | None = None,
) -> list[Relation]:
    """Relations forming a containment chain R_1 ⊆ R_2 ⊆ ... ⊆ R_k.

    ``cardinalities`` must be non-decreasing.  Each relation extends the
    previous one with fresh rows, so PC subset constraints between
    consecutive members hold exactly — the setup of Experiment 4's
    S1 ⊆ S2 ⊆ S3 ⊆ S4 ⊆ S5 chain.  All schemas must share one arity.
    """
    if len(schemas) != len(cardinalities):
        raise ValueError("need one cardinality per schema")
    if list(cardinalities) != sorted(cardinalities):
        raise ValueError("containment chain needs non-decreasing cardinalities")
    arity = schemas[0].arity
    if any(schema.arity != arity for schema in schemas):
        raise ValueError("containment chain schemas must share an arity")
    rng = random.Random(seed)
    space = key_space if key_space is not None else max(
        10 * cardinalities[-1], 10
    )
    rows: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    relations: list[Relation] = []
    for schema, cardinality in zip(schemas, cardinalities):
        while len(rows) < cardinality:
            row = tuple(rng.randrange(space) for _ in range(arity))
            if row not in seen:
                seen.add(row)
                rows.append(row)
        relations.append(Relation(schema, rows[:cardinality]))
    return relations


def update_stream(
    relation: Relation,
    count: int,
    seed: int = 0,
    insert_fraction: float = 1.0,
    key_space: int | None = None,
) -> list[tuple[str, tuple[int, ...]]]:
    """A reproducible sequence of ("insert"|"delete", row) operations.

    Deletes pick rows currently believed present (tracking inserts made by
    the stream itself), so replaying the stream against the relation never
    deletes a missing tuple.
    """
    rng = random.Random(seed)
    space = key_space if key_space is not None else max(
        10 * max(relation.cardinality, 1), 10
    )
    present = list(relation.rows)
    operations: list[tuple[str, tuple[int, ...]]] = []
    for _ in range(count):
        do_insert = rng.random() < insert_fraction or not present
        if do_insert:
            row = tuple(
                rng.randrange(space) for _ in range(relation.schema.arity)
            )
            present.append(row)
            operations.append(("insert", row))
        else:
            row = present.pop(rng.randrange(len(present)))
            operations.append(("delete", row))
    return operations


def distributions(total_relations: int, sites: int) -> list[tuple[int, ...]]:
    """All ordered ways to spread ``total_relations`` over ``sites`` sites.

    Every site gets at least one relation — the rows of the paper's
    Table 2 (e.g. 6 relations over 2 sites yields (1,5), (2,4), (3,3),
    (4,2), (5,1)).
    """
    if sites <= 0 or total_relations < sites:
        return []
    if sites == 1:
        return [(total_relations,)]
    result: list[tuple[int, ...]] = []
    for first in range(1, total_relations - sites + 2):
        for rest in distributions(total_relations - first, sites - 1):
            result.append((first, *rest))
    return result
