"""Ready-made experiment scenarios matching the paper's Sec. 7 setups.

Each builder returns everything an experiment harness needs: the populated
:class:`~repro.space.space.InformationSpace`, the view(s), and the
statistics configured to the paper's parameter tables.  All generation is
seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.esql import parse_view
from repro.esql.ast import ViewDefinition
from repro.misd.statistics import RelationStatistics, SpaceStatistics
from repro.qc.cost import MaintenancePlan, SourceGroup
from repro.relational.relation import Relation
from repro.space.changes import (
    DeleteRelation,
    RenameAttribute,
    SchemaChange,
)
from repro.space.space import InformationSpace
from repro.space.updates import UpdateKind
from repro.workloadgen.generator import (
    distributions,
    make_schema,
    populate_contained_family,
    populate_relation,
)

#: Table 1 defaults (Experiment 2).
TABLE1 = {
    "n": 6,
    "cardinality": 400,
    "tuple_size": 100,
    "selectivity": 0.5,
    "join_selectivity": 0.005,
    "blocking_factor": 10,
}


# ----------------------------------------------------------------------
# Experiment 1: view survival (Sec. 7.1)
# ----------------------------------------------------------------------
@dataclass
class SurvivalScenario:
    """R(A,B) with replicas S(A,C), T(A,D) of attribute A elsewhere."""

    space: InformationSpace
    view: ViewDefinition


def build_survival_scenario(seed: int = 7) -> SurvivalScenario:
    """Sec. 7.1's setup: V0 over R, PC constraints R.A ⊆ S.A and ⊆ T.A."""
    space = InformationSpace()
    for source, schema, cardinality in [
        ("IS1", make_schema("R", ["A", "B"]), 400),
        ("IS2", make_schema("S", ["A", "C"]), 400),
        ("IS3", make_schema("T", ["A", "D"]), 400),
    ]:
        space.add_source(source)
        space.register_relation(
            source,
            populate_relation(schema, cardinality, seed=seed),
            RelationStatistics(cardinality=cardinality, tuple_size=100),
        )
    space.mkb.add_containment("R", "S", ["A"])
    space.mkb.add_containment("R", "T", ["A"])
    view = parse_view(
        """
        CREATE VIEW V0 (VE = '~') AS
        SELECT R.A (AD = true, AR = true), R.B (AD = true)
        FROM R (RR = true)
        """
    )
    return SurvivalScenario(space, view)


# ----------------------------------------------------------------------
# Experiments 2/3/5: relations spread over m sites (Secs. 7.2/7.3/7.5)
# ----------------------------------------------------------------------
@dataclass
class SiteScenario:
    """One relation distribution of Table 2, ready for cost analysis."""

    distribution: tuple[int, ...]
    plan: MaintenancePlan
    statistics: SpaceStatistics


def site_scenarios(
    sites: int,
    total_relations: int = 6,
    cardinality: int = TABLE1["cardinality"],
    tuple_size: int = TABLE1["tuple_size"],
    selectivity: float = TABLE1["selectivity"],
    join_selectivity: float = TABLE1["join_selectivity"],
    blocking_factor: int = TABLE1["blocking_factor"],
    updated_index: int = 0,
) -> list[SiteScenario]:
    """All Table 2 distributions for ``sites`` sites, as maintenance plans.

    ``updated_index`` selects which relation (global index) receives the
    update; the paper's Experiment 2 initiates updates at the first IS.
    """
    statistics = SpaceStatistics(
        join_selectivity=join_selectivity, blocking_factor=blocking_factor
    )
    names = [f"R{i}" for i in range(total_relations)]
    for name in names:
        statistics.register_simple(name, cardinality, tuple_size, selectivity)

    scenarios = []
    for distribution in distributions(total_relations, sites):
        groups = []
        cursor = 0
        for site, count in enumerate(distribution):
            groups.append(
                SourceGroup(f"IS{site + 1}", tuple(names[cursor : cursor + count]))
            )
            cursor += count
        plan = _rooted_plan(tuple(groups), names[updated_index])
        scenarios.append(SiteScenario(distribution, plan, statistics))
    return scenarios


def _rooted_plan(
    groups: tuple[SourceGroup, ...], updated_relation: str
) -> MaintenancePlan:
    """Rotate ``groups`` so the updating source leads, relation first."""
    index = next(
        i for i, g in enumerate(groups) if updated_relation in g.relations
    )
    reordered = [groups[index], *groups[:index], *groups[index + 1 :]]
    first = reordered[0]
    relations = list(first.relations)
    relations.remove(updated_relation)
    relations.insert(0, updated_relation)
    reordered[0] = SourceGroup(first.source, tuple(relations))
    return MaintenancePlan(tuple(reordered), updated_relation)


# ----------------------------------------------------------------------
# Experiment 4: substituted-relation cardinality (Sec. 7.4)
# ----------------------------------------------------------------------
@dataclass
class CardinalityScenario:
    """Table 3's setup: R2 deleted, S1 ⊆ S2 ⊆ S3 = R2 ⊆ S4 ⊆ S5."""

    space: InformationSpace
    view: ViewDefinition
    original_relations: dict[str, Relation]

    @property
    def substitute_names(self) -> tuple[str, ...]:
        return ("S1", "S2", "S3", "S4", "S5")


#: Cardinalities of Table 3.
TABLE3_CARDINALITIES = {
    "R2": 4000,
    "S1": 2000,
    "S2": 3000,
    "S3": 4000,
    "S4": 5000,
    "S5": 6000,
}


def build_cardinality_scenario(
    seed: int = 11, populate: bool = False
) -> CardinalityScenario:
    """Experiment 4's information space (Table 3 + its PC chain).

    ``populate`` materializes real extents honouring the containment chain
    (needed only by the exact-quality validation path; the analytic path
    runs on statistics alone and is much faster).
    """
    space = InformationSpace()
    space.mkb.statistics.join_selectivity = 0.005
    space.mkb.statistics.blocking_factor = 1  # Table 4 prices I/O per tuple

    attributes = ["A", "B", "C"]
    chain_names = ["S1", "S2", "S3", "S4", "S5"]
    chain_schemas = [make_schema(name, attributes) for name in chain_names]
    chain_cards = [TABLE3_CARDINALITIES[name] for name in chain_names]

    if populate:
        # S3 = R2 exactly; build the chain so S1 ⊆ S2 ⊆ S3 ⊆ S4 ⊆ S5 holds.
        chain = populate_contained_family(
            chain_schemas, chain_cards, seed=seed
        )
        r2 = Relation(make_schema("R2", attributes), chain[2].rows)
        r1 = populate_relation(make_schema("R1", ["A", "K"]), 400, seed=seed)
    else:
        chain = [Relation(schema) for schema in chain_schemas]
        r2 = Relation(make_schema("R2", attributes))
        r1 = Relation(make_schema("R1", ["A", "K"]))

    space.add_source("IS0")
    space.register_relation(
        "IS0", r1, RelationStatistics(cardinality=400, tuple_size=100)
    )
    space.add_source("IS1")
    space.register_relation(
        "IS1",
        r2,
        RelationStatistics(
            cardinality=TABLE3_CARDINALITIES["R2"], tuple_size=100
        ),
    )
    for index, (name, relation) in enumerate(zip(chain_names, chain)):
        source = f"IS{index + 2}"
        space.add_source(source)
        space.register_relation(
            source,
            relation,
            RelationStatistics(
                cardinality=TABLE3_CARDINALITIES[name], tuple_size=100
            ),
        )

    # The containment chain of Sec. 7.4, expressed towards R2 so the
    # synchronizer can substitute directly: S1 ⊆ S2 ⊆ S3 = R2 ⊆ S4 ⊆ S5.
    space.mkb.add_containment("S1", "R2", attributes)
    space.mkb.add_containment("S2", "R2", attributes)
    space.mkb.add_equivalence("S3", "R2", attributes)
    space.mkb.add_containment("R2", "S4", attributes)
    space.mkb.add_containment("R2", "S5", attributes)
    # And between chain members, for MKB completeness.
    space.mkb.add_containment("S1", "S2", attributes)
    space.mkb.add_containment("S2", "S3", attributes)
    space.mkb.add_containment("S4", "S5", attributes)

    view = parse_view(
        """
        CREATE VIEW V (VE = '~') AS
        SELECT R1.K,
               R2.A (AR = true), R2.B (AR = true), R2.C (AR = true)
        FROM R1, R2 (RR = true)
        WHERE (R1.A = R2.A) (CR = true)
        """
    )
    original = {"R1": r1.copy(), "R2": r2.copy()}
    return CardinalityScenario(space, view, original)


# ----------------------------------------------------------------------
# Evolution storm: thousands of views under a batched change stream
# ----------------------------------------------------------------------
@dataclass
class EvolutionStormScenario:
    """A large view population plus a composed capability-change batch.

    The change stream mirrors what a real warehouse's control plane
    sees: most changes land on relations no view references (``spare``
    churn — the case indexed dispatch makes free), a minority rename
    attributes that live views actually use (cheap rename
    synchronizations), and a few delete relations that are mirrored
    elsewhere (full replacement searches).  Everything is seeded and
    deterministic, so two builds with the same arguments produce
    byte-identical spaces — the property the eager-vs-batched dispatch
    benchmark relies on.
    """

    space: InformationSpace
    views: list[ViewDefinition]
    changes: list[SchemaChange]
    view_relations: tuple[str, ...]
    spare_relations: tuple[str, ...]
    mirrored_relations: tuple[str, ...]


def build_evolution_storm_scenario(
    views: int = 1000,
    view_relations: int = 200,
    spare_relations: int = 100,
    changes: int = 120,
    sources: int = 8,
    hot_renames: int = 12,
    replacement_deletes: int = 4,
    seed: int = 23,
) -> EvolutionStormScenario:
    """The 1k-view evolution-storm setup (ROADMAP scaling scenario).

    ``views`` single-relation views are spread round-robin over
    ``view_relations`` relations; ``spare_relations`` further relations
    carry no views at all.  The batch holds ``changes`` events:
    ``replacement_deletes`` deletes of mirrored view relations,
    ``hot_renames`` attribute renames on viewed attributes, and spare
    churn for the rest.  Chained renames are emitted in replay-safe
    order (each rename targets the name the previous one produced).
    """
    if views < 1 or view_relations < 1 or sources < 1:
        raise ValueError("storm needs at least one view, relation, source")
    view_relations = min(view_relations, max(views, 1))
    replacement_deletes = min(replacement_deletes, view_relations - 1)
    spare_churn = changes - hot_renames - replacement_deletes
    if spare_churn < 0:
        raise ValueError("changes must cover hot renames and deletes")
    if spare_relations < 1 and spare_churn > 0:
        raise ValueError("spare churn needs spare relations")

    rng = random.Random(seed)
    space = InformationSpace()
    source_names = [f"IS{i}" for i in range(sources)]
    for name in source_names:
        space.add_source(name)

    def register(name: str, slot: int) -> None:
        schema = make_schema(name, ["A0", "A1", "A2"])
        space.register_relation(
            source_names[slot % sources],
            Relation(schema),
            RelationStatistics(cardinality=400, tuple_size=100),
        )

    view_rel_names = [f"Rel{i}" for i in range(view_relations)]
    spare_names = [f"Spare{i}" for i in range(spare_relations)]
    for slot, name in enumerate(view_rel_names):
        register(name, slot)
    for slot, name in enumerate(spare_names):
        register(name, slot + view_relations)

    # The first ``replacement_deletes`` view relations get an equivalent
    # mirror so their views survive the delete via CVS replacement.
    mirrored = tuple(view_rel_names[:replacement_deletes])
    for slot, name in enumerate(mirrored):
        mirror = f"Mirror{slot}"
        register(mirror, slot + view_relations + spare_relations)
        space.mkb.add_equivalence(name, mirror, ["A0", "A1", "A2"])

    view_definitions = []
    for index in range(views):
        relation = view_rel_names[index % view_relations]
        view_definitions.append(
            parse_view(
                f"CREATE VIEW V{index} (VE = '~') AS "
                f"SELECT {relation}.A0 (AR = true), "
                f"{relation}.A1 (AD = true, AR = true) "
                f"FROM {relation} (RR = true)"
            )
        )

    # Change stream: draw change kinds in a deterministic shuffle while
    # tracking per-relation attribute chains so replays stay valid.
    kinds = (
        ["spare"] * spare_churn
        + ["hot"] * hot_renames
        + ["delete"] * replacement_deletes
    )
    rng.shuffle(kinds)
    spare_cycle = list(spare_names)
    rng.shuffle(spare_cycle)
    hot_pool = view_rel_names[replacement_deletes:] or view_rel_names
    delete_queue = list(mirrored)
    current_attr: dict[str, str] = {}
    batch: list[SchemaChange] = []
    for step, kind in enumerate(kinds):
        if kind == "delete" and delete_queue:
            relation = delete_queue.pop(0)
            batch.append(
                DeleteRelation(space.owner_of(relation).name, relation)
            )
            continue
        if kind == "hot":
            relation = hot_pool[step % len(hot_pool)]
            attribute = current_attr.get(relation, "A0")
            new_name = f"B{step}"
        else:
            relation = spare_cycle[step % len(spare_cycle)]
            attribute = current_attr.get(relation, "A2")
            new_name = f"Z{step}"
        batch.append(
            RenameAttribute(
                space.owner_of(relation).name, relation, attribute, new_name
            )
        )
        current_attr[relation] = new_name
    return EvolutionStormScenario(
        space,
        view_definitions,
        batch,
        tuple(view_rel_names),
        tuple(spare_names),
        mirrored,
    )


# ----------------------------------------------------------------------
# Maintenance storm: a batched update stream against a multi-site view
# ----------------------------------------------------------------------
@dataclass
class MaintenanceStormScenario:
    """A multi-site join view plus a long single-relation update stream.

    The stream is the workload shape the delta plane exists for: every
    update targets one relation (``updated_relation``) of a view that
    joins relations on two further sources, so Algorithm 1 runs the
    full multi-hop sweep per update and a batched stream can share one
    resolution, plan, and compiled pipeline end to end.  Updates are
    ``(relation, kind, row)`` intents, *not yet applied* — replay them
    through ``space.insert``/``space.delete`` (or hand the stream to
    :meth:`~repro.core.eve.EVESystem.apply_updates`).  Generation is
    arithmetic and fully deterministic: equal arguments yield
    byte-identical spaces and streams.
    """

    space: InformationSpace
    view: ViewDefinition
    updates: list[tuple[str, UpdateKind, tuple]]
    updated_relation: str
    rows: int


def build_maintenance_storm_scenario(
    updates: int = 10_000,
    rows: int = 4_000,
    delete_every: int = 7,
    prune_every: int = 11,
    tuple_size: int = 8,
) -> MaintenanceStormScenario:
    """The 10k-update maintenance storm (ROADMAP scaling scenario).

    ``R(A, B)`` at IS1 receives every update; ``S(A, C)`` at IS2 and
    ``T(A, D)`` at IS3 are keyed uniquely on ``A`` in ``[0, rows)``, so
    each surviving delta tuple joins exactly one row per hop.  Every
    ``delete_every``-th event deletes the oldest still-live row instead
    of inserting; every ``prune_every``-th insert carries a negative
    ``B`` that the view's local selection prunes at the seed (the
    seed-filter path stays hot).  ``R`` starts empty, so replaying the
    stream in order is always valid (deletes only target live rows).
    """
    if updates < 1 or rows < 1:
        raise ValueError("storm needs at least one update and one key row")
    space = InformationSpace()
    for source, schema, relation_rows in [
        ("IS1", make_schema("R", ["A", "B"]), []),
        ("IS2", make_schema("S", ["A", "C"]), [(a, 2 * a) for a in range(rows)]),
        ("IS3", make_schema("T", ["A", "D"]), [(a, 3 * a) for a in range(rows)]),
    ]:
        space.add_source(source)
        space.register_relation(
            source,
            Relation(schema, relation_rows),
            RelationStatistics(
                cardinality=max(len(relation_rows), 1), tuple_size=tuple_size
            ),
        )
    view = parse_view(
        "CREATE VIEW VStorm AS SELECT R.B, S.C, T.D FROM R, S, T "
        "WHERE R.A = S.A AND S.A = T.A AND R.B >= 0"
    )
    stream: list[tuple[str, UpdateKind, tuple]] = []
    live: list[tuple] = []
    next_live = 0
    for step in range(updates):
        if step % delete_every == delete_every - 1 and next_live < len(live):
            stream.append(("R", UpdateKind.DELETE, live[next_live]))
            next_live += 1
            continue
        payload = -1 if step % prune_every == 0 else step
        row = (step % rows, payload)
        stream.append(("R", UpdateKind.INSERT, row))
        live.append(row)
    return MaintenanceStormScenario(space, view, stream, "R", rows)


# ----------------------------------------------------------------------
# Scheduler stress: a salvage storm of replacement-heavy worklists
# ----------------------------------------------------------------------
@dataclass
class SchedulerStressScenario:
    """A large view population whose batch makes every view searchable.

    Unlike the evolution storm (where most changes are spare churn and
    synchronizations are cheap renames), every change here deletes a
    view relation that has several containment donors — so every
    affected view runs a full replacement search over the donor
    spectrum.  That is the workload the batch scheduler exists for: the
    per-view searches are expensive, independent, and (views sharing a
    relation) structurally identical, exercising cost ordering, the
    parallel executors, coalescing, and deadline degradation all at
    once.  Generation is deterministic: two builds with equal arguments
    yield byte-identical spaces.
    """

    space: InformationSpace
    views: list[ViewDefinition]
    changes: list[SchemaChange]
    view_relations: tuple[str, ...]
    donors_per_relation: int


def build_scheduler_stress_scenario(
    views: int = 1000,
    view_relations: int = 100,
    donors_per_relation: int = 6,
    view_attributes: int = 3,
    sources: int = 8,
    base_cardinality: int = 4000,
    donor_cardinality: int = 2000,
    donor_cardinality_step: int = 700,
) -> SchedulerStressScenario:
    """The 1k-view scheduler-stress storm (ROADMAP scaling scenario).

    ``views`` multi-attribute views (all attributes dispensable and
    replaceable) are spread round-robin over ``view_relations``
    relations; each relation owns ``donors_per_relation`` containment
    donors of staggered cardinality, and the batch deletes *every* view
    relation.  Every view therefore needs a replacement search whose
    candidate spectrum grows with the donor count — sized so per-view
    work dominates dispatch overhead.
    """
    if views < 1 or view_relations < 1 or sources < 1:
        raise ValueError("stress storm needs views, relations, sources")
    if donors_per_relation < 1:
        raise ValueError("every deleted relation needs at least one donor")
    view_relations = min(view_relations, views)

    space = InformationSpace()
    source_names = [f"IS{i}" for i in range(sources)]
    for name in source_names:
        space.add_source(name)

    attribute_names = [f"A{i}" for i in range(view_attributes + 1)]
    relation_names = [f"Rel{i}" for i in range(view_relations)]
    changes: list[SchemaChange] = []
    for index, relation in enumerate(relation_names):
        source = source_names[index % sources]
        space.register_relation(
            source,
            Relation(make_schema(relation, attribute_names)),
            RelationStatistics(
                cardinality=base_cardinality, tuple_size=100
            ),
        )
        for donor_index in range(donors_per_relation):
            donor = f"Donor{index}_{donor_index}"
            space.register_relation(
                source_names[(index + donor_index + 1) % sources],
                Relation(make_schema(donor, attribute_names)),
                RelationStatistics(
                    cardinality=donor_cardinality
                    + donor_cardinality_step * donor_index,
                    tuple_size=100,
                ),
            )
            space.mkb.add_containment(relation, donor, attribute_names)
        changes.append(DeleteRelation(source, relation))

    view_definitions = []
    for index in range(views):
        relation = relation_names[index % view_relations]
        select = ", ".join(
            f"{relation}.A{i} (AD = true, AR = true)"
            for i in range(view_attributes)
        )
        view_definitions.append(
            parse_view(
                f"CREATE VIEW V{index} (VE = '~') AS "
                f"SELECT {select} FROM {relation} (RR = true)"
            )
        )
    return SchedulerStressScenario(
        space,
        view_definitions,
        changes,
        tuple(relation_names),
        donors_per_relation,
    )


# ----------------------------------------------------------------------
# Sharded storm: a 100k-view salvage storm as a sequential batch stream
# ----------------------------------------------------------------------
@dataclass
class ShardedStormScenario:
    """A scheduler-stress storm replayed as sequential change batches.

    The persistent-worker executor's workload shape: the same
    replacement-heavy salvage storm as
    :class:`SchedulerStressScenario`, but with the change stream split
    into ``len(change_batches)`` sequential ``apply_changes`` calls.
    The first batch pays the pool's cold start (spawn + snapshot
    shipping); every later batch dispatches against warm workers that
    already hold their shard, so the amortized per-batch cost is
    measurable separately from bootstrap.  Generation is deterministic:
    equal arguments yield byte-identical spaces and batch streams.
    """

    space: InformationSpace
    views: list[ViewDefinition]
    change_batches: list[list[SchemaChange]]
    view_relations: tuple[str, ...]
    donors_per_relation: int

    @property
    def changes(self) -> list[SchemaChange]:
        """The flattened stream (serial replay applies the same order)."""
        return [
            change for batch in self.change_batches for change in batch
        ]


def build_sharded_storm_scenario(
    views: int = 100_000,
    view_relations: int = 200,
    donors_per_relation: int = 3,
    view_attributes: int = 2,
    sources: int = 8,
    batches: int = 4,
    tail_changes: int = 0,
    **stress_overrides,
) -> ShardedStormScenario:
    """The 100k-view sharded storm (ROADMAP scaling scenario).

    Delegates space/view/change generation to
    :func:`build_scheduler_stress_scenario` (every view relation is
    deleted and salvaged through its containment donors), then splits
    the change stream into ``batches`` near-equal contiguous batches.
    Each batch touches a disjoint relation slice, so batch outcomes are
    independent and a chunked serial replay commits byte-identical
    winners to the one-shot replay.

    ``tail_changes`` carves the final batch down to exactly that many
    changes (the preceding batches absorb the rest).  A small tail
    batch measures warm small-batch dispatch latency — the pool is hot,
    the batch is tiny — and keeps the per-view report of the last batch
    bounded regardless of storm scale.
    """
    if batches < 1:
        raise ValueError("sharded storm needs at least one batch")
    if tail_changes < 0:
        raise ValueError("tail_changes must be non-negative")
    scenario = build_scheduler_stress_scenario(
        views=views,
        view_relations=view_relations,
        donors_per_relation=donors_per_relation,
        view_attributes=view_attributes,
        sources=sources,
        **stress_overrides,
    )
    changes = scenario.changes
    batches = min(batches, len(changes))
    tail = 0
    if tail_changes and batches > 1:
        tail = min(tail_changes, len(changes) - (batches - 1))
    head_changes = changes[: len(changes) - tail]
    head_batches = batches - 1 if tail else batches
    size, remainder = divmod(len(head_changes), head_batches)
    change_batches = []
    cursor = 0
    for index in range(head_batches):
        width = size + (1 if index < remainder else 0)
        change_batches.append(head_changes[cursor : cursor + width])
        cursor += width
    if tail:
        change_batches.append(changes[len(changes) - tail :])
    return ShardedStormScenario(
        scenario.space,
        scenario.views,
        change_batches,
        scenario.view_relations,
        scenario.donors_per_relation,
    )
