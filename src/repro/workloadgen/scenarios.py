"""Ready-made experiment scenarios matching the paper's Sec. 7 setups.

Each builder returns everything an experiment harness needs: the populated
:class:`~repro.space.space.InformationSpace`, the view(s), and the
statistics configured to the paper's parameter tables.  All generation is
seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.esql import parse_view
from repro.esql.ast import ViewDefinition
from repro.misd.statistics import RelationStatistics, SpaceStatistics
from repro.qc.cost import MaintenancePlan, SourceGroup
from repro.relational.relation import Relation
from repro.space.space import InformationSpace
from repro.workloadgen.generator import (
    distributions,
    make_schema,
    populate_contained_family,
    populate_relation,
)

#: Table 1 defaults (Experiment 2).
TABLE1 = {
    "n": 6,
    "cardinality": 400,
    "tuple_size": 100,
    "selectivity": 0.5,
    "join_selectivity": 0.005,
    "blocking_factor": 10,
}


# ----------------------------------------------------------------------
# Experiment 1: view survival (Sec. 7.1)
# ----------------------------------------------------------------------
@dataclass
class SurvivalScenario:
    """R(A,B) with replicas S(A,C), T(A,D) of attribute A elsewhere."""

    space: InformationSpace
    view: ViewDefinition


def build_survival_scenario(seed: int = 7) -> SurvivalScenario:
    """Sec. 7.1's setup: V0 over R, PC constraints R.A ⊆ S.A and ⊆ T.A."""
    space = InformationSpace()
    for source, schema, cardinality in [
        ("IS1", make_schema("R", ["A", "B"]), 400),
        ("IS2", make_schema("S", ["A", "C"]), 400),
        ("IS3", make_schema("T", ["A", "D"]), 400),
    ]:
        space.add_source(source)
        space.register_relation(
            source,
            populate_relation(schema, cardinality, seed=seed),
            RelationStatistics(cardinality=cardinality, tuple_size=100),
        )
    space.mkb.add_containment("R", "S", ["A"])
    space.mkb.add_containment("R", "T", ["A"])
    view = parse_view(
        """
        CREATE VIEW V0 (VE = '~') AS
        SELECT R.A (AD = true, AR = true), R.B (AD = true)
        FROM R (RR = true)
        """
    )
    return SurvivalScenario(space, view)


# ----------------------------------------------------------------------
# Experiments 2/3/5: relations spread over m sites (Secs. 7.2/7.3/7.5)
# ----------------------------------------------------------------------
@dataclass
class SiteScenario:
    """One relation distribution of Table 2, ready for cost analysis."""

    distribution: tuple[int, ...]
    plan: MaintenancePlan
    statistics: SpaceStatistics


def site_scenarios(
    sites: int,
    total_relations: int = 6,
    cardinality: int = TABLE1["cardinality"],
    tuple_size: int = TABLE1["tuple_size"],
    selectivity: float = TABLE1["selectivity"],
    join_selectivity: float = TABLE1["join_selectivity"],
    blocking_factor: int = TABLE1["blocking_factor"],
    updated_index: int = 0,
) -> list[SiteScenario]:
    """All Table 2 distributions for ``sites`` sites, as maintenance plans.

    ``updated_index`` selects which relation (global index) receives the
    update; the paper's Experiment 2 initiates updates at the first IS.
    """
    statistics = SpaceStatistics(
        join_selectivity=join_selectivity, blocking_factor=blocking_factor
    )
    names = [f"R{i}" for i in range(total_relations)]
    for name in names:
        statistics.register_simple(name, cardinality, tuple_size, selectivity)

    scenarios = []
    for distribution in distributions(total_relations, sites):
        groups = []
        cursor = 0
        for site, count in enumerate(distribution):
            groups.append(
                SourceGroup(f"IS{site + 1}", tuple(names[cursor : cursor + count]))
            )
            cursor += count
        plan = _rooted_plan(tuple(groups), names[updated_index])
        scenarios.append(SiteScenario(distribution, plan, statistics))
    return scenarios


def _rooted_plan(
    groups: tuple[SourceGroup, ...], updated_relation: str
) -> MaintenancePlan:
    """Rotate ``groups`` so the updating source leads, relation first."""
    index = next(
        i for i, g in enumerate(groups) if updated_relation in g.relations
    )
    reordered = [groups[index], *groups[:index], *groups[index + 1 :]]
    first = reordered[0]
    relations = list(first.relations)
    relations.remove(updated_relation)
    relations.insert(0, updated_relation)
    reordered[0] = SourceGroup(first.source, tuple(relations))
    return MaintenancePlan(tuple(reordered), updated_relation)


# ----------------------------------------------------------------------
# Experiment 4: substituted-relation cardinality (Sec. 7.4)
# ----------------------------------------------------------------------
@dataclass
class CardinalityScenario:
    """Table 3's setup: R2 deleted, S1 ⊆ S2 ⊆ S3 = R2 ⊆ S4 ⊆ S5."""

    space: InformationSpace
    view: ViewDefinition
    original_relations: dict[str, Relation]

    @property
    def substitute_names(self) -> tuple[str, ...]:
        return ("S1", "S2", "S3", "S4", "S5")


#: Cardinalities of Table 3.
TABLE3_CARDINALITIES = {
    "R2": 4000,
    "S1": 2000,
    "S2": 3000,
    "S3": 4000,
    "S4": 5000,
    "S5": 6000,
}


def build_cardinality_scenario(
    seed: int = 11, populate: bool = False
) -> CardinalityScenario:
    """Experiment 4's information space (Table 3 + its PC chain).

    ``populate`` materializes real extents honouring the containment chain
    (needed only by the exact-quality validation path; the analytic path
    runs on statistics alone and is much faster).
    """
    space = InformationSpace()
    space.mkb.statistics.join_selectivity = 0.005
    space.mkb.statistics.blocking_factor = 1  # Table 4 prices I/O per tuple

    attributes = ["A", "B", "C"]
    chain_names = ["S1", "S2", "S3", "S4", "S5"]
    chain_schemas = [make_schema(name, attributes) for name in chain_names]
    chain_cards = [TABLE3_CARDINALITIES[name] for name in chain_names]

    if populate:
        # S3 = R2 exactly; build the chain so S1 ⊆ S2 ⊆ S3 ⊆ S4 ⊆ S5 holds.
        chain = populate_contained_family(
            chain_schemas, chain_cards, seed=seed
        )
        r2 = Relation(make_schema("R2", attributes), chain[2].rows)
        r1 = populate_relation(make_schema("R1", ["A", "K"]), 400, seed=seed)
    else:
        chain = [Relation(schema) for schema in chain_schemas]
        r2 = Relation(make_schema("R2", attributes))
        r1 = Relation(make_schema("R1", ["A", "K"]))

    space.add_source("IS0")
    space.register_relation(
        "IS0", r1, RelationStatistics(cardinality=400, tuple_size=100)
    )
    space.add_source("IS1")
    space.register_relation(
        "IS1",
        r2,
        RelationStatistics(
            cardinality=TABLE3_CARDINALITIES["R2"], tuple_size=100
        ),
    )
    for index, (name, relation) in enumerate(zip(chain_names, chain)):
        source = f"IS{index + 2}"
        space.add_source(source)
        space.register_relation(
            source,
            relation,
            RelationStatistics(
                cardinality=TABLE3_CARDINALITIES[name], tuple_size=100
            ),
        )

    # The containment chain of Sec. 7.4, expressed towards R2 so the
    # synchronizer can substitute directly: S1 ⊆ S2 ⊆ S3 = R2 ⊆ S4 ⊆ S5.
    space.mkb.add_containment("S1", "R2", attributes)
    space.mkb.add_containment("S2", "R2", attributes)
    space.mkb.add_equivalence("S3", "R2", attributes)
    space.mkb.add_containment("R2", "S4", attributes)
    space.mkb.add_containment("R2", "S5", attributes)
    # And between chain members, for MKB completeness.
    space.mkb.add_containment("S1", "S2", attributes)
    space.mkb.add_containment("S2", "S3", attributes)
    space.mkb.add_containment("S4", "S5", attributes)

    view = parse_view(
        """
        CREATE VIEW V (VE = '~') AS
        SELECT R1.K,
               R2.A (AR = true), R2.B (AR = true), R2.C (AR = true)
        FROM R1, R2 (RR = true)
        WHERE (R1.A = R2.A) (CR = true)
        """
    )
    original = {"R1": r1.copy(), "R2": r2.copy()}
    return CardinalityScenario(space, view, original)
