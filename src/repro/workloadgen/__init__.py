"""Synthetic data, update streams, and the paper's experiment scenarios.

Public surface:

* :func:`make_schema`, :func:`populate_relation`,
  :func:`populate_contained_family`, :func:`update_stream`,
  :func:`distributions` — seeded generators
* scenario builders: :func:`build_survival_scenario` (Exp. 1),
  :func:`site_scenarios` (Exps. 2/3/5), :func:`build_cardinality_scenario`
  (Exp. 4), plus the paper's parameter tables (``TABLE1``,
  ``TABLE3_CARDINALITIES``)
"""

from repro.workloadgen.generator import (
    distributions,
    make_schema,
    populate_contained_family,
    populate_relation,
    update_stream,
)
from repro.workloadgen.scenarios import (
    TABLE1,
    TABLE3_CARDINALITIES,
    CardinalityScenario,
    EvolutionStormScenario,
    SchedulerStressScenario,
    ShardedStormScenario,
    SiteScenario,
    SurvivalScenario,
    build_cardinality_scenario,
    build_evolution_storm_scenario,
    build_scheduler_stress_scenario,
    build_sharded_storm_scenario,
    build_survival_scenario,
    site_scenarios,
)

__all__ = [
    "TABLE1",
    "TABLE3_CARDINALITIES",
    "CardinalityScenario",
    "EvolutionStormScenario",
    "SchedulerStressScenario",
    "ShardedStormScenario",
    "SiteScenario",
    "SurvivalScenario",
    "build_cardinality_scenario",
    "build_evolution_storm_scenario",
    "build_scheduler_stress_scenario",
    "build_sharded_storm_scenario",
    "build_survival_scenario",
    "distributions",
    "make_schema",
    "populate_contained_family",
    "populate_relation",
    "site_scenarios",
    "update_stream",
]
