"""E-SQL evolution parameters (Sec. 3.1, Fig. 3 and Fig. 6).

Every view component carries a (dispensable, replaceable) pair:

* attributes:  ``AD`` / ``AR``
* conditions:  ``CD`` / ``CR``
* relations:   ``RD`` / ``RR``

and the view as a whole carries a view-extent parameter ``VE`` constraining
how the extent of a rewriting may relate to the original extent.

All parameters default to the strictest setting (``false`` /
:attr:`ViewExtent.ANY` is *not* the default — the paper's default for VE is
unspecified per-view; we follow the paper's examples and default to ANY,
which imposes no extent restriction, while the boolean parameters default
to false = indispensable / non-replaceable, matching Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ViewExtent(enum.Enum):
    """The VE parameter: admissible relationship of new extent to old.

    Values mirror Fig. 3:

    * ``ANY``      (``≈``)  no restriction on the new extent,
    * ``EQUAL``    (``≡``)  new extent must equal the old extent,
    * ``SUPERSET`` (``⊇``)  new extent must contain the old extent,
    * ``SUBSET``   (``⊆``)  new extent must be contained in the old extent.
    """

    ANY = "~"
    EQUAL = "="
    SUPERSET = ">="
    SUBSET = "<="

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_symbol(cls, symbol: str) -> "ViewExtent":
        """Parse the textual VE symbol, accepting common synonyms."""
        aliases = {
            "~": cls.ANY, "any": cls.ANY, "approx": cls.ANY, "": cls.ANY,
            "=": cls.EQUAL, "==": cls.EQUAL, "equal": cls.EQUAL,
            ">=": cls.SUPERSET, "superset": cls.SUPERSET, "sup": cls.SUPERSET,
            "<=": cls.SUBSET, "subset": cls.SUBSET, "sub": cls.SUBSET,
        }
        try:
            return aliases[symbol.strip().lower()]
        except KeyError:
            raise ValueError(f"unknown view-extent symbol {symbol!r}") from None

    @property
    def allows_missing_tuples(self) -> bool:
        """Whether tuples of the original view may be absent (D1 > 0)."""
        return self in (ViewExtent.ANY, ViewExtent.SUBSET)

    @property
    def allows_surplus_tuples(self) -> bool:
        """Whether tuples not in the original view may appear (D2 > 0)."""
        return self in (ViewExtent.ANY, ViewExtent.SUPERSET)


class AttributeCategory(enum.Enum):
    """The four preserved-attribute categories of Fig. 6.

    Categories 1 and 2 receive weights ``w1``/``w2`` in the interface-quality
    computation; categories 3 and 4 (indispensable) must always survive and
    carry no weight.
    """

    C1 = (True, True)    # dispensable, replaceable     -> weight w1
    C2 = (True, False)   # dispensable, non-replaceable -> weight w2
    C3 = (False, True)   # indispensable, replaceable   -> must stay
    C4 = (False, False)  # indispensable, non-replaceable -> must stay

    def __init__(self, dispensable: bool, replaceable: bool) -> None:
        self.dispensable = dispensable
        self.replaceable = replaceable

    @classmethod
    def of(cls, dispensable: bool, replaceable: bool) -> "AttributeCategory":
        for member in cls:
            if (member.dispensable, member.replaceable) == (
                dispensable,
                replaceable,
            ):
                return member
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def must_be_preserved(self) -> bool:
        return not self.dispensable


@dataclass(frozen=True)
class EvolutionFlags:
    """The (dispensable, replaceable) pair attached to a view component.

    The paper's defaults (Fig. 3, column 3) are false/false: indispensable
    and non-replaceable.
    """

    dispensable: bool = False
    replaceable: bool = False

    @property
    def category(self) -> AttributeCategory:
        return AttributeCategory.of(self.dispensable, self.replaceable)

    def format(self, dispensable_key: str, replaceable_key: str) -> str:
        """Render as e.g. ``(AD = true, AR = false)``; empty when default."""
        parts = []
        if self.dispensable:
            parts.append(f"{dispensable_key} = true")
        if self.replaceable:
            parts.append(f"{replaceable_key} = true")
        if not parts:
            return ""
        return f" ({', '.join(parts)})"


#: The strict default: indispensable, non-replaceable.
STRICT = EvolutionFlags(False, False)
#: Fully relaxed: dispensable and replaceable.
RELAXED = EvolutionFlags(True, True)
#: Dispensable but non-replaceable (category C2).
DISPENSABLE_ONLY = EvolutionFlags(True, False)
#: Replaceable but indispensable (category C3).
REPLACEABLE_ONLY = EvolutionFlags(False, True)
