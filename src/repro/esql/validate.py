"""Semantic validation and name resolution for E-SQL views.

Given the schemas of the information space, validation checks that a view
definition is well-formed:

* every FROM relation exists,
* every attribute reference resolves to exactly one FROM relation,
* clause operands have comparable domains.

:func:`resolve_view` additionally returns a copy of the definition with all
attribute references fully qualified (``A`` -> ``R.A``), which is the form
the evaluator, synchronizer, and quality model work with.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.esql.ast import SelectItem, ViewDefinition, WhereItem
from repro.relational.expressions import (
    AttributeRef,
    Constant,
    PrimitiveClause,
)
from repro.relational.schema import Schema
from repro.relational.types import AttributeType, infer_type


class ViewValidator:
    """Validates and resolves views against a name -> :class:`Schema` map."""

    def __init__(self, schemas: Mapping[str, Schema]) -> None:
        self._schemas = dict(schemas)

    # ------------------------------------------------------------------
    # Reference resolution
    # ------------------------------------------------------------------
    def _resolve_ref(
        self, ref: AttributeRef, view: ViewDefinition
    ) -> AttributeRef:
        """Fully qualified form of ``ref`` within ``view``'s FROM scope."""
        if ref.relation is not None:
            if ref.relation not in view.relation_names:
                raise UnknownRelationError(
                    ref.relation, f"FROM clause of view {view.name!r}"
                )
            schema = self._schema_of(ref.relation)
            if ref.attribute not in schema:
                raise UnknownAttributeError(ref.attribute, ref.relation)
            return ref
        owners = [
            name
            for name in view.relation_names
            if ref.attribute in self._schema_of(name)
        ]
        if not owners:
            raise UnknownAttributeError(
                ref.attribute, f"any FROM relation of view {view.name!r}"
            )
        if len(owners) > 1:
            raise SchemaError(
                f"attribute {ref.attribute!r} in view {view.name!r} is "
                f"ambiguous across relations {owners}"
            )
        return AttributeRef(ref.attribute, owners[0])

    def _schema_of(self, relation: str) -> Schema:
        try:
            return self._schemas[relation]
        except KeyError:
            raise UnknownRelationError(relation, "information space") from None

    def _operand_type(
        self, operand: AttributeRef | Constant
    ) -> AttributeType:
        if isinstance(operand, Constant):
            return infer_type(operand.value)
        assert operand.relation is not None  # resolved first
        return self._schema_of(operand.relation).attribute(operand.attribute).type

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def validate(self, view: ViewDefinition) -> None:
        """Raise on the first semantic problem; returns None when clean."""
        self.resolve_view(view)

    def resolve_view(self, view: ViewDefinition) -> ViewDefinition:
        """Fully qualified, type-checked copy of ``view``."""
        for item in view.from_:
            self._schema_of(item.relation)  # existence check

        select = [
            SelectItem(
                self._resolve_ref(item.ref, view),
                item.flags,
                alias=item.output_name,
            )
            for item in view.select
        ]

        where: list[WhereItem] = []
        for item in view.where:
            clause = item.clause
            left = (
                self._resolve_ref(clause.left, view)
                if isinstance(clause.left, AttributeRef)
                else clause.left
            )
            right = (
                self._resolve_ref(clause.right, view)
                if isinstance(clause.right, AttributeRef)
                else clause.right
            )
            resolved = PrimitiveClause(left, clause.comparator, right)
            left_type = self._operand_type(left)
            right_type = self._operand_type(right)
            if not left_type.is_comparable_with(right_type):
                raise SchemaError(
                    f"clause ({resolved}) in view {view.name!r} compares "
                    f"{left_type.label} with {right_type.label}"
                )
            where.append(WhereItem(resolved, item.flags))

        return ViewDefinition(
            view.name, select, view.from_, where, view.extent_parameter
        )

    def output_schema(self, view: ViewDefinition) -> Schema:
        """Schema of the view's result (interface names, source types)."""
        resolved = self.resolve_view(view)
        attributes = []
        for item in resolved.select:
            assert item.ref.relation is not None
            source = self._schema_of(item.ref.relation).attribute(
                item.ref.attribute
            )
            attributes.append(source.renamed(item.output_name))
        return Schema(view.name, attributes)
