"""EXPLAIN: structured plans for view evaluation and maintenance runs.

The evaluator (:mod:`repro.esql.evaluator`) and the delta plane
(:mod:`repro.maintenance.simulator`) make their decisions — greedy join
order, index probe vs scan, projection pushdown, representation — deep
inside their hot loops, invisibly.  This module re-derives those
decisions as inspectable data:

* :func:`build_plan` walks a view exactly the way the evaluator will
  (same join order, same probe split, same clause scheduling) and
  returns an :class:`EvaluationPlan` whose :class:`PlanStep`\\ s carry
  the cardinality estimates that drove every choice.
* :func:`explain_view` additionally executes the view with a step trace
  (``analyze=True``) and reconciles estimated vs actual cardinalities,
  including column-kernel rows scanned/selected on the columnar plane.
* :func:`explain_maintenance` renders Algorithm 1's itinerary for one
  update — source visit order and per-relation index-probe vs scan —
  as a :class:`MaintenanceExplain`.

Plans are pure descriptions: building one never materializes an extent
or mutates any relation.  ``to_dict()`` is the stable wire form embedded
in the schema-v3 :class:`~repro.report.SystemReport` ``plans`` section;
``to_text()`` is the stable human rendering the golden tests pin.

The cost model here (:func:`clause_selectivity`, the per-step
``estimated_cost`` in abstract *row operations*) is also the judge the
guard-railed optimizer pass (:mod:`repro.sync.optimizer`) scores its
transforms against: a transform is applied only when this model says it
is an improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

from repro.errors import EvaluationError
from repro.esql.ast import ViewDefinition
from repro.esql.validate import ViewValidator
from repro.misd.statistics import (
    DEFAULT_CARDINALITY,
    DEFAULT_JOIN_SELECTIVITY,
    DEFAULT_SELECTIVITY,
    SpaceStatistics,
)
from repro.relational.expressions import PrimitiveClause
from repro.relational.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.config import EngineConfig
    from repro.sync.optimizer import OptimizationReport, PlanHints

__all__ = [
    "EvaluationPlan",
    "MaintenanceExplain",
    "MaintenanceStep",
    "PlanStep",
    "build_plan",
    "clause_selectivity",
    "explain_maintenance",
    "explain_view",
]

#: Access-path vocabulary; validators pin these strings.
ACCESS_INDEX_PROBE = "index_probe"
ACCESS_SCAN = "scan"


def _fmt(value: float | int | None) -> str:
    """Stable number rendering: integers bare, floats to one decimal."""
    if value is None:
        return "?"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.1f}"


def clause_selectivity(
    clause: PrimitiveClause, statistics: SpaceStatistics | None
) -> float:
    """The fraction of candidates this clause is estimated to keep.

    Equijoins take the space-wide join selectivity (Table 1's ``js``),
    single-relation conditions the relation's sigma when statistics
    cover it, and everything else the paper's default sigma.  This is
    the ranking key the optimizer's selective-first ordering uses, so
    it must be deterministic for a given clause + statistics pair.
    """
    if clause.is_equijoin and len(clause.relations()) > 1:
        if statistics is not None:
            return statistics.join_selectivity
        return DEFAULT_JOIN_SELECTIVITY
    relations = clause.relations()
    if len(relations) == 1 and statistics is not None:
        name = next(iter(relations))
        if name in statistics.relations:
            return statistics.selectivity(name)
    return DEFAULT_SELECTIVITY


# ----------------------------------------------------------------------
# Evaluation plans
# ----------------------------------------------------------------------
@dataclass
class PlanStep:
    """One FROM step of an evaluation plan.

    ``access`` is ``"index_probe"`` when the step probes a hash index on
    the equijoin key(s) in ``probe``, ``"scan"`` otherwise (local
    conditions prune the scan once; ``cross`` filters run per candidate
    pair).  ``estimated_rows`` is the running binding-count estimate
    *after* this step; ``actual_rows`` is filled by ``analyze`` runs.
    """

    position: int
    relation: str
    access: str
    probe: tuple[str, ...] = ()
    local: tuple[str, ...] = ()
    cross: tuple[str, ...] = ()
    #: Local conditions the optimizer pushed ahead of candidate
    #: construction at this probe step (subset of what would otherwise
    #: sit in ``cross``), in the order they will run.
    pushed: tuple[str, ...] = ()
    #: True when the optimizer converted this step to an
    #: early-terminating existence probe (provably-semi join).
    semi: bool = False
    columns: tuple[str, ...] = ()
    relation_rows: float = 0.0
    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    actual_rows: int | None = None
    # Clause objects (not serialized) so the optimizer can act on the
    # exact conjuncts the evaluator will schedule at this step.
    local_clauses: tuple[PrimitiveClause, ...] = field(
        default=(), repr=False, compare=False
    )
    cross_clauses: tuple[PrimitiveClause, ...] = field(
        default=(), repr=False, compare=False
    )
    #: Probed attributes of this step's relation (bare names, not
    #: serialized) — the optimizer's uniqueness proof needs them.
    probe_attrs: tuple[str, ...] = field(
        default=(), repr=False, compare=False
    )
    #: Whether the relation feeds the SELECT list (not serialized) —
    #: a semi conversion is only sound when it does not.
    projected: bool = field(default=False, repr=False, compare=False)

    def to_dict(self) -> dict[str, Any]:
        """Stable serialized step (hidden optimizer fields excluded)."""
        return {
            "position": self.position,
            "relation": self.relation,
            "access": self.access,
            "probe": list(self.probe),
            "local": list(self.local),
            "cross": list(self.cross),
            "pushed": list(self.pushed),
            "semi": self.semi,
            "columns": list(self.columns),
            "relation_rows": self.relation_rows,
            "estimated_rows": self.estimated_rows,
            "estimated_cost": self.estimated_cost,
            "actual_rows": self.actual_rows,
        }

    def to_text(self) -> str:
        """One plan line: access method, clauses, estimates, actuals."""
        if self.access == ACCESS_INDEX_PROBE:
            what = f"index probe on {', '.join(self.probe)}"
            if self.semi:
                what = f"semi {what}"
        elif self.local:
            what = f"filtered scan [{', '.join(self.local)}]"
        else:
            what = "scan"
        parts = [f"{self.position}. {self.relation}: {what}"]
        if self.pushed:
            parts.append(f"pushed=[{', '.join(self.pushed)}]")
        if self.access == ACCESS_INDEX_PROBE and self.local:
            parts.append(f"local=[{', '.join(self.local)}]")
        if self.cross:
            parts.append(f"cross=[{', '.join(self.cross)}]")
        parts.append(f"rows~{_fmt(self.estimated_rows)}")
        if self.actual_rows is not None:
            parts.append(f"actual={self.actual_rows}")
        return ", ".join(parts)


@dataclass
class EvaluationPlan:
    """The full plan for one view evaluation, in join order."""

    view: str
    engine: str
    representation: str
    use_index: bool
    optimize: bool
    join_order: tuple[str, ...]
    steps: tuple[PlanStep, ...]
    output_columns: tuple[str, ...]
    estimated_rows: float
    estimated_cost: float
    actual_rows: int | None = None
    #: Column-kernel rows scanned vs selected during an ``analyze`` run
    #: (columnar representation only).
    kernels: dict[str, int] | None = None
    optimizer: "OptimizationReport | None" = None

    def to_dict(self) -> dict[str, Any]:
        """Stable serialized plan (``kind`` discriminates the plan type)."""
        return {
            "kind": "evaluation",
            "view": self.view,
            "engine": self.engine,
            "representation": self.representation,
            "use_index": self.use_index,
            "optimize": self.optimize,
            "join_order": list(self.join_order),
            "steps": [step.to_dict() for step in self.steps],
            "output": list(self.output_columns),
            "estimated_rows": self.estimated_rows,
            "estimated_cost": self.estimated_cost,
            "actual_rows": self.actual_rows,
            "kernels": dict(self.kernels) if self.kernels else None,
            "optimizer": (
                self.optimizer.to_dict() if self.optimizer is not None else None
            ),
        }

    def to_text(self) -> str:
        """Multi-line human rendering (header, steps, select, totals)."""
        index = "on" if self.use_index else "off"
        optimize = "on" if self.optimize else "off"
        lines = [
            f"EXPLAIN Ext({self.view}) [engine={self.engine} "
            f"representation={self.representation} index={index} "
            f"optimize={optimize}]",
            f"  join order: {' -> '.join(self.join_order)}",
        ]
        for step in self.steps:
            lines.append(f"  {step.to_text()}")
        lines.append(f"  select: {', '.join(self.output_columns)}")
        lines.append(
            f"  estimated: rows~{_fmt(self.estimated_rows)}, "
            f"cost~{_fmt(self.estimated_cost)} row-ops"
        )
        if self.actual_rows is not None:
            lines.append(f"  actual: {self.actual_rows} rows")
        if self.kernels:
            lines.append(
                f"  kernels: scanned={self.kernels.get('rows_scanned', 0)} "
                f"selected={self.kernels.get('rows_selected', 0)}"
            )
        if self.optimizer is not None:
            lines.extend(
                "  " + line for line in self.optimizer.to_text().splitlines()
            )
        return "\n".join(lines)


class _StatsOnlyRelation:
    """Stand-in when no extents are available: Table 1 default shape."""

    __slots__ = ("schema", "cardinality")

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.cardinality = DEFAULT_CARDINALITY


def _resolve(
    view: ViewDefinition,
    relations,
    schemas: Mapping[str, Schema] | None,
):
    """Common resolution for plan builders: (resolved, lookup, schemas).

    ``relations`` may be a mapping, a lookup callable, or ``None`` —
    the last form builds a statistics-only plan (the sync pipeline uses
    it pre-assessment, before any extent is touched) and then requires
    ``schemas``.
    """
    from repro.esql.evaluator import _lookup_from

    if relations is None:
        if schemas is None:
            raise EvaluationError(
                "build_plan needs concrete relations or explicit schemas"
            )
        stand_ins = {
            name: _StatsOnlyRelation(schemas[name])
            for name in view.relation_names
        }
        lookup = _lookup_from(stand_ins)
    else:
        lookup = _lookup_from(relations)
        if schemas is None:
            schemas = {
                name: lookup(name).schema for name in view.relation_names
            }
    resolved = ViewValidator(schemas).resolve_view(view)
    return resolved, lookup, schemas


def build_plan(
    view: ViewDefinition,
    relations=None,
    statistics: SpaceStatistics | None = None,
    config: "EngineConfig | None" = None,
    schemas: Mapping[str, Schema] | None = None,
    hints: "PlanHints | None" = None,
    optimizer: "OptimizationReport | None" = None,
) -> EvaluationPlan:
    """Derive the plan :func:`~repro.esql.evaluator.evaluate_view` will run.

    The walk mirrors the evaluator exactly: greedy join order (literal
    FROM order for the naive engine), per-step probe split, projection
    pushdown, and clause scheduling at the first step where every
    referenced relation is bound.  ``hints`` (from the optimizer)
    annotate steps with applied transforms; estimates are never changed
    by hints — transforms are plan-shape-only by construction.
    """
    from repro.config import EngineConfig
    from repro.esql.evaluator import (
        _join_order,
        _referenced_columns,
        _split_probes,
    )

    if config is None:
        config = EngineConfig()
    resolved, lookup, schemas = _resolve(view, relations, schemas)

    naive = config.engine == "naive"
    representation = "dict" if naive else config.representation
    use_index = False if naive else config.use_index
    if naive:
        order = list(resolved.relation_names)
    else:
        order = _join_order(resolved, lookup, statistics)

    if naive:
        needed = None  # the dict plane binds every attribute
    else:
        needed = _referenced_columns(resolved)

    def relation_rows(name: str) -> float:
        if statistics is not None and name in statistics.relations:
            return float(statistics.cardinality(name))
        return float(lookup(name).cardinality)

    js = (
        statistics.join_selectivity
        if statistics is not None
        else DEFAULT_JOIN_SELECTIVITY
    )

    slots: dict[str, int] = {}
    placed: set[str] = set()
    remaining = [item.clause for item in resolved.where]
    steps: list[PlanStep] = []
    rows_in = 1.0
    total_cost = 0.0

    for position, relation_name in enumerate(order, start=1):
        schema = schemas[relation_name]
        kept = [
            attr
            for attr in schema.attribute_names
            if needed is None or f"{relation_name}.{attr}" in needed
        ]
        base = len(slots)
        for offset, attr in enumerate(kept):
            slots[f"{relation_name}.{attr}"] = base + offset
        placed.add(relation_name)

        decidable = [c for c in remaining if c.relations() <= placed]
        remaining = [c for c in remaining if c.relations() - placed]
        if use_index or naive:
            # The naive engine's hash fast path recognizes the same
            # equijoin pattern; on the indexed plane the probe split is
            # the evaluator's own.
            probe_pairs, residual = _split_probes(
                decidable, relation_name, slots, base
            )
        else:
            probe_pairs, residual = [], decidable

        local = [c for c in residual if c.relations() <= {relation_name}]
        cross = [c for c in residual if c.relations() - {relation_name}]

        # -- cardinality estimate (Table 1 semantics) ------------------
        card = relation_rows(relation_name)
        sigma_local = 1.0
        for clause in local:
            sigma_local *= clause_selectivity(clause, statistics)
        joins = len(probe_pairs) + sum(1 for c in cross if c.is_equijoin)
        other_cross = sum(1 for c in cross if not c.is_equijoin)
        rows_out = (
            rows_in
            * card
            * sigma_local
            * (js**joins)
            * (DEFAULT_SELECTIVITY**other_cross)
        )

        # -- cost estimate (abstract row operations) -------------------
        n_residual = len(local) + len(cross)
        pushed: tuple[str, ...] = ()
        semi = False
        projected = any(
            item.ref.relation == relation_name for item in resolved.select
        )
        if probe_pairs:
            access = ACCESS_INDEX_PROBE
            emitted = rows_in * card * (js ** len(probe_pairs))
            if (
                hints is not None
                and relation_name in hints.semi
                and position == len(order)
                and not residual
                and not projected
            ):
                semi = True
                cost = rows_in  # existence probes only
            elif hints is not None and relation_name in hints.pushdown:
                pushed_clauses = hints.pushdown[relation_name]
                pushed = tuple(str(c) for c in pushed_clauses)
                pushed_set = set(pushed_clauses)
                sigma_pushed = 1.0
                for clause in pushed_clauses:
                    sigma_pushed *= clause_selectivity(clause, statistics)
                rest = sum(1 for c in residual if c not in pushed_set)
                local = [c for c in local if c not in pushed_set]
                cost = (
                    rows_in
                    + emitted * len(pushed_clauses)
                    + emitted * sigma_pushed * (1 + rest)
                )
            else:
                cost = rows_in + emitted * (1 + n_residual)
        else:
            access = ACCESS_SCAN
            cost = card + rows_in * card * sigma_local * (1 + len(cross))

        steps.append(
            PlanStep(
                position=position,
                relation=relation_name,
                access=access,
                probe=tuple(
                    f"{new.qualified} = {bound.qualified}"
                    for new, bound in probe_pairs
                ),
                local=tuple(str(c) for c in local),
                cross=tuple(str(c) for c in cross),
                pushed=pushed,
                semi=semi,
                columns=tuple(kept),
                relation_rows=card,
                estimated_rows=rows_out,
                estimated_cost=cost,
                local_clauses=tuple(local),
                cross_clauses=tuple(cross),
                probe_attrs=tuple(new.attribute for new, _ in probe_pairs),
                projected=projected,
            )
        )
        rows_in = rows_out
        total_cost += cost

    return EvaluationPlan(
        view=resolved.name,
        engine=config.engine,
        representation=representation,
        use_index=use_index,
        optimize=getattr(config, "optimize", False),
        join_order=tuple(order),
        steps=tuple(steps),
        output_columns=tuple(
            item.output_name for item in resolved.select
        ),
        estimated_rows=rows_in,
        estimated_cost=total_cost,
        optimizer=optimizer,
    )


def explain_view(
    view: ViewDefinition,
    relations,
    statistics: SpaceStatistics | None = None,
    config: "EngineConfig | None" = None,
    analyze: bool = False,
) -> EvaluationPlan:
    """Build the plan for ``view``; with ``analyze=True`` also run it.

    The analyze pass executes :func:`~repro.esql.evaluator.evaluate_view`
    with a step trace and reconciles the per-step binding counts into
    ``actual_rows`` (steps the evaluator short-circuited past after an
    empty intermediate result report ``0``), plus the column-kernel
    scanned/selected totals on the columnar plane.  The evaluation is
    side-effect free: no extent cache is touched.
    """
    from repro.config import EngineConfig

    if config is None:
        config = EngineConfig()

    hints = None
    report = None
    if getattr(config, "optimize", False) and config.engine == "indexed":
        from repro.sync.optimizer import PlanOptimizer

        hints, report = PlanOptimizer(statistics).optimize(
            view, relations, config
        )
    plan = build_plan(
        view,
        relations,
        statistics,
        config,
        hints=hints,
        optimizer=report,
    )
    if not analyze:
        return plan

    from repro.esql.evaluator import evaluate_view
    from repro.relational.columnar import KernelCounters

    trace: list[tuple[str, int]] = []
    counters = KernelCounters() if plan.representation == "columnar" else None
    extent = evaluate_view(
        view,
        relations,
        statistics,
        config=config,
        kernel_counters=counters,
        trace=trace,
    )
    traced = dict(trace)
    exhausted = False
    for step in plan.steps:
        if step.relation in traced:
            step.actual_rows = traced[step.relation]
            exhausted = step.actual_rows == 0
        elif exhausted:
            # The evaluator broke out after an empty intermediate result;
            # every later step saw zero candidates.
            step.actual_rows = 0
    plan.actual_rows = extent.cardinality
    if counters is not None:
        plan.kernels = counters.as_dict()
    return plan


# ----------------------------------------------------------------------
# Maintenance plans (Algorithm 1 itineraries)
# ----------------------------------------------------------------------
@dataclass
class MaintenanceStep:
    """One relation visit of the Sec. 6.1 delta sweep."""

    position: int
    source: str
    relation: str
    access: str
    probe: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Stable serialized itinerary step."""
        return {
            "position": self.position,
            "source": self.source,
            "relation": self.relation,
            "access": self.access,
            "probe": self.probe,
        }

    def to_text(self) -> str:
        """One itinerary line: relation, owning source, access method."""
        what = (
            f"index probe on {self.probe}"
            if self.access == ACCESS_INDEX_PROBE
            else "scan"
        )
        return (
            f"{self.position}. {self.relation} @ {self.source}: {what}"
        )


@dataclass
class MaintenanceExplain:
    """Algorithm 1's itinerary for one update, as inspectable data.

    ``steps`` list the relations joined with the delta in visit order
    (sources in itinerary order, relations in listed order within each
    source) and whether each join runs as an index probe on an equijoin
    key the delta already binds, or as a scan.  ``estimated`` carries the
    modeled CF message count for the itinerary; ``actual`` (when
    reconciled from :class:`~repro.maintenance.counters.MaintenanceCounters`)
    the counters one flush actually charged.
    """

    view: str
    updated_relation: str
    representation: str
    use_index: bool
    sources: tuple[str, ...]
    steps: tuple[MaintenanceStep, ...]
    estimated: dict[str, int]
    actual: dict[str, int] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Stable serialized itinerary (``kind`` discriminates)."""
        return {
            "kind": "maintenance",
            "view": self.view,
            "relation": self.updated_relation,
            "representation": self.representation,
            "use_index": self.use_index,
            "sources": list(self.sources),
            "steps": [step.to_dict() for step in self.steps],
            "estimated": dict(self.estimated),
            "actual": dict(self.actual) if self.actual is not None else None,
        }

    def to_text(self) -> str:
        """Multi-line human rendering (header, steps, estimate, actuals)."""
        index = "on" if self.use_index else "off"
        lines = [
            f"EXPLAIN maintain {self.view} on update({self.updated_relation}) "
            f"[representation={self.representation} index={index}]",
            f"  sources: {' -> '.join(self.sources)}",
        ]
        for step in self.steps:
            lines.append(f"  {step.to_text()}")
        lines.append(
            f"  estimated: {self.estimated.get('messages', 0)} messages"
        )
        if self.actual is not None:
            lines.append(
                "  actual: "
                f"{self.actual.get('messages', 0)} messages, "
                f"{self.actual.get('bytes_transferred', 0)} bytes, "
                f"{self.actual.get('io_operations', 0)} IO ops"
            )
        return "\n".join(lines)


def explain_maintenance(
    view: ViewDefinition,
    owners: Mapping[str, str],
    schemas: Mapping[str, Schema],
    updated_relation: str | None = None,
    config=None,
    actual: Mapping[str, int] | None = None,
) -> MaintenanceExplain:
    """Render the maintenance itinerary ``view`` runs for one update.

    ``owners`` maps each referenced relation to its source name (the
    itinerary is rotated so the updating source leads, exactly as
    :func:`~repro.qc.cost.plan_for_view` builds it).  A relation joins
    by index probe when some equijoin links one of its attributes to a
    column every delta row already binds — the same
    :func:`~repro.space.source.probe_pair` test the delta plane applies.
    """
    from repro.config import MaintenanceConfig
    from repro.qc.cost import cf_messages, plan_for_view
    from repro.space.source import probe_pair

    if config is None:
        config = MaintenanceConfig()
    resolved = ViewValidator(dict(schemas)).resolve_view(view)
    plan = plan_for_view(resolved, dict(owners), updated_relation)
    clauses = [item.clause for item in resolved.where]

    bound: set[str] = {
        f"{plan.updated_relation}.{attr}"
        for attr in schemas[plan.updated_relation].attribute_names
    }
    steps: list[MaintenanceStep] = []
    position = 0
    for group in plan.groups:
        for name in group.relations:
            if name == plan.updated_relation:
                continue
            position += 1
            schema = schemas[name]
            pair = None
            if config.use_index:
                for clause in clauses:
                    pair = probe_pair(clause, name, schema, frozenset(bound))
                    if pair is not None:
                        break
            steps.append(
                MaintenanceStep(
                    position=position,
                    source=group.source,
                    relation=name,
                    access=(
                        ACCESS_INDEX_PROBE if pair is not None else ACCESS_SCAN
                    ),
                    probe=(
                        f"{name}.{pair[0]} = {pair[1]}"
                        if pair is not None
                        else None
                    ),
                )
            )
            bound.update(
                f"{name}.{attr}" for attr in schema.attribute_names
            )

    return MaintenanceExplain(
        view=resolved.name,
        updated_relation=plan.updated_relation,
        representation=config.representation,
        use_index=config.use_index,
        sources=tuple(group.source for group in plan.groups),
        steps=tuple(steps),
        estimated={"messages": cf_messages(plan)},
        actual=dict(actual) if actual is not None else None,
    )
