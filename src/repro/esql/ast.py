"""Abstract syntax of E-SQL view definitions (Sec. 3.1, Fig. 2).

A view definition is::

    CREATE VIEW V (B_1, ..., B_m) (VE = ...) AS
    SELECT R.A (AD = ..., AR = ...), ...
    FROM   R (RD = ..., RR = ...), ...
    WHERE  C_1 (CD = ..., CR = ...) AND ...

The AST is immutable; the synchronizer derives rewritings through the
``with_*``/``dropping_*``/``replacing_*`` methods, which return new
definitions and keep the evolution flags of surviving components intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.errors import SchemaError
from repro.esql.params import AttributeCategory, EvolutionFlags, ViewExtent
from repro.relational.expressions import (
    AttributeRef,
    Condition,
    PrimitiveClause,
)


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-clause entry ``R.A (AD = ..., AR = ...)`` with local alias."""

    ref: AttributeRef
    flags: EvolutionFlags = field(default_factory=EvolutionFlags)
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """The attribute name this item contributes to the view interface."""
        return self.alias if self.alias is not None else self.ref.attribute

    @property
    def category(self) -> AttributeCategory:
        return self.flags.category

    def references(self, attribute: str, relation: str | None = None) -> bool:
        return self.ref.matches(attribute, relation)

    def with_replaced_source(
        self,
        new_relation: str,
        new_attribute: str | None = None,
    ) -> "SelectItem":
        """Item re-bound to a replacement relation/attribute.

        The output alias is pinned to the *original* output name so the view
        interface stays stable across replacements (the user keeps seeing
        the column they asked for, per Sec. 5.1's notion of preserving the
        view interface from other sources).
        """
        attribute = new_attribute or self.ref.attribute
        return SelectItem(
            AttributeRef(attribute, new_relation),
            self.flags,
            alias=self.output_name,
        )

    def __str__(self) -> str:
        rendered = str(self.ref)
        if self.alias is not None and self.alias != self.ref.attribute:
            rendered += f" AS {self.alias}"
        return rendered + self.flags.format("AD", "AR")


@dataclass(frozen=True)
class FromItem:
    """One FROM-clause entry ``R (RD = ..., RR = ...)``."""

    relation: str
    flags: EvolutionFlags = field(default_factory=EvolutionFlags)
    source: str | None = None  # owning information source, when known

    def __str__(self) -> str:
        return self.relation + self.flags.format("RD", "RR")

    def renamed(self, new_relation: str, source: str | None = None) -> "FromItem":
        return FromItem(new_relation, self.flags, source or self.source)


@dataclass(frozen=True)
class WhereItem:
    """One WHERE-clause conjunct ``C_i (CD = ..., CR = ...)``."""

    clause: PrimitiveClause
    flags: EvolutionFlags = field(default_factory=EvolutionFlags)

    def __str__(self) -> str:
        return f"({self.clause})" + self.flags.format("CD", "CR")

    def references(self, attribute: str, relation: str | None = None) -> bool:
        return self.clause.references(attribute, relation)

    def references_relation(self, relation: str) -> bool:
        return self.clause.references_relation(relation)

    def with_relation_replaced(
        self,
        old_relation: str,
        new_relation: str,
        attribute_map: Mapping[str, str] | None = None,
    ) -> "WhereItem":
        return WhereItem(
            self.clause.with_relation_replaced(
                old_relation, new_relation, attribute_map
            ),
            self.flags,
        )


class ViewDefinition:
    """A complete E-SQL view definition.

    Immutable.  Derivation methods return fresh definitions; they are the
    only sanctioned way the synchronizer edits a view.
    """

    __slots__ = ("name", "select", "from_", "where", "extent_parameter")

    def __init__(
        self,
        name: str,
        select: Iterable[SelectItem],
        from_: Iterable[FromItem],
        where: Iterable[WhereItem] = (),
        extent_parameter: ViewExtent = ViewExtent.ANY,
    ) -> None:
        self.name = name
        self.select: tuple[SelectItem, ...] = tuple(select)
        self.from_: tuple[FromItem, ...] = tuple(from_)
        self.where: tuple[WhereItem, ...] = tuple(where)
        self.extent_parameter = extent_parameter
        if not self.select:
            raise SchemaError(f"view {name!r} must select at least one attribute")
        if not self.from_:
            raise SchemaError(f"view {name!r} must reference at least one relation")
        seen_outputs: set[str] = set()
        for item in self.select:
            if item.output_name in seen_outputs:
                raise SchemaError(
                    f"duplicate output attribute {item.output_name!r} "
                    f"in view {name!r}"
                )
            seen_outputs.add(item.output_name)
        seen_relations: set[str] = set()
        for item in self.from_:
            if item.relation in seen_relations:
                raise SchemaError(
                    f"duplicate FROM relation {item.relation!r} in view {name!r}"
                )
            seen_relations.add(item.relation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def interface(self) -> tuple[str, ...]:
        """Output attribute names ``Attr(V)`` in SELECT order."""
        return tuple(item.output_name for item in self.select)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(item.relation for item in self.from_)

    def condition(self) -> Condition:
        """The WHERE conjunction as a single :class:`Condition`."""
        return Condition(item.clause for item in self.where)

    def select_item(self, output_name: str) -> SelectItem:
        for item in self.select:
            if item.output_name == output_name:
                return item
        raise SchemaError(
            f"view {self.name!r} has no output attribute {output_name!r}"
        )

    def from_item(self, relation: str) -> FromItem:
        for item in self.from_:
            if item.relation == relation:
                return item
        raise SchemaError(f"view {self.name!r} does not reference {relation!r}")

    def references_relation(self, relation: str) -> bool:
        return relation in self.relation_names

    def select_items_from(self, relation: str) -> tuple[SelectItem, ...]:
        """SELECT items whose source attribute lives in ``relation``."""
        return tuple(
            item for item in self.select if item.ref.relation == relation
        )

    def where_items_on(self, relation: str) -> tuple[WhereItem, ...]:
        """WHERE conjuncts mentioning ``relation``."""
        return tuple(
            item for item in self.where if item.references_relation(relation)
        )

    def categories(self) -> dict[AttributeCategory, tuple[SelectItem, ...]]:
        """SELECT items bucketed into the Fig. 6 categories."""
        buckets: dict[AttributeCategory, list[SelectItem]] = {
            category: [] for category in AttributeCategory
        }
        for item in self.select:
            buckets[item.category].append(item)
        return {category: tuple(items) for category, items in buckets.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewDefinition):
            return NotImplemented
        return (
            self.name == other.name
            and self.select == other.select
            and self.from_ == other.from_
            and self.where == other.where
            and self.extent_parameter == other.extent_parameter
        )

    def __hash__(self) -> int:
        return hash(
            (self.name, self.select, self.from_, self.where, self.extent_parameter)
        )

    def __repr__(self) -> str:
        return f"<ViewDefinition {self.name} {self.interface}>"

    # ------------------------------------------------------------------
    # Rewriting derivations (used by the synchronizer)
    # ------------------------------------------------------------------
    def renamed(self, new_name: str) -> "ViewDefinition":
        return ViewDefinition(
            new_name, self.select, self.from_, self.where, self.extent_parameter
        )

    def dropping_select_item(self, output_name: str) -> "ViewDefinition":
        """Definition without one SELECT item (must keep >= 1)."""
        survivors = [
            item for item in self.select if item.output_name != output_name
        ]
        if len(survivors) == len(self.select):
            raise SchemaError(
                f"view {self.name!r} has no output attribute {output_name!r}"
            )
        return ViewDefinition(
            self.name, survivors, self.from_, self.where, self.extent_parameter
        )

    def dropping_where_item(self, index: int) -> "ViewDefinition":
        """Definition without the index-th WHERE conjunct."""
        if not 0 <= index < len(self.where):
            raise SchemaError(
                f"view {self.name!r} has no WHERE conjunct #{index}"
            )
        survivors = [
            item for position, item in enumerate(self.where) if position != index
        ]
        return ViewDefinition(
            self.name, self.select, self.from_, survivors, self.extent_parameter
        )

    def dropping_relation(self, relation: str) -> "ViewDefinition":
        """Definition with a FROM relation and everything touching it removed.

        SELECT items sourced from the relation and WHERE conjuncts
        mentioning it disappear together — this is the SVS "drop" move.
        """
        select = [
            item for item in self.select if item.ref.relation != relation
        ]
        from_ = [item for item in self.from_ if item.relation != relation]
        where = [
            item for item in self.where if not item.references_relation(relation)
        ]
        if not from_:
            raise SchemaError(
                f"dropping {relation!r} would leave view {self.name!r} "
                "with no FROM relation"
            )
        if not select:
            raise SchemaError(
                f"dropping {relation!r} would leave view {self.name!r} "
                "with an empty interface"
            )
        return ViewDefinition(
            self.name, select, from_, where, self.extent_parameter
        )

    def replacing_relation(
        self,
        old_relation: str,
        new_relation: str,
        attribute_map: Mapping[str, str] | None = None,
        new_source: str | None = None,
    ) -> "ViewDefinition":
        """Definition with ``old_relation`` substituted by ``new_relation``.

        ``attribute_map`` translates attribute names (old -> new) when the
        replacement spells them differently; SELECT aliases keep the
        original interface names (CVS-style replacement, Sec. 3.3).
        """
        if new_relation in self.relation_names and new_relation != old_relation:
            raise SchemaError(
                f"cannot substitute {new_relation!r} into view {self.name!r}: "
                "relation already referenced"
            )
        select = []
        for item in self.select:
            if item.ref.relation == old_relation:
                mapped = (
                    attribute_map.get(item.ref.attribute, item.ref.attribute)
                    if attribute_map
                    else item.ref.attribute
                )
                select.append(item.with_replaced_source(new_relation, mapped))
            else:
                select.append(item)
        from_ = [
            item.renamed(new_relation, new_source)
            if item.relation == old_relation
            else item
            for item in self.from_
        ]
        where = [
            item.with_relation_replaced(old_relation, new_relation, attribute_map)
            for item in self.where
        ]
        return ViewDefinition(
            self.name, select, from_, where, self.extent_parameter
        )

    def replacing_attribute(
        self,
        old: AttributeRef,
        new: AttributeRef,
    ) -> "ViewDefinition":
        """Definition with one attribute reference substituted everywhere.

        Used when a single attribute is deleted but its relation survives:
        the replacement attribute (usually from another relation reachable
        via a join constraint) takes its place in SELECT and WHERE.
        """
        select = []
        for item in self.select:
            if item.ref == old:
                select.append(
                    SelectItem(new, item.flags, alias=item.output_name)
                )
            else:
                select.append(item)
        where = []
        for item in self.where:
            clause = item.clause
            if old in clause.attribute_refs:
                left = new if clause.left == old else clause.left
                right = new if clause.right == old else clause.right
                clause = PrimitiveClause(left, clause.comparator, right)
            where.append(WhereItem(clause, item.flags))
        return ViewDefinition(
            self.name, select, self.from_, where, self.extent_parameter
        )

    def adding_from_item(self, item: FromItem) -> "ViewDefinition":
        """Definition with an extra FROM relation (for join-path repairs)."""
        return ViewDefinition(
            self.name,
            self.select,
            (*self.from_, item),
            self.where,
            self.extent_parameter,
        )

    def adding_where_items(self, items: Iterable[WhereItem]) -> "ViewDefinition":
        return ViewDefinition(
            self.name,
            self.select,
            self.from_,
            (*self.where, *items),
            self.extent_parameter,
        )

    def with_extent_parameter(self, extent: ViewExtent) -> "ViewDefinition":
        return ViewDefinition(
            self.name, self.select, self.from_, self.where, extent
        )
