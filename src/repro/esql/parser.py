"""Recursive-descent parser for E-SQL view definitions.

Grammar (Fig. 2, rendered in ASCII)::

    view        := CREATE VIEW ident [params] AS
                   SELECT select_item ("," select_item)*
                   FROM   from_item   ("," from_item)*
                   [WHERE where_item (AND where_item)*]
    params      := "(" "VE" "=" (string | symbol) ")"
    select_item := attr_ref [AS ident] [flag_list]
    from_item   := ident [flag_list]
    where_item  := ["("] clause [")"] [flag_list]
    clause      := operand comparator operand
    operand     := attr_ref | number | string
    attr_ref    := ident ["." ident]
    flag_list   := "(" flag ("," flag)* ")"
    flag        := (AD|AR|CD|CR|RD|RR) "=" (TRUE|FALSE)

The VE symbol accepts the ASCII spellings of Fig. 3's symbols:
``'~'`` (any), ``'='`` (equal), ``'>='`` (superset), ``'<='`` (subset),
or the words ``any``/``equal``/``superset``/``subset``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ParseError
from repro.esql.ast import FromItem, SelectItem, ViewDefinition, WhereItem
from repro.esql.lexer import Token, TokenKind, tokenize
from repro.esql.params import EvolutionFlags, ViewExtent
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Constant,
    PrimitiveClause,
)

_COMPARATOR_SYMBOLS = ("<", "<=", "=", ">=", ">", "<>")


class _Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        return ParseError(
            f"{message}, found {token}", token.line, token.column
        )

    def _expect_keyword(self, name: str) -> Token:
        if not self._current.is_keyword(name):
            raise self._error(f"expected {name}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_ident(self, what: str) -> Token:
        if self._current.kind is not TokenKind.IDENT:
            raise self._error(f"expected {what}")
        return self._advance()

    # ------------------------------------------------------------------
    # Grammar productions
    # ------------------------------------------------------------------
    def parse_view(self) -> ViewDefinition:
        self._expect_keyword("CREATE")
        self._expect_keyword("VIEW")
        name = self._expect_ident("view name").text
        extent = self._parse_optional_ve()
        self._expect_keyword("AS")
        self._expect_keyword("SELECT")
        select = [self._parse_select_item()]
        while self._current.is_symbol(","):
            self._advance()
            select.append(self._parse_select_item())
        self._expect_keyword("FROM")
        from_ = [self._parse_from_item()]
        while self._current.is_symbol(","):
            self._advance()
            from_.append(self._parse_from_item())
        where: list[WhereItem] = []
        if self._current.is_keyword("WHERE"):
            self._advance()
            where.append(self._parse_where_item())
            while self._current.is_keyword("AND"):
                self._advance()
                where.append(self._parse_where_item())
        if self._current.kind is not TokenKind.EOF:
            raise self._error("unexpected trailing input")
        return ViewDefinition(name, select, from_, where, extent)

    def _parse_optional_ve(self) -> ViewExtent:
        if not self._current.is_symbol("("):
            return ViewExtent.ANY
        self._advance()
        self._expect_keyword("VE")
        self._expect_symbol("=")
        token = self._advance()
        if token.kind is TokenKind.STRING or token.kind is TokenKind.IDENT:
            symbol = token.text
        elif token.kind is TokenKind.SYMBOL and token.text in ("=", "<=", ">="):
            symbol = token.text
        else:
            raise ParseError(
                f"expected view-extent symbol, found {token}",
                token.line,
                token.column,
            )
        self._expect_symbol(")")
        try:
            return ViewExtent.from_symbol(symbol)
        except ValueError as exc:
            raise ParseError(str(exc), token.line, token.column) from None

    def _parse_attr_ref(self) -> AttributeRef:
        first = self._expect_ident("attribute reference").text
        if self._current.is_symbol("."):
            self._advance()
            second = self._expect_ident("attribute name").text
            return AttributeRef(second, relation=first)
        return AttributeRef(first)

    def _parse_select_item(self) -> SelectItem:
        ref = self._parse_attr_ref()
        alias: str | None = None
        if self._current.is_keyword("AS"):
            self._advance()
            alias = self._expect_ident("alias").text
        flags = self._parse_optional_flags({"AD", "AR"})
        return SelectItem(ref, flags, alias)

    def _parse_from_item(self) -> FromItem:
        name = self._expect_ident("relation name").text
        flags = self._parse_optional_flags({"RD", "RR"})
        return FromItem(name, flags)

    def _parse_operand(self) -> AttributeRef | Constant:
        token = self._current
        if token.kind is TokenKind.IDENT:
            return self._parse_attr_ref()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            value: Any = float(token.text) if "." in token.text else int(token.text)
            return Constant(value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return Constant(token.text)
        if token.is_keyword("TRUE", "FALSE"):
            self._advance()
            return Constant(token.text == "TRUE")
        raise self._error("expected attribute reference or literal")

    def _parse_clause(self) -> PrimitiveClause:
        left = self._parse_operand()
        token = self._current
        if not token.is_symbol(*_COMPARATOR_SYMBOLS):
            raise self._error("expected comparator")
        self._advance()
        right = self._parse_operand()
        return PrimitiveClause(left, Comparator.from_symbol(token.text), right)

    def _parse_where_item(self) -> WhereItem:
        parenthesized = False
        if self._current.is_symbol("("):
            self._advance()
            parenthesized = True
        clause = self._parse_clause()
        if parenthesized:
            self._expect_symbol(")")
        flags = self._parse_optional_flags({"CD", "CR"})
        return WhereItem(clause, flags)

    def _parse_optional_flags(self, allowed: set[str]) -> EvolutionFlags:
        """Parse ``(XD = true, XR = false)``; absent list means defaults.

        A ``(`` not followed by a flag keyword is left untouched so WHERE
        parenthesization does not get swallowed.
        """
        if not self._current.is_symbol("("):
            return EvolutionFlags()
        if not self._peek().is_keyword(*allowed):
            return EvolutionFlags()
        self._advance()  # "("
        dispensable, replaceable = False, False
        while True:
            key = self._advance()
            if not key.is_keyword(*allowed):
                raise ParseError(
                    f"unexpected evolution parameter {key} "
                    f"(expected one of {sorted(allowed)})",
                    key.line,
                    key.column,
                )
            self._expect_symbol("=")
            value = self._advance()
            if not value.is_keyword("TRUE", "FALSE"):
                raise ParseError(
                    f"expected true/false, found {value}", value.line, value.column
                )
            flag = value.text == "TRUE"
            if key.text.endswith("D"):
                dispensable = flag
            else:
                replaceable = flag
            if self._current.is_symbol(","):
                self._advance()
                continue
            break
        self._expect_symbol(")")
        return EvolutionFlags(dispensable, replaceable)


def parse_view(text: str) -> ViewDefinition:
    """Parse one E-SQL ``CREATE VIEW`` statement into a :class:`ViewDefinition`."""
    return _Parser(tokenize(text)).parse_view()


def parse_condition_clause(text: str) -> PrimitiveClause:
    """Parse a standalone primitive clause (handy for MISD constraints)."""
    parser = _Parser(tokenize(text))
    clause = parser._parse_clause()
    if parser._current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input after clause")
    return clause
