"""Pretty-printer: :class:`ViewDefinition` back to E-SQL text.

``parse_view(format_view(v)) == v`` holds for every definition the parser
can produce (round-trip property, enforced by the property-based tests).
"""

from __future__ import annotations

from repro.esql.ast import ViewDefinition


def format_view(view: ViewDefinition, indent: str = "    ") -> str:
    """Render a view definition as a canonical E-SQL statement."""
    lines = [f"CREATE VIEW {view.name} (VE = '{view.extent_parameter}') AS"]
    select_rendered = ",\n".join(
        f"{indent}{indent}{item}" if position else f"{indent}SELECT {item}"
        for position, item in enumerate(view.select)
    )
    lines.append(select_rendered)
    from_rendered = ",\n".join(
        f"{indent}{indent}{item}" if position else f"{indent}FROM {item}"
        for position, item in enumerate(view.from_)
    )
    lines.append(from_rendered)
    if view.where:
        where_rendered = "\n".join(
            f"{indent}{indent}AND {item}" if position else f"{indent}WHERE {item}"
            for position, item in enumerate(view.where)
        )
        lines.append(where_rendered)
    return "\n".join(lines)


def format_view_compact(view: ViewDefinition) -> str:
    """One-line rendering for logs and report tables."""
    parts = [f"CREATE VIEW {view.name} (VE = '{view.extent_parameter}') AS SELECT "]
    parts.append(", ".join(str(item) for item in view.select))
    parts.append(" FROM ")
    parts.append(", ".join(str(item) for item in view.from_))
    if view.where:
        parts.append(" WHERE ")
        parts.append(" AND ".join(str(item) for item in view.where))
    return "".join(parts)
