"""E-SQL: SQL extended with view-evolution preferences (Sec. 3.1).

Public surface:

* :class:`ViewDefinition`, :class:`SelectItem`, :class:`FromItem`,
  :class:`WhereItem` — the AST
* :class:`EvolutionFlags`, :class:`ViewExtent`, :class:`AttributeCategory`
  — evolution parameters (Figs. 3, 6)
* :func:`parse_view` / :func:`format_view` — text <-> AST
* :class:`ViewValidator` — semantic checks + name resolution
* :func:`evaluate_view` — materialize a view extent
"""

from repro.esql.ast import FromItem, SelectItem, ViewDefinition, WhereItem
from repro.esql.evaluator import evaluate_view, evaluate_views
from repro.esql.params import (
    DISPENSABLE_ONLY,
    RELAXED,
    REPLACEABLE_ONLY,
    STRICT,
    AttributeCategory,
    EvolutionFlags,
    ViewExtent,
)
from repro.esql.parser import parse_condition_clause, parse_view
from repro.esql.printer import format_view, format_view_compact
from repro.esql.validate import ViewValidator

__all__ = [
    "AttributeCategory",
    "DISPENSABLE_ONLY",
    "EvolutionFlags",
    "FromItem",
    "RELAXED",
    "REPLACEABLE_ONLY",
    "STRICT",
    "SelectItem",
    "ViewDefinition",
    "ViewExtent",
    "ViewValidator",
    "WhereItem",
    "evaluate_view",
    "evaluate_views",
    "format_view",
    "format_view_compact",
    "parse_condition_clause",
    "parse_view",
]
