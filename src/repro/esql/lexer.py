"""Tokenizer for E-SQL text.

E-SQL is SQL's SELECT-FROM-WHERE fragment plus parenthesized evolution
parameter lists (Fig. 2).  The lexer produces a flat token stream with
line/column positions for error reporting; keywords are case-insensitive,
identifiers keep their case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "CREATE", "VIEW", "AS", "SELECT", "FROM", "WHERE", "AND",
        "TRUE", "FALSE", "VE", "AD", "AR", "CD", "CR", "RD", "RR",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "==", "(", ")", ",", ".", "<", ">", "=")


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text in symbols

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<end of input>"
        return self.text


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on bad characters."""
    tokens: list[Token] = []
    line, column = 1, 1
    index, length = 0, len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", index):  # line comment
            while index < length and text[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char.isdigit() or (
            char in "+-"
            and index + 1 < length
            and text[index + 1].isdigit()
        ):
            end = index + 1
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                # "R.A" style dots follow identifiers, never digits-only
                if text[end] == ".":
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            lexeme = text[index:end]
            advance(end - index)
            tokens.append(Token(TokenKind.NUMBER, lexeme, start_line, start_column))
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            lexeme = text[index:end]
            advance(end - index)
            kind = (
                TokenKind.KEYWORD
                if lexeme.upper() in KEYWORDS
                else TokenKind.IDENT
            )
            canonical = lexeme.upper() if kind is TokenKind.KEYWORD else lexeme
            tokens.append(Token(kind, canonical, start_line, start_column))
            continue
        if char in "'\"":
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                end += 1
            if end >= length:
                raise ParseError("unterminated string literal", start_line, start_column)
            lexeme = text[index + 1 : end]
            advance(end - index + 1)
            tokens.append(Token(TokenKind.STRING, lexeme, start_line, start_column))
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                advance(len(symbol))
                canonical = "=" if symbol == "==" else symbol
                tokens.append(
                    Token(TokenKind.SYMBOL, canonical, start_line, start_column)
                )
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
