"""Materialize a view: execute its query over concrete relations.

The evaluator computes ``Ext(V)`` — the extent the view would return on the
current information space.  It is the ground truth the quality model's
*exact* path compares against (vs. the statistics-only estimation path the
paper uses, Sec. 5.4.3).

Execution strategy: left-to-right nested-loop join over the FROM list with
eager clause application — each WHERE conjunct fires as soon as every
relation it references has been bound, so selections prune before later
joins multiply.  Bag semantics throughout; callers wanting set semantics
call ``.distinct()`` on the result.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.errors import EvaluationError
from repro.esql.ast import ViewDefinition
from repro.esql.validate import ViewValidator
from repro.relational.expressions import PrimitiveClause
from repro.relational.relation import Relation
from repro.relational.schema import Schema

RelationLookup = Callable[[str], Relation]


def _lookup_from(source: Mapping[str, Relation] | RelationLookup) -> RelationLookup:
    if callable(source):
        return source

    def lookup(name: str) -> Relation:
        try:
            return source[name]
        except KeyError:
            raise EvaluationError(f"relation {name!r} not available") from None

    return lookup


def evaluate_view(
    view: ViewDefinition,
    relations: Mapping[str, Relation] | RelationLookup,
) -> Relation:
    """Compute the extent of ``view`` against the given relations.

    ``view`` must reference attributes unambiguously; it is resolved against
    the actual schemas first, so unqualified references are fine as long as
    they are unique.
    """
    lookup = _lookup_from(relations)
    schemas = {name: lookup(name).schema for name in view.relation_names}
    resolved = ViewValidator(schemas).resolve_view(view)

    # Schedule each clause at the first FROM position where it is decidable.
    order = list(resolved.relation_names)
    bound_at: dict[int, list[PrimitiveClause]] = {i: [] for i in range(len(order))}
    for item in resolved.where:
        needed = item.clause.relations()
        position = max(
            (order.index(name) for name in needed if name in order), default=0
        )
        bound_at[position].append(item.clause)

    bindings: list[dict[str, Any]] = [{}]
    for position, relation_name in enumerate(order):
        relation = lookup(relation_name)
        clauses = bound_at[position]
        keys = [
            f"{relation_name}.{name}"
            for name in relation.schema.attribute_names
        ]
        # Hash fast path: equijoin clauses linking a new attribute to an
        # already-bound one index the relation once instead of scanning it
        # per binding.  Remaining clauses still filter row by row.
        probe_pairs, residual = _split_equijoins(
            clauses, relation_name, set(keys)
        )
        extended: list[dict[str, Any]] = []
        if probe_pairs and bindings:
            index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
            new_positions = [
                relation.schema.position(new.attribute)
                for new, _ in probe_pairs
            ]
            for row in relation:
                hash_key = tuple(row[p] for p in new_positions)
                index.setdefault(hash_key, []).append(row)
            for binding in bindings:
                probe = tuple(
                    binding[bound.qualified] for _, bound in probe_pairs
                )
                if None in probe:
                    continue
                for row in index.get(probe, ()):
                    candidate = dict(binding)
                    candidate.update(zip(keys, row))
                    if all(_eval_qualified(c, candidate) for c in residual):
                        extended.append(candidate)
        else:
            for binding in bindings:
                for row in relation:
                    candidate = dict(binding)
                    candidate.update(zip(keys, row))
                    if all(_eval_qualified(c, candidate) for c in clauses):
                        extended.append(candidate)
        bindings = extended
        if not bindings:
            break

    output_schema = _output_schema(resolved, schemas)
    keys = [str(item.ref) for item in resolved.select]
    rows = [tuple(binding[key] for key in keys) for binding in bindings]
    return Relation(output_schema, rows)


def _eval_qualified(clause: PrimitiveClause, binding: Mapping[str, Any]) -> bool:
    """Evaluate a fully qualified clause against a qualified-name binding."""
    return clause.evaluate(binding)


def _split_equijoins(
    clauses: list[PrimitiveClause],
    relation_name: str,
    new_keys: set[str],
) -> tuple[list, list[PrimitiveClause]]:
    """Split clauses into hash-joinable pairs and residual filters.

    A clause is hash-joinable at this position when it is an equijoin
    between one attribute of the relation being added and one attribute
    bound by an earlier relation.  Returns ``([(new_ref, bound_ref)...],
    residual_clauses)``.
    """
    from repro.relational.expressions import AttributeRef, Comparator

    pairs = []
    residual: list[PrimitiveClause] = []
    for clause in clauses:
        if (
            clause.comparator is Comparator.EQ
            and isinstance(clause.left, AttributeRef)
            and isinstance(clause.right, AttributeRef)
        ):
            left_new = clause.left.qualified in new_keys
            right_new = clause.right.qualified in new_keys
            if left_new and not right_new:
                pairs.append((clause.left, clause.right))
                continue
            if right_new and not left_new:
                pairs.append((clause.right, clause.left))
                continue
        residual.append(clause)
    return pairs, residual


def _output_schema(
    resolved: ViewDefinition, schemas: Mapping[str, Schema]
) -> Schema:
    attributes = []
    for item in resolved.select:
        assert item.ref.relation is not None
        source = schemas[item.ref.relation].attribute(item.ref.attribute)
        attributes.append(source.renamed(item.output_name))
    return Schema(resolved.name, attributes)


def evaluate_views(
    views: Iterable[ViewDefinition],
    relations: Mapping[str, Relation] | RelationLookup,
) -> dict[str, Relation]:
    """Materialize several views; returns name -> extent."""
    return {view.name: evaluate_view(view, relations) for view in views}
