"""Materialize a view: execute its query over concrete relations.

The evaluator computes ``Ext(V)`` — the extent the view would return on the
current information space.  It is the ground truth the quality model's
*exact* path compares against (vs. the statistics-only estimation path the
paper uses, Sec. 5.4.3).

Three execution planes share the entry point:

* ``engine="indexed"`` (default) — bindings are positional tuples, WHERE
  conjuncts are compiled once into tuple closures
  (:mod:`repro.relational.compile`), equijoin conjuncts probe the
  relations' own hash indexes (:mod:`repro.relational.index`), and the
  join order is chosen greedily by cardinality (``SpaceStatistics`` when
  supplied, actual extents otherwise) rather than taken literally from the
  FROM list.  Only view-referenced columns (SELECT list + WHERE operands)
  are projected through the join, so wide relations never materialize
  unreferenced attributes into intermediate bindings.
* ``representation="columnar"`` (on the indexed engine) — the same join
  order and probe split, executed column at a time: relations expose
  per-attribute column stores, WHERE conjuncts run as selection-vector
  kernels, and equijoins are vectorized hash probes over key columns
  producing position vectors.  Candidate order, NULL semantics, and
  lazy failure match the tuple plane row for row.
* ``engine="naive"`` — the original left-to-right nested-loop engine over
  dict bindings with qualified-name keys; kept as the reference the
  equivalence property tests and the engine benchmarks compare against.

All planes apply each WHERE conjunct as soon as every relation it
references has been bound, so selections prune before later joins
multiply.  Bag semantics throughout; callers wanting set semantics call
``.distinct()`` on the result.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.errors import EvaluationError
from repro.esql.ast import ViewDefinition
from repro.esql.validate import ViewValidator
from repro.misd.statistics import DEFAULT_SELECTIVITY, SpaceStatistics
from repro.relational.columnar import probe_positions
from repro.relational.compile import (
    compile_clauses,
    compile_clauses_kernel,
    schema_slots,
)
from repro.relational.expressions import AttributeRef, Comparator, PrimitiveClause
from repro.relational.relation import Relation
from repro.relational.schema import Schema

RelationLookup = Callable[[str], Relation]


def _lookup_from(source: Mapping[str, Relation] | RelationLookup) -> RelationLookup:
    if callable(source):
        return source

    def lookup(name: str) -> Relation:
        try:
            return source[name]
        except KeyError:
            raise EvaluationError(f"relation {name!r} not available") from None

    return lookup


def evaluate_view(
    view: ViewDefinition,
    relations: Mapping[str, Relation] | RelationLookup,
    statistics: SpaceStatistics | None = None,
    config: "EngineConfig | None" = None,
    kernel_counters=None,
    trace: list | None = None,
) -> Relation:
    """Compute the extent of ``view`` against the given relations.

    ``view`` must reference attributes unambiguously; it is resolved against
    the actual schemas first, so unqualified references are fine as long as
    they are unique.  ``statistics`` (optional) feeds the greedy join-order
    choice of the indexed engine; relations it does not cover fall back to
    their actual cardinality.

    The engine is selected by ``config`` (an
    :class:`~repro.config.EngineConfig` slice): ``engine="indexed"``
    with ``use_index=True`` probes hash indexes, ``use_index=False``
    keeps the compiled plane but joins by nested loops,
    ``representation="columnar"`` runs the column-kernel plane, and
    ``engine="naive"`` runs the dict-binding reference.

    ``kernel_counters`` (a
    :class:`~repro.relational.columnar.KernelCounters`) accumulates rows
    scanned vs rows selected per column kernel; only the columnar plane
    records into it.

    ``trace`` (a list, optional) receives one ``(relation_name,
    candidate_count)`` pair per executed FROM step, in join order —
    the hook :func:`repro.esql.explain.explain_view` uses to reconcile
    estimated vs actual cardinalities.  Steps skipped after an empty
    intermediate result are not recorded.

    With ``config.optimize`` set, the guard-railed transform pass
    (:class:`~repro.sync.optimizer.PlanOptimizer`) runs first and its
    applied hints — local-condition pushdown at probe steps, semi-join
    existence probes — reshape the plan; extents are bag-identical
    either way.
    """
    from repro.config import EngineConfig

    if config is None:
        config = EngineConfig()
    if config.engine == "naive":
        return _evaluate_view_naive(view, relations, trace)
    lookup = _lookup_from(relations)
    schemas = {name: lookup(name).schema for name in view.relation_names}
    resolved = ViewValidator(schemas).resolve_view(view)
    hints = None
    if getattr(config, "optimize", False):
        from repro.sync.optimizer import PlanOptimizer

        hints, _ = PlanOptimizer(statistics).optimize(
            resolved, lookup, config, schemas=schemas
        )
        if hints.empty:
            hints = None
    if config.representation == "columnar":
        return _evaluate_view_columnar(
            resolved,
            lookup,
            schemas,
            statistics,
            config.use_index,
            kernel_counters,
            hints,
            trace,
        )

    order = _join_order(resolved, lookup, statistics)
    needed = _referenced_columns(resolved)

    slots: dict[str, int] = {}
    placed: set[str] = set()
    remaining: list[PrimitiveClause] = [item.clause for item in resolved.where]
    bindings: list[tuple[Any, ...]] = [()]

    for relation_name in order:
        relation = lookup(relation_name)
        schema = relation.schema
        # Projection pushdown: only view-referenced attributes enter the
        # binding tuples; unreferenced columns of wide relations are never
        # copied through the join.
        kept = [
            attr
            for attr in schema.attribute_names
            if f"{relation_name}.{attr}" in needed
        ]
        project = (
            None
            if len(kept) == schema.arity
            else tuple(schema.position(attr) for attr in kept)
        )
        base = len(slots)
        for offset, attr in enumerate(kept):
            slots[f"{relation_name}.{attr}"] = base + offset
        placed.add(relation_name)

        decidable = [c for c in remaining if c.relations() <= placed]
        remaining = [c for c in remaining if c.relations() - placed]
        if config.use_index:
            probe_pairs, residual = _split_probes(
                decidable, relation_name, slots, base
            )
        else:
            # Index probes disabled: every decidable clause stays a
            # compiled filter and the join runs as nested loops below.
            probe_pairs, residual = [], decidable

        extended: list[tuple[Any, ...]] = []
        if probe_pairs and bindings:
            # Index keys are full-row schema positions: indexes are shared
            # with every other caller and probe() yields full rows.
            new_positions = tuple(
                schema.position(new.attribute) for new, _ in probe_pairs
            )
            bound_slots = tuple(slots[bound.qualified] for _, bound in probe_pairs)
            index = relation.index_on_positions(new_positions)
            # Optimizer hints (config.optimize): local conditions pushed
            # ahead of candidate construction, evaluated on the probed
            # row alone; and provably-semi steps (nothing kept, nothing
            # residual, unique probe key) as existence probes.  Both are
            # re-checked structurally here so a stale hint is ignored.
            prefilter = None
            if hints is not None:
                pushed = hints.pushdown.get(relation_name, ())
                if pushed:
                    pushed_set = set(pushed)
                    residual = [
                        c for c in residual if c not in pushed_set
                    ]
                    prefilter = compile_clauses(
                        list(pushed),
                        {
                            f"{relation_name}.{attr}": position
                            for position, attr in enumerate(
                                schema.attribute_names
                            )
                        },
                    )
            check = compile_clauses(residual, slots)
            if (
                hints is not None
                and relation_name in hints.semi
                and relation_name == order[-1]
                and not residual
                and prefilter is None
                and all(
                    item.ref.relation != relation_name
                    for item in resolved.select
                )
            ):
                # Semi join on a unique key at the final step: each probe
                # matches at most one row, and since the relation feeds
                # neither the SELECT list nor any later clause (it is
                # last, residual is empty), its slots are dead weight —
                # surviving bindings pass through unextended,
                # bag-identical to the general loop, without
                # constructing candidates.
                for binding in bindings:
                    key = tuple(binding[s] for s in bound_slots)
                    if index.probe(key):
                        extended.append(binding)
            else:
                for binding in bindings:
                    key = tuple(binding[s] for s in bound_slots)
                    for row in index.probe(key):
                        if prefilter is not None and not prefilter(row):
                            continue
                        candidate = binding + (
                            row
                            if project is None
                            else tuple(row[p] for p in project)
                        )
                        if check(candidate):
                            extended.append(candidate)
        else:
            # Clauses over this relation alone prune its rows once, not
            # once per binding; cross-relation residuals run per candidate.
            local = [c for c in residual if c.relations() <= {relation_name}]
            cross = [c for c in residual if c.relations() - {relation_name}]
            local_slots = {
                f"{relation_name}.{attr}": position
                for position, attr in enumerate(schema.attribute_names)
            }
            local_check = compile_clauses(local, local_slots)
            rows = [row for row in relation if local_check(row)]
            if project is not None:
                rows = [tuple(row[p] for p in project) for row in rows]
            check = compile_clauses(cross, slots)
            for binding in bindings:
                for row in rows:
                    candidate = binding + row
                    if check(candidate):
                        extended.append(candidate)
        bindings = extended
        if trace is not None:
            trace.append((relation_name, len(bindings)))
        if not bindings:
            break

    output_schema = _output_schema(resolved, schemas)
    if not bindings:
        return Relation(output_schema)
    out_slots = [slots[str(item.ref)] for item in resolved.select]
    rows = [tuple(binding[s] for s in out_slots) for binding in bindings]
    # Every value came out of a validated relation; adopt without a
    # second validation pass.
    return Relation.from_validated(output_schema, rows)


def _join_order(
    view: ViewDefinition,
    lookup: RelationLookup,
    statistics: SpaceStatistics | None,
) -> list[str]:
    """Greedy selectivity-weighted cardinality order: the relation with
    the smallest *estimated surviving size* first, then always the
    cheapest relation that an equijoin connects to the bound set (hash
    probes beat cartesian growth); unconnected relations only when
    nothing else is left.  The estimate folds local-condition
    selectivity into the cardinality — each single-relation WHERE
    conjunct scales the relation by its sigma (``SpaceStatistics`` when
    supplied, the paper's default sigma otherwise), so a large-but-
    heavily-filtered relation can lead the join.  Ties keep FROM order,
    so single-relation views and equal-estimate inputs behave exactly
    as written."""
    names = list(view.relation_names)
    if len(names) <= 1:
        return names

    def cardinality(name: str) -> int:
        if statistics is not None and name in statistics.relations:
            return statistics.cardinality(name)
        return lookup(name).cardinality

    local_clauses: dict[str, int] = {}
    for item in view.where:
        relations = item.clause.relations()
        if len(relations) == 1 and not item.clause.is_equijoin:
            name = next(iter(relations))
            local_clauses[name] = local_clauses.get(name, 0) + 1

    def selectivity(name: str) -> float:
        if statistics is not None and name in statistics.relations:
            return statistics.selectivity(name)
        return DEFAULT_SELECTIVITY

    def estimated_size(name: str) -> float:
        size = float(cardinality(name))
        clauses = local_clauses.get(name, 0)
        if clauses:
            size *= selectivity(name) ** clauses
        return size

    equijoins = [
        item.clause
        for item in view.where
        if item.clause.is_equijoin
    ]

    def connected(name: str, placed: set[str]) -> bool:
        for clause in equijoins:
            involved = clause.relations()
            if name in involved and involved - {name} <= placed and len(involved) > 1:
                return True
        return False

    order = [min(names, key=lambda n: (estimated_size(n), names.index(n)))]
    placed = set(order)
    pending = [n for n in names if n not in placed]
    while pending:
        linked = [n for n in pending if connected(n, placed)]
        pool = linked if linked else pending
        choice = min(pool, key=lambda n: (estimated_size(n), names.index(n)))
        order.append(choice)
        placed.add(choice)
        pending.remove(choice)
    return order


def _split_probes(
    clauses: list[PrimitiveClause],
    relation_name: str,
    slots: Mapping[str, int],
    base: int,
) -> tuple[list[tuple[AttributeRef, AttributeRef]], list[PrimitiveClause]]:
    """Split clauses into index-probe pairs and residual filters.

    A clause probes when it is an equijoin between one attribute of the
    relation just added (slot >= ``base``) and one attribute bound earlier.
    Returns ``([(new_ref, bound_ref), ...], residual_clauses)``.
    """
    pairs: list[tuple[AttributeRef, AttributeRef]] = []
    residual: list[PrimitiveClause] = []
    for clause in clauses:
        if (
            clause.comparator is Comparator.EQ
            and isinstance(clause.left, AttributeRef)
            and isinstance(clause.right, AttributeRef)
        ):
            left_slot = slots.get(clause.left.qualified)
            right_slot = slots.get(clause.right.qualified)
            if left_slot is not None and right_slot is not None:
                left_new = left_slot >= base
                right_new = right_slot >= base
                if left_new and not right_new:
                    pairs.append((clause.left, clause.right))
                    continue
                if right_new and not left_new:
                    pairs.append((clause.right, clause.left))
                    continue
        residual.append(clause)
    return pairs, residual


def _referenced_columns(resolved: ViewDefinition) -> frozenset[str]:
    """Qualified columns the view actually reads: SELECT list + WHERE
    operands.  Everything else is dead weight in intermediate bindings."""
    needed = {str(item.ref) for item in resolved.select}
    for item in resolved.where:
        for operand in (item.clause.left, item.clause.right):
            if isinstance(operand, AttributeRef):
                needed.add(operand.qualified)
    return frozenset(needed)


# ----------------------------------------------------------------------
# The columnar plane: selection vectors + vectorized hash probes
# ----------------------------------------------------------------------
def _evaluate_view_columnar(
    resolved: ViewDefinition,
    lookup: RelationLookup,
    schemas: Mapping[str, Schema],
    statistics: SpaceStatistics | None,
    use_index: bool,
    counters,
    hints=None,
    trace: list | None = None,
) -> Relation:
    """Column-at-a-time execution of the indexed plan.

    The join order, probe split, and clause scheduling are identical to
    the tuple plane; only the mechanics differ.  Intermediate state is a
    list of equal-length columns (one per referenced attribute placed so
    far) instead of a list of binding tuples.  Each FROM step computes
    ``(left, right)`` position vectors — incoming candidate x matching
    relation row — by vectorized probe or cross product, narrows them
    through residual kernels, and gathers the surviving columns.
    Candidate order matches the tuple plane exactly: incoming-major,
    relation insertion order within.
    """
    order = _join_order(resolved, lookup, statistics)
    needed = _referenced_columns(resolved)

    slots: dict[str, int] = {}
    placed: set[str] = set()
    remaining: list[PrimitiveClause] = [item.clause for item in resolved.where]
    cols: list[list] = []
    count = 1  # one virtual empty candidate, like ``bindings = [()]``

    for relation_name in order:
        relation = lookup(relation_name)
        schema = relation.schema
        store = relation.column_store()
        kept = [
            attr
            for attr in schema.attribute_names
            if f"{relation_name}.{attr}" in needed
        ]
        kept_positions = [schema.position(attr) for attr in kept]
        base = len(slots)
        for offset, attr in enumerate(kept):
            slots[f"{relation_name}.{attr}"] = base + offset
        placed.add(relation_name)

        decidable = [c for c in remaining if c.relations() <= placed]
        remaining = [c for c in remaining if c.relations() - placed]
        if use_index:
            probe_pairs, residual = _split_probes(
                decidable, relation_name, slots, base
            )
        else:
            probe_pairs, residual = [], decidable

        if probe_pairs:
            positions = tuple(
                schema.position(new.attribute) for new, _ in probe_pairs
            )
            index = store.position_index(positions)
            key_columns = [
                cols[slots[bound.qualified]] for _, bound in probe_pairs
            ]
            unique = store.index_is_unique(positions)
            li, ri = probe_positions(key_columns, index, counters, unique)
            identity = unique and len(li) == count
            if hints is not None and li:
                # Pushed local conditions: filter probed rows against the
                # relation's own columns before any incoming column is
                # gathered for the residual conjunction.
                pushed = hints.pushdown.get(relation_name, ())
                if pushed:
                    pushed_set = set(pushed)
                    residual = [
                        c for c in residual if c not in pushed_set
                    ]
                    local_filter = compile_clauses_kernel(
                        list(pushed), schema_slots(schema)
                    )
                    local_layout: list = [None] * schema.arity
                    for slot in local_filter.slots:
                        column = store.columns[slot]
                        local_layout[slot] = list(
                            map(column.__getitem__, ri)
                        )
                    selection = local_filter(
                        local_layout, range(len(ri)), counters
                    )
                    if len(selection) != len(li):
                        li = [li[s] for s in selection]
                        ri = [ri[s] for s in selection]
                        identity = False
        else:
            # Local clauses prune the relation once; the surviving rows
            # cross every incoming candidate (candidate-major order).
            local = [c for c in residual if c.relations() <= {relation_name}]
            residual = [c for c in residual if c.relations() - {relation_name}]
            local_filter = compile_clauses_kernel(local, schema_slots(schema))
            selection = local_filter(
                store.columns, range(store.length), counters
            )
            if count == 1:
                li = [0] * len(selection)
                ri = list(selection)
            else:
                li = [i for i in range(count) for _ in selection]
                ri = list(selection) * count
            identity = False

        if residual and li:
            residual_filter = compile_clauses_kernel(residual, slots)
            # Materialize only the columns the residual conjunction reads;
            # the rest stay position vectors until the final gather.
            layout: list = [None] * (base + len(kept))
            for slot in residual_filter.slots:
                if slot >= base:
                    column = store.columns[kept_positions[slot - base]]
                    layout[slot] = list(map(column.__getitem__, ri))
                else:
                    column = cols[slot]
                    layout[slot] = list(map(column.__getitem__, li))
            selection = residual_filter(layout, range(len(li)), counters)
            if len(selection) != len(li):
                li = [li[s] for s in selection]
                ri = [ri[s] for s in selection]

        if not li:
            count = 0
            if trace is not None:
                trace.append((relation_name, 0))
            break
        if not cols:
            new_cols = []
        elif len(li) == count and (identity or li == list(range(count))):
            # 1:1 match in incoming order (unique-key probes): the bound
            # columns survive unchanged — skip the re-gather entirely.
            new_cols = cols
        else:
            new_cols = [list(map(column.__getitem__, li)) for column in cols]
        for position in kept_positions:
            column = store.columns[position]
            new_cols.append(list(map(column.__getitem__, ri)))
        cols = new_cols
        count = len(li)
        if trace is not None:
            trace.append((relation_name, count))

    output_schema = _output_schema(resolved, schemas)
    if not count:
        return Relation(output_schema)
    out_cols = [cols[slots[str(item.ref)]] for item in resolved.select]
    rows = list(zip(*out_cols))
    return Relation.from_validated(output_schema, rows)


# ----------------------------------------------------------------------
# The original dict-binding nested-loop engine (reference implementation)
# ----------------------------------------------------------------------
def _evaluate_view_naive(
    view: ViewDefinition,
    relations: Mapping[str, Relation] | RelationLookup,
    trace: list | None = None,
) -> Relation:
    """The pre-index engine, byte for byte: left-to-right nested loops over
    dict bindings with a per-call hash fast path for equijoin clauses."""
    lookup = _lookup_from(relations)
    schemas = {name: lookup(name).schema for name in view.relation_names}
    resolved = ViewValidator(schemas).resolve_view(view)

    # Schedule each clause at the first FROM position where it is decidable.
    order = list(resolved.relation_names)
    bound_at: dict[int, list[PrimitiveClause]] = {i: [] for i in range(len(order))}
    for item in resolved.where:
        needed = item.clause.relations()
        position = max(
            (order.index(name) for name in needed if name in order), default=0
        )
        bound_at[position].append(item.clause)

    bindings: list[dict[str, Any]] = [{}]
    for position, relation_name in enumerate(order):
        relation = lookup(relation_name)
        clauses = bound_at[position]
        keys = [
            f"{relation_name}.{name}"
            for name in relation.schema.attribute_names
        ]
        # Hash fast path: equijoin clauses linking a new attribute to an
        # already-bound one index the relation once instead of scanning it
        # per binding.  Remaining clauses still filter row by row.
        probe_pairs, residual = _split_equijoins(
            clauses, relation_name, set(keys)
        )
        extended: list[dict[str, Any]] = []
        if probe_pairs and bindings:
            index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
            new_positions = [
                relation.schema.position(new.attribute)
                for new, _ in probe_pairs
            ]
            for row in relation:
                hash_key = tuple(row[p] for p in new_positions)
                index.setdefault(hash_key, []).append(row)
            for binding in bindings:
                probe = tuple(
                    binding[bound.qualified] for _, bound in probe_pairs
                )
                if None in probe:
                    continue
                for row in index.get(probe, ()):
                    candidate = dict(binding)
                    candidate.update(zip(keys, row))
                    if all(_eval_qualified(c, candidate) for c in residual):
                        extended.append(candidate)
        else:
            for binding in bindings:
                for row in relation:
                    candidate = dict(binding)
                    candidate.update(zip(keys, row))
                    if all(_eval_qualified(c, candidate) for c in clauses):
                        extended.append(candidate)
        bindings = extended
        if trace is not None:
            trace.append((relation_name, len(bindings)))
        if not bindings:
            break

    output_schema = _output_schema(resolved, schemas)
    keys = [str(item.ref) for item in resolved.select]
    rows = [tuple(binding[key] for key in keys) for binding in bindings]
    return Relation(output_schema, rows)


def _eval_qualified(clause: PrimitiveClause, binding: Mapping[str, Any]) -> bool:
    """Evaluate a fully qualified clause against a qualified-name binding."""
    return clause.evaluate(binding)


def _split_equijoins(
    clauses: list[PrimitiveClause],
    relation_name: str,
    new_keys: set[str],
) -> tuple[list, list[PrimitiveClause]]:
    """Split clauses into hash-joinable pairs and residual filters.

    A clause is hash-joinable at this position when it is an equijoin
    between one attribute of the relation being added and one attribute
    bound by an earlier relation.  Returns ``([(new_ref, bound_ref)...],
    residual_clauses)``.
    """
    pairs = []
    residual: list[PrimitiveClause] = []
    for clause in clauses:
        if (
            clause.comparator is Comparator.EQ
            and isinstance(clause.left, AttributeRef)
            and isinstance(clause.right, AttributeRef)
        ):
            left_new = clause.left.qualified in new_keys
            right_new = clause.right.qualified in new_keys
            if left_new and not right_new:
                pairs.append((clause.left, clause.right))
                continue
            if right_new and not left_new:
                pairs.append((clause.right, clause.left))
                continue
        residual.append(clause)
    return pairs, residual


def _output_schema(
    resolved: ViewDefinition, schemas: Mapping[str, Schema]
) -> Schema:
    attributes = []
    for item in resolved.select:
        assert item.ref.relation is not None
        source = schemas[item.ref.relation].attribute(item.ref.attribute)
        attributes.append(source.renamed(item.output_name))
    return Schema(resolved.name, attributes)


def evaluate_views(
    views: Iterable[ViewDefinition],
    relations: Mapping[str, Relation] | RelationLookup,
    statistics: SpaceStatistics | None = None,
    config: "EngineConfig | None" = None,
    kernel_counters=None,
) -> dict[str, Relation]:
    """Materialize several views; returns name -> extent."""
    return {
        view.name: evaluate_view(
            view, relations, statistics, config, kernel_counters
        )
        for view in views
    }
