"""Serializable run reports: one machine-readable record per system call.

Every :meth:`~repro.core.eve.EVESystem.apply_changes` and
:meth:`~repro.core.eve.EVESystem.apply_updates` call aggregates the
payloads its events carried — per-view
:class:`~repro.sync.pipeline.StageCounters`, per-batch
:class:`~repro.sync.scheduler.ScheduleReport`\\ s, per-flush
:class:`~repro.maintenance.counters.MaintenanceCounters` — into one
:class:`SystemReport`, exposed as ``EVESystem.last_report`` and
consumed by the benchmark drivers in place of their hand-rolled dicts.

``SystemReport.to_dict()`` renders schema version
:data:`REPORT_SCHEMA_VERSION` (validated by
``benchmarks/validate_bench.py``)::

    {
      "schema_version": 4,
      "operation": "apply_changes" | "apply_updates",
      "synchronization": {
        "views": [
          {"view": str, "change": str, "survived": bool,
           "qc": float | null, "policy": str | null,
           "counters": {<StageCounters fields>} | null},
          ...
        ],
        "counters": {<merged StageCounters fields>},
        "survived": int, "undefined": int
      },
      "schedule": {
        "batches": [
          {"executor": str, "workers": int, "views": int,
           "coalesced": int, "wall_seconds": float,
           "budget": float | null, "budget_units": float | null,
           "units_spent": float,
           "executor_fallback": str | null,
           "degraded": [view, ...], "deferred": [view, ...],
           "shards": [{<ShardDispatch fields>}, ...]},
          ...
        ],
        "degraded": [view, ...], "deferred": [view, ...],
        "shards": [
          {"shard": int, "views": int, "groups": int,
           "bytes_shipped": int, "bytes_received": int,
           "snapshot_bytes": int, "worker_seconds": float},
          ...
        ]
      },
      "maintenance": {
        "flushes": [
          {"view": str, "relations": [str, ...], "updates": int,
           "messages": int, "bytes_transferred": int,
           "io_operations": int},
          ...
        ],
        "counters": {"messages": int, "bytes_transferred": int,
                     "io_operations": int},
        "kernels": {"rows_scanned": int, "rows_selected": int},
        "updates": int
      },
      "plans": {
        "views": [
          {"kind": "evaluation" | "maintenance", "view": str,
           "steps": [{"relation": str,
                      "access": "index_probe" | "scan", ...}, ...],
           ...},  # repro.esql.explain to_dict() renderings
          ...
        ],
        "total": int   # plans produced before the capture cap
      },
      "serving": {
        "enabled": bool,     # MVCC serving mode armed (snapshot taken)
        "version": int,      # extent version after the call
        "published": int,    # versions this call published
        "staged": int,       # staged extent writes this call
        "copied": int,       # copy-on-write extent copies this call
        "pins": int          # live snapshot pins at report time
      }
    }

All five sections are always present (empty/disabled for the parts of
the API that did not run) so consumers can index unconditionally.  Keys
are emitted sorted by :meth:`SystemReport.to_json`, making reports
diff-stable across runs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.maintenance.counters import MaintenanceCounters
from repro.relational.columnar import KernelCounters
from repro.sync.pipeline import StageCounters

if TYPE_CHECKING:  # imported lazily to avoid package cycles
    from repro.core.eve import SynchronizationResult
    from repro.sync.scheduler import ScheduleReport

__all__ = [
    "MaintenanceFlush",
    "PLAN_CAPTURE_LIMIT",
    "REPORT_SCHEMA_VERSION",
    "SynchronizationRecord",
    "SystemReport",
]

#: Bump when the to_dict layout changes shape (validators pin this).
#: v2: per-batch ``executor_fallback`` + ``shards`` (persistent-worker
#: dispatch accounting), and the call-aggregated ``schedule.shards``.
#: v3: the ``plans`` section — EXPLAIN renderings of the call's view
#: evaluations (``apply_changes``) or maintenance itineraries
#: (``apply_updates``), capped at :data:`PLAN_CAPTURE_LIMIT` entries.
#: v4: the ``serving`` section — MVCC extent-version and snapshot-pin
#: accounting of the online serving plane (always present; ``enabled``
#: is False for systems that never took a snapshot).
REPORT_SCHEMA_VERSION = 4

#: Most plan dicts a report embeds (chosen by sorted view name for
#: determinism); ``plans.total`` still counts every candidate, so a
#: 100k-view storm report stays small without hiding the truncation.
PLAN_CAPTURE_LIMIT = 16


def _counters_dict(counters: StageCounters) -> dict[str, Any]:
    payload = dataclasses.asdict(counters)
    payload["seconds"] = round(payload["seconds"], 6)
    return payload


# ----------------------------------------------------------------------
# Leaf records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SynchronizationRecord:
    """One view's search outcome, flattened for serialization."""

    view: str
    change: str
    survived: bool
    qc: float | None
    policy: str | None
    counters: StageCounters | None

    @classmethod
    def of(cls, result: "SynchronizationResult") -> "SynchronizationRecord":
        """Flatten a live :class:`SynchronizationResult` for the report."""
        return cls(
            view=result.view_name,
            change=repr(result.change),
            survived=result.survived,
            qc=result.chosen.qc if result.chosen is not None else None,
            policy=str(result.policy) if result.policy is not None else None,
            counters=result.counters,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable record (counters inlined, None when absent)."""
        return {
            "view": self.view,
            "change": self.change,
            "survived": self.survived,
            "qc": self.qc,
            "policy": self.policy,
            "counters": (
                _counters_dict(self.counters)
                if self.counters is not None
                else None
            ),
        }


@dataclass(frozen=True)
class MaintenanceFlush:
    """One maintenance flush: a run of updates absorbed by one extent."""

    view: str
    relations: tuple[str, ...]
    updates: int
    counters: MaintenanceCounters

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable flush row with modeled cost factors inlined."""
        return {
            "view": self.view,
            "relations": list(self.relations),
            "updates": self.updates,
            "messages": self.counters.messages,
            "bytes_transferred": self.counters.bytes_transferred,
            "io_operations": self.counters.io_operations,
        }


# ----------------------------------------------------------------------
# The aggregated report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SystemReport:
    """Everything one ``apply_changes`` / ``apply_updates`` call did."""

    operation: str
    synchronizations: tuple[SynchronizationRecord, ...] = ()
    schedules: "tuple[ScheduleReport, ...]" = ()
    flushes: tuple[MaintenanceFlush, ...] = ()
    #: Counters accumulated across the whole call (``apply_updates``).
    maintenance_counters: MaintenanceCounters | None = None
    #: Column-kernel rows scanned vs selected across the call (non-zero
    #: only when a columnar plane executed).
    kernels: KernelCounters | None = None
    #: EXPLAIN plan dicts for the call (see :mod:`repro.esql.explain`):
    #: evaluation plans for ``apply_changes``, maintenance itineraries
    #: for ``apply_updates``; at most :data:`PLAN_CAPTURE_LIMIT`.
    plans: tuple[dict, ...] = ()
    #: How many plans the call produced before capping.
    plans_total: int = 0
    #: Serving-plane accounting for the call (extent versions published,
    #: staged writes, copy-on-write copies, live snapshot pins); None
    #: renders as the disabled-serving section.
    serving: dict[str, Any] | None = None

    # -- builders -------------------------------------------------------
    @classmethod
    def for_changes(
        cls,
        results: "Sequence[SynchronizationResult]",
        schedules: "Sequence[ScheduleReport]",
        plans: Sequence[dict] = (),
        plans_total: int | None = None,
        serving: dict[str, Any] | None = None,
    ) -> "SystemReport":
        """Build the report for one ``apply_changes`` call."""
        return cls(
            operation="apply_changes",
            synchronizations=tuple(
                SynchronizationRecord.of(result) for result in results
            ),
            schedules=tuple(schedules),
            plans=tuple(plans),
            plans_total=(
                len(plans) if plans_total is None else plans_total
            ),
            serving=serving,
        )

    @classmethod
    def for_updates(
        cls,
        flushes: Sequence[MaintenanceFlush],
        counters: MaintenanceCounters,
        kernels: KernelCounters | None = None,
        plans: Sequence[dict] = (),
        plans_total: int | None = None,
        serving: dict[str, Any] | None = None,
    ) -> "SystemReport":
        """Build the report for one ``apply_updates`` call."""
        return cls(
            operation="apply_updates",
            flushes=tuple(flushes),
            maintenance_counters=counters,
            kernels=kernels,
            plans=tuple(plans),
            plans_total=(
                len(plans) if plans_total is None else plans_total
            ),
            serving=serving,
        )

    # -- aggregates -----------------------------------------------------
    @property
    def counters(self) -> StageCounters:
        """Call-merged pipeline counters (deferral accounting included)."""
        merged = StageCounters()
        for schedule in self.schedules:
            merged = merged.merged(schedule.counters)
        if not self.schedules:
            for record in self.synchronizations:
                if record.counters is not None:
                    merged = merged.merged(record.counters)
        return merged

    @property
    def degraded_views(self) -> tuple[str, ...]:
        """Views demoted to first-legal by a scheduler budget."""
        return tuple(
            name
            for schedule in self.schedules
            for name in schedule.degraded_views
        )

    @property
    def deferred_views(self) -> tuple[str, ...]:
        """Views parked past a deadline (resumable later)."""
        return tuple(
            record.view_name
            for schedule in self.schedules
            for record in schedule.deferred
        )

    @property
    def updates(self) -> int:
        """Total data updates absorbed across every flush."""
        return sum(flush.updates for flush in self.flushes)

    @property
    def shard_dispatches(self) -> list[dict[str, Any]]:
        """Call-aggregated persistent-worker accounting, one row per
        shard the call's batches dispatched to (empty unless the
        ``workers`` executor ran): views and chain groups replayed,
        bytes shipped/received, bootstrap snapshot bytes, and worker
        wall clock, summed across the call's sub-batches."""
        merged: dict[int, dict[str, Any]] = {}
        for schedule in self.schedules:
            for dispatch in schedule.shards:
                row = merged.setdefault(
                    dispatch.shard,
                    {
                        "shard": dispatch.shard,
                        "views": 0,
                        "groups": 0,
                        "bytes_shipped": 0,
                        "bytes_received": 0,
                        "snapshot_bytes": 0,
                        "worker_seconds": 0.0,
                    },
                )
                row["views"] += dispatch.views
                row["groups"] += dispatch.groups
                row["bytes_shipped"] += dispatch.bytes_shipped
                row["bytes_received"] += dispatch.bytes_received
                row["snapshot_bytes"] += dispatch.snapshot_bytes
                row["worker_seconds"] += dispatch.worker_seconds
        for row in merged.values():
            row["worker_seconds"] = round(row["worker_seconds"], 6)
        return [merged[shard] for shard in sorted(merged)]

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The versioned, JSON-serializable report payload (schema v4)."""
        maintenance = self.maintenance_counters
        if maintenance is None:
            maintenance = MaintenanceCounters()
            for flush in self.flushes:
                maintenance = maintenance.merged(flush.counters)
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "operation": self.operation,
            "synchronization": {
                "views": [
                    record.to_dict() for record in self.synchronizations
                ],
                "counters": _counters_dict(self.counters),
                "survived": sum(
                    1 for record in self.synchronizations if record.survived
                ),
                "undefined": sum(
                    1
                    for record in self.synchronizations
                    if not record.survived
                ),
            },
            "schedule": {
                "batches": [
                    {
                        "executor": schedule.executor,
                        "workers": schedule.workers,
                        "views": len(schedule.results)
                        + len(schedule.deferred),
                        "coalesced": schedule.coalesced,
                        "wall_seconds": round(schedule.wall_seconds, 6),
                        "budget": schedule.budget,
                        "budget_units": schedule.budget_units,
                        "units_spent": round(schedule.units_spent, 6),
                        "executor_fallback": schedule.executor_fallback,
                        "degraded": list(schedule.degraded_views),
                        "deferred": [
                            record.view_name
                            for record in schedule.deferred
                        ],
                        "shards": [
                            dispatch.as_dict()
                            for dispatch in schedule.shards
                        ],
                    }
                    for schedule in self.schedules
                ],
                "degraded": list(self.degraded_views),
                "deferred": list(self.deferred_views),
                "shards": self.shard_dispatches,
            },
            "maintenance": {
                "flushes": [flush.to_dict() for flush in self.flushes],
                "counters": {
                    "messages": maintenance.messages,
                    "bytes_transferred": maintenance.bytes_transferred,
                    "io_operations": maintenance.io_operations,
                },
                "kernels": (
                    self.kernels or KernelCounters()
                ).as_dict(),
                "updates": self.updates,
            },
            "plans": {
                "views": [dict(plan) for plan in self.plans],
                "total": self.plans_total,
            },
            "serving": (
                dict(self.serving)
                if self.serving is not None
                else {
                    "enabled": False,
                    "version": 0,
                    "published": 0,
                    "staged": 0,
                    "copied": 0,
                    "pins": 0,
                }
            ),
        }

    def to_json(self, indent: int | None = None) -> str:
        """The stable wire form: sorted keys, schema-versioned."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
