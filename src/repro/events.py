"""The system's event/observer bus: typed notifications, one surface.

Before this module, observers of the system's behaviour had to poke at
ad-hoc result state — ``EVESystem.last_schedule``, manual
``MaintenanceCounters`` snapshots, the synchronization log.  The bus
replaces those pokes with push notifications:
``EVESystem.subscribe(event_type, handler)`` registers a callable that
receives every event of that type, carrying the same payload objects
the system already produces (:class:`~repro.sync.pipeline.StageCounters`,
:class:`~repro.sync.scheduler.ScheduleReport`,
:class:`~repro.maintenance.counters.MaintenanceCounters`).

Six event types cover the operator-visible lifecycle:

* :class:`ViewSynchronized` — a view's rewriting search committed (or
  marked the view undefined); carries the full
  :class:`~repro.core.eve.SynchronizationResult`.
* :class:`BatchScheduled` — one scheduled sub-batch of
  ``apply_changes`` completed; carries its
  :class:`~repro.sync.scheduler.ScheduleReport`.
* :class:`ViewMaintained` — a materialized extent absorbed a data
  update (or a batched flush of updates); carries the per-call
  :class:`~repro.maintenance.counters.MaintenanceCounters` diff.
* :class:`DegradedToFirstLegal` — a scheduler budget demoted a view's
  search to the old-EVE first-legal policy.
* :class:`SynchronizationDeferred` — a scheduler budget parked a view
  (resumable via ``EVESystem.resume_deferred``).
* :class:`CacheInvalidated` — the shared assessment cache was flushed
  (capability change or relation registration).

Two more cover the persistent-worker pool's lifecycle:

* :class:`ShardRebalanced` — the sharded worker pool (re)built its VKB
  partition (first dispatch, or drift detected in the parent VKB/MKB).
* :class:`WorkerRecycled` — a shard's worker process was torn down
  (crash mid-group, or pool shutdown) and will be respawned on the next
  dispatch.

And two cover the online serving plane's version/pin accounting:

* :class:`SnapshotPublished` — a batch commit swapped in a new extent
  version (MVCC publish; see :mod:`repro.relational.versioning`).
* :class:`SnapshotReleased` — a reader released its pin on a version.

Delivery contract: handlers run synchronously on the thread that
produced the event — under a parallel scheduler that may be a worker
thread, and under the fork-based process executor child-side emissions
stay in the child (the parent emits once when it adopts the results).
Handlers must not raise; an exception propagates to the emitting call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # imported lazily to avoid package cycles
    from repro.core.eve import SynchronizationResult
    from repro.maintenance.counters import MaintenanceCounters
    from repro.space.changes import SchemaChange
    from repro.sync.pipeline import StageCounters
    from repro.sync.scheduler import DeferredSynchronization, ScheduleReport

__all__ = [
    "BatchScheduled",
    "CacheInvalidated",
    "DegradedToFirstLegal",
    "EventBus",
    "ShardRebalanced",
    "SnapshotPublished",
    "SnapshotReleased",
    "SynchronizationDeferred",
    "SystemEvent",
    "ViewMaintained",
    "ViewSynchronized",
    "WorkerRecycled",
]


# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SystemEvent:
    """Base class of every bus event (subscribe to it for a firehose)."""


@dataclass(frozen=True)
class ViewSynchronized(SystemEvent):
    """One view's rewriting search committed its outcome."""

    view_name: str
    change: "SchemaChange"
    #: Full search outcome: evaluations, chosen winner, stage counters.
    result: "SynchronizationResult"

    @property
    def survived(self) -> bool:
        """Whether the search committed a rewriting (vs. undefined)."""
        return self.result.chosen is not None

    @property
    def counters(self) -> "StageCounters | None":
        """The search's per-stage pipeline accounting, if recorded."""
        return self.result.counters


@dataclass(frozen=True)
class BatchScheduled(SystemEvent):
    """One scheduled sub-batch of ``apply_changes`` completed."""

    #: Full per-batch accounting (executor, timings, deferrals, ...).
    report: "ScheduleReport"


@dataclass(frozen=True)
class ViewMaintained(SystemEvent):
    """A materialized extent absorbed one flush of data updates."""

    view_name: str
    #: Relations the flushed updates targeted, in first-seen order.
    relations: tuple[str, ...]
    #: Number of data updates in the flush (1 on the per-update path).
    updates: int
    #: Modeled CF_M / CF_T / CF_IO charged by this flush.
    counters: "MaintenanceCounters"


@dataclass(frozen=True)
class DegradedToFirstLegal(SystemEvent):
    """A scheduler budget demoted a view to the first-legal policy."""

    view_name: str
    budget: float | None = None
    budget_units: float | None = None


@dataclass(frozen=True)
class SynchronizationDeferred(SystemEvent):
    """A scheduler budget parked a view past the deadline."""

    record: "DeferredSynchronization"

    @property
    def view_name(self) -> str:
        """The parked view (replayable via ``resume_deferred``)."""
        return self.record.view_name


@dataclass(frozen=True)
class CacheInvalidated(SystemEvent):
    """The shared assessment cache was flushed."""

    reason: str


@dataclass(frozen=True)
class ShardRebalanced(SystemEvent):
    """The persistent-worker pool (re)built its VKB partition."""

    #: Number of shards in the new partition.
    shards: int
    #: Alive views distributed across the partition.
    views: int
    #: Why the partition was (re)built: "bootstrap" on first dispatch,
    #: "drift" when the parent VKB changed out-of-band, "mkb-drift"
    #: when constraints were added to the parent MKB out-of-band,
    #: "recycle" after a worker crash forced a pool teardown.
    reason: str


@dataclass(frozen=True)
class SnapshotPublished(SystemEvent):
    """A batch commit published a new extent version (MVCC swap)."""

    #: The monotone version number just published.
    version: int
    #: Views whose extents this publish staged (created, replaced, or
    #: dropped), sorted.
    touched: tuple[str, ...]
    #: Total views materialized in the published version.
    views: int
    #: Snapshot pins live across all versions at publish time.
    pins: int


@dataclass(frozen=True)
class SnapshotReleased(SystemEvent):
    """A reader released its pin on one extent version."""

    #: The version whose pin was dropped.
    version: int
    #: Pins still live on that version after the release.
    remaining: int


@dataclass(frozen=True)
class WorkerRecycled(SystemEvent):
    """One shard's worker process was torn down for respawning."""

    shard: int
    #: OS pid of the recycled worker process (None if it never spawned).
    pid: int | None
    #: Why the worker was recycled ("crash", "shutdown", ...).
    reason: str


_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        SystemEvent,
        ViewSynchronized,
        BatchScheduled,
        ViewMaintained,
        DegradedToFirstLegal,
        SynchronizationDeferred,
        CacheInvalidated,
        ShardRebalanced,
        SnapshotPublished,
        SnapshotReleased,
        WorkerRecycled,
    )
}


# ----------------------------------------------------------------------
# The bus
# ----------------------------------------------------------------------
@dataclass
class EventBus:
    """Synchronous publish/subscribe over the typed events above.

    Emission is cheap when nobody listens (one dict lookup), so the hot
    paths guard event *construction* with :meth:`wants` and skip even
    building the payload for an unobserved type.
    """

    _handlers: dict[type[SystemEvent], list[Callable[[Any], None]]] = field(
        default_factory=dict
    )

    @staticmethod
    def _resolve(event_type: type[SystemEvent] | str) -> type[SystemEvent]:
        if isinstance(event_type, str):
            try:
                return _EVENT_TYPES[event_type]
            except KeyError:
                raise ConfigurationError(
                    f"unknown event type {event_type!r}; expected one of "
                    f"{', '.join(sorted(_EVENT_TYPES))}"
                ) from None
        if isinstance(event_type, type) and issubclass(
            event_type, SystemEvent
        ):
            return event_type
        raise ConfigurationError(
            f"cannot subscribe to {event_type!r}; expected a SystemEvent "
            f"subclass or its name"
        )

    def subscribe(
        self,
        event_type: type[SystemEvent] | str,
        handler: Callable[[Any], None],
    ) -> Callable[[Any], None]:
        """Register ``handler`` for every event of ``event_type``.

        ``event_type`` is an event class (or its name); subscribing to
        :class:`SystemEvent` receives every event.  Returns ``handler``
        so the call can be used as a decorator.
        """
        resolved = self._resolve(event_type)
        self._handlers.setdefault(resolved, []).append(handler)
        return handler

    def unsubscribe(
        self,
        event_type: type[SystemEvent] | str,
        handler: Callable[[Any], None],
    ) -> None:
        """Remove one prior subscription (no-op if absent)."""
        resolved = self._resolve(event_type)
        handlers = self._handlers.get(resolved, [])
        if handler in handlers:
            handlers.remove(handler)

    def wants(self, event_type: type[SystemEvent]) -> bool:
        """Whether any handler would receive an event of this type."""
        if self._handlers.get(SystemEvent):
            return True
        return bool(self._handlers.get(event_type))

    def emit(self, event: SystemEvent) -> None:
        """Deliver ``event`` to its type's handlers, then the firehose."""
        for handler in self._handlers.get(type(event), ()):
            handler(event)
        if type(event) is not SystemEvent:
            for handler in self._handlers.get(SystemEvent, ()):
                handler(event)
