"""Typed, validated, serializable configuration profiles for the system.

Four PRs of growth scattered the system's controls across five
constructors as stringly-typed kwargs (``policy="pruned"``,
``engine="naive"``, ``use_index=``, ``representation=``, ``executor=``,
``degrade=``, ``order=``, ``coalesce=``, ``budget=``,
``budget_units=``).  This module replaces that flag soup with one
declarative surface:

* :class:`EngineConfig` — how view extents are *computed*
  (``esql.evaluator``): compiled-tuple indexed engine vs the naive
  dict-binding reference, and whether equijoins may probe hash indexes.
* :class:`SearchConfig` — how rewritings are *searched*
  (``sync.pipeline`` / ``sync.generators``): search policy, generator
  chain, top-k width.
* :class:`ScheduleConfig` — how batch synchronization is *dispatched*
  (``sync.scheduler``): executor, workers, wall-clock / modeled-unit
  budgets, degradation mode, ordering, coalescing.
* :class:`MaintenanceConfig` — how deltas are *propagated*
  (``maintenance.simulator``): tuple vs dict delta plane, index probes.

:class:`SystemConfig` composes the four slices and is the one object
:class:`~repro.core.eve.EVESystem` is configured with.  Named presets
(:meth:`SystemConfig.reference`, :meth:`SystemConfig.fast`,
:meth:`SystemConfig.bounded`) capture the parity planes the property
tests pin against each other, and :meth:`SystemConfig.to_dict` /
:meth:`SystemConfig.from_dict` round-trip losslessly through JSON so
benchmarks, CI, and scenario sweeps declare configurations as data.

Every field is validated at construction; invalid values raise
:class:`~repro.errors.ConfigurationError` regardless of which subsystem
the field configures.  All profiles are frozen: a configuration is a
value, shared freely and compared with ``==``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # imported lazily to avoid package cycles
    from repro.sync.generators.base import CandidateGenerator
    from repro.sync.pipeline import SearchPolicy

__all__ = [
    "EngineConfig",
    "MaintenanceConfig",
    "ScheduleConfig",
    "SearchConfig",
    "SystemConfig",
]


_ENGINES = ("indexed", "naive")
_ENGINE_REPRESENTATIONS = ("tuple", "columnar")
_REPRESENTATIONS = ("tuple", "dict", "columnar")
_EXECUTORS = ("serial", "threads", "processes", "workers")
_DEGRADE_MODES = ("first_legal", "defer")
_ORDERS = ("cost", "plan")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _require_choice(value: str, choices: tuple[str, ...], what: str) -> None:
    _require(
        value in choices,
        f"unknown {what} {value!r}; expected one of {', '.join(choices)}",
    )


# ----------------------------------------------------------------------
# The four slices
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineConfig:
    """How view extents are computed (:func:`repro.esql.evaluator.evaluate_view`).

    ``engine``
        ``"indexed"`` (default) — compiled positional-tuple predicates,
        greedy cardinality join order; ``"naive"`` — the literal-order
        dict-binding reference engine.
    ``representation``
        ``"tuple"`` (default) — the compiled positional-tuple plane;
        ``"columnar"`` — column-at-a-time kernels with selection vectors
        and vectorized hash probes (requires ``engine="indexed"``; the
        naive engine is the dict reference by definition).
    ``use_index``
        Whether the indexed engine's equijoin steps may probe hash
        indexes; ``False`` keeps the compiled plane but joins by
        nested loops (ignored by the naive engine, which never probes).
    ``optimize``
        Run the guard-railed transform pass
        (:class:`~repro.sync.optimizer.PlanOptimizer`) before each
        evaluation: local-condition pushdown at probe steps and
        provably-semi existence probes, each applied only when the
        EXPLAIN cost model scores it an improvement.  Plan-shape-only —
        extents stay bag-identical.  Requires ``engine="indexed"``.
    """

    engine: str = "indexed"
    representation: str = "tuple"
    use_index: bool = True
    optimize: bool = False

    def __post_init__(self) -> None:
        _require_choice(self.engine, _ENGINES, "evaluation engine")
        _require_choice(
            self.representation,
            _ENGINE_REPRESENTATIONS,
            "extent representation",
        )
        _require(
            not (self.representation == "columnar" and self.engine == "naive"),
            "representation='columnar' requires engine='indexed'",
        )
        _require(
            not (self.optimize and self.engine == "naive"),
            "optimize=True requires engine='indexed' (the naive engine "
            "is the literal-order reference by definition)",
        )


@dataclass(frozen=True)
class SearchConfig:
    """How rewritings are searched (:class:`~repro.sync.pipeline.RewritingSearchPipeline`).

    ``policy``
        ``"exhaustive"`` | ``"pruned"`` (default) | ``"top_k"`` |
        ``"first_legal"``; the ``"top_k(3)"`` string spelling is also
        accepted and normalized into ``policy="top_k", top_k=3``.
    ``top_k``
        Ranking width when ``policy="top_k"`` (must be >= 1 there,
        unset otherwise).
    ``generators``
        The candidate-generator chain, as registry names
        (:data:`~repro.sync.generators.GENERATOR_REGISTRY`) in chain
        order — the order fixes candidate ordering and every downstream
        tie-break.
    """

    policy: str = "pruned"
    top_k: int | None = None
    generators: tuple[str, ...] = (
        "rename",
        "drop",
        "attribute_replacement",
        "relation_replacement",
    )

    def __post_init__(self) -> None:
        from repro.sync.generators import GENERATOR_REGISTRY

        policy, k = self.policy, self.top_k
        if policy.startswith("top_k(") and policy.endswith(")"):
            try:
                parsed = int(policy[len("top_k(") : -1])
            except ValueError:
                raise ConfigurationError(
                    f"malformed search policy {policy!r}; "
                    f"expected top_k(<int>)"
                ) from None
            _require(
                k is None or k == parsed,
                f"search policy {policy!r} conflicts with top_k={k}",
            )
            policy, k = "top_k", parsed
            object.__setattr__(self, "policy", policy)
            object.__setattr__(self, "top_k", k)
        _require_choice(
            policy,
            ("exhaustive", "pruned", "top_k", "first_legal"),
            "search policy",
        )
        if policy == "top_k":
            _require(
                k is not None and k >= 1,
                "search policy 'top_k' needs top_k >= 1",
            )
        else:
            _require(
                k is None,
                f"top_k={k} is only meaningful with policy='top_k'",
            )
        object.__setattr__(self, "generators", tuple(self.generators))
        for name in self.generators:
            _require(
                name in GENERATOR_REGISTRY,
                f"unknown candidate generator {name!r}; expected one of "
                f"{', '.join(sorted(GENERATOR_REGISTRY))}",
            )

    def search_policy(self) -> "SearchPolicy":
        """The equivalent :class:`~repro.sync.pipeline.SearchPolicy`."""
        from repro.sync.pipeline import SearchPolicy

        if self.policy == "top_k":
            return SearchPolicy.top_k(self.top_k)
        return SearchPolicy(self.policy)

    @classmethod
    def from_policy(cls, policy: "SearchPolicy") -> "SearchConfig":
        """The slice a :class:`~repro.sync.pipeline.SearchPolicy` maps to."""
        if policy.kind == "top_k":
            return cls(policy="top_k", top_k=policy.k)
        return cls(policy=policy.kind)

    def build_generators(self) -> "tuple[CandidateGenerator, ...]":
        """Instantiate the configured generator chain, in order."""
        from repro.sync.generators import generators_from_names

        return generators_from_names(self.generators)


@dataclass(frozen=True)
class ScheduleConfig:
    """How batch synchronization is dispatched
    (:class:`~repro.sync.scheduler.SynchronizationScheduler`).

    Field semantics are the scheduler's: ``executor`` in ``serial`` |
    ``threads`` | ``processes`` | ``workers``; ``budget`` in wall-clock
    seconds and ``budget_units`` in modeled Eq. 24 cost units (either
    exhausts the other); ``degrade`` in ``first_legal`` | ``defer``;
    ``order`` in ``cost`` | ``plan``; ``coalesce`` runs one search per
    structural equivalence class; ``shards`` partitions the VKB for the
    persistent-worker pool (``executor="workers"`` only; one long-lived
    spawn-safe process per shard holds its extents and caches across
    batches).
    """

    executor: str = "serial"
    max_workers: int | None = None
    budget: float | None = None
    budget_units: float | None = None
    degrade: str = "first_legal"
    order: str = "cost"
    coalesce: bool = False
    shards: int | None = None

    def __post_init__(self) -> None:
        _require_choice(self.executor, _EXECUTORS, "executor")
        _require_choice(self.degrade, _DEGRADE_MODES, "degrade mode")
        _require_choice(self.order, _ORDERS, "order")
        _require(
            self.budget is None or self.budget >= 0,
            "budget must be >= 0 seconds",
        )
        _require(
            self.budget_units is None or self.budget_units >= 0,
            "budget_units must be >= 0",
        )
        _require(
            self.max_workers is None or self.max_workers >= 1,
            "max_workers must be >= 1",
        )
        _require(
            self.shards is None or self.shards >= 1,
            "shards must be >= 1",
        )
        _require(
            self.shards is None or self.executor == "workers",
            "shards is only meaningful with executor='workers'",
        )


@dataclass(frozen=True)
class MaintenanceConfig:
    """How deltas are propagated (:class:`~repro.maintenance.simulator.ViewMaintainer`).

    ``representation``
        ``"tuple"`` (default) — the compiled positional-tuple delta
        plane; ``"dict"`` — the per-row binding reference plane;
        ``"columnar"`` — delta batches as per-attribute columns with
        kernel filters and vectorized probes.
    ``use_index``
        Whether single-site queries may probe the local relation's hash
        index (``False`` forces nested loops).  Modeled CF_M/CF_T/CF_IO
        counters are byte-identical across all four combinations.
    """

    representation: str = "tuple"
    use_index: bool = True

    def __post_init__(self) -> None:
        _require_choice(
            self.representation, _REPRESENTATIONS, "delta representation"
        )


# ----------------------------------------------------------------------
# The composed system profile
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SystemConfig:
    """One declarative profile for the whole EVE stack.

    ``EVESystem(config=SystemConfig(...))`` is the single entry point;
    each subsystem receives its slice.  Three named presets cover the
    planes the benchmarks and property tests exercise:

    * :meth:`reference` — naive engine, dict delta plane, no index
      probes, serial plan-order dispatch, exhaustive search: the
      everything-eager parity plane every optimization is compared to.
    * :meth:`fast` — indexed engine, tuple delta plane, pruned search,
      threaded coalescing dispatch: the production-shaped plane.
    * :meth:`columnar` — :meth:`fast` with evaluation and delta
      propagation on the column-at-a-time kernel plane.
    * :meth:`bounded` — :meth:`fast` under a budget (modeled cost units
      and/or wall-clock seconds) with a degradation mode.

    All presets and the default commit byte-identical winners,
    QC-Values, extents, and modeled CF_M/CF_T/CF_IO counters — enforced
    by ``tests/property/test_config_parity.py``.
    """

    engine: EngineConfig = field(default_factory=EngineConfig)
    search: SearchConfig = field(default_factory=SearchConfig)
    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    maintenance: MaintenanceConfig = field(default_factory=MaintenanceConfig)

    def __post_init__(self) -> None:
        for name, type_ in (
            ("engine", EngineConfig),
            ("search", SearchConfig),
            ("schedule", ScheduleConfig),
            ("maintenance", MaintenanceConfig),
        ):
            value = getattr(self, name)
            if isinstance(value, Mapping):
                object.__setattr__(self, name, type_(**value))
            elif not isinstance(value, type_):
                raise ConfigurationError(
                    f"SystemConfig.{name} must be a {type_.__name__} "
                    f"(or a mapping of its fields), got {value!r}"
                )

    # -- presets --------------------------------------------------------
    @classmethod
    def reference(cls) -> "SystemConfig":
        """The naive / dict / serial parity plane (everything eager)."""
        return cls(
            engine=EngineConfig(engine="naive", use_index=False),
            search=SearchConfig(policy="exhaustive"),
            schedule=ScheduleConfig(order="plan"),
            maintenance=MaintenanceConfig(
                representation="dict", use_index=False
            ),
        )

    @classmethod
    def fast(cls) -> "SystemConfig":
        """Indexed / tuple / pruned / coalesced: the production plane."""
        return cls(
            schedule=ScheduleConfig(executor="threads", coalesce=True),
        )

    @classmethod
    def columnar(cls) -> "SystemConfig":
        """:meth:`fast` with both planes on the columnar representation."""
        return cls(
            engine=EngineConfig(representation="columnar"),
            schedule=ScheduleConfig(executor="threads", coalesce=True),
            maintenance=MaintenanceConfig(representation="columnar"),
        )

    @classmethod
    def sharded(cls, shards: int, max_workers: int | None = None) -> "SystemConfig":
        """:meth:`fast` with the persistent-worker pool over ``shards``
        VKB shards (long-lived spawn-safe processes, delta shipping)."""
        return cls(
            schedule=ScheduleConfig(
                executor="workers",
                shards=shards,
                max_workers=max_workers,
                coalesce=True,
            ),
        )

    @classmethod
    def bounded(
        cls,
        budget_units: float | None = None,
        budget: float | None = None,
        degrade: str = "first_legal",
    ) -> "SystemConfig":
        """:meth:`fast` under a modeled-cost and/or wall-clock budget."""
        _require(
            budget_units is not None or budget is not None,
            "bounded() needs budget_units and/or budget",
        )
        return cls(
            schedule=ScheduleConfig(
                executor="threads",
                coalesce=True,
                budget=budget,
                budget_units=budget_units,
                degrade=degrade,
            ),
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendition (JSON-safe, lossless under from_dict)."""
        payload = asdict(self)
        payload["search"]["generators"] = list(self.search.generators)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SystemConfig":
        """Rebuild a profile from :meth:`to_dict` output.

        Unknown sections or fields raise
        :class:`~repro.errors.ConfigurationError` — a typo'd sweep file
        must fail loudly, not silently run the default.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"SystemConfig payload must be a mapping, got {payload!r}"
            )
        sections = {
            "engine": EngineConfig,
            "search": SearchConfig,
            "schedule": ScheduleConfig,
            "maintenance": MaintenanceConfig,
        }
        unknown = set(payload) - set(sections)
        _require(
            not unknown,
            f"unknown SystemConfig section(s): {', '.join(sorted(unknown))}",
        )
        kwargs = {}
        for name, type_ in sections.items():
            if name not in payload:
                continue
            section = payload[name]
            if not isinstance(section, Mapping):
                raise ConfigurationError(
                    f"SystemConfig.{name} payload must be a mapping, "
                    f"got {section!r}"
                )
            known = {f.name for f in fields(type_)}
            bad = set(section) - known
            _require(
                not bad,
                f"unknown {type_.__name__} field(s): "
                f"{', '.join(sorted(bad))}",
            )
            kwargs[name] = type_(**section)
        return cls(**kwargs)

    def with_schedule(self, **changes: Any) -> "SystemConfig":
        """A copy with schedule fields replaced (sweep convenience)."""
        return replace(self, schedule=replace(self.schedule, **changes))

    def with_search(self, **changes: Any) -> "SystemConfig":
        """A copy with search fields replaced (sweep convenience)."""
        return replace(self, search=replace(self.search, **changes))
