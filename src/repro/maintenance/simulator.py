"""Incremental view maintenance — Algorithm 1, executed for real.

The :class:`ViewMaintainer` keeps materialized view extents up to date
after data-content updates, following the non-concurrent protocol of
Sec. 6.1:

1. An IS notifies the warehouse of a one-tuple insert/delete.
2. The maintainer visits each involved source in plan order, sending the
   current delta down as a single-site query and receiving the joined
   delta back (one message each way, bytes = tuples x accumulated width).
3. The final delta is projected onto the view interface and applied to the
   materialized extent (inserts append; deletes remove).

All three cost factors are *measured* via
:class:`~repro.maintenance.counters.MaintenanceCounters`: each message's
byte payload is the actual delta size, and per-source I/O charges the
min(full scan, per-delta-tuple index probes) rule of Appendix A against
the real matching-tuple counts.

Three delta representations execute the sweep:

* ``representation="tuple"`` (default) — the compiled positional-tuple
  plane of :mod:`repro.maintenance.delta`: deltas travel as
  :class:`~repro.maintenance.delta.DeltaBatch` es, residual WHERE
  conjuncts compile once per (condition, bound-column layout), and index
  probes yield tuples directly.
* ``representation="columnar"`` — deltas travel as
  :class:`~repro.maintenance.delta.ColumnBatch` es of parallel
  per-column lists; WHERE conjuncts run as selection-vector kernels and
  equijoins as vectorized position-index probes, with rows scanned vs
  selected recorded in :attr:`ViewMaintainer.kernel_counters`.
* ``representation="dict"`` — the original per-row binding dicts with
  per-candidate clause interpretation, retained as the equivalence
  reference (pair with ``use_index=False`` for the fully naive path).

All representations accept the same delta rows in the same order and
record byte-identical modeled CF_M/CF_T/CF_IO counters — enforced by
``tests/property/test_delta_parity.py`` and
``tests/property/test_columnar_parity.py``.

:meth:`ViewMaintainer.maintain_batch` additionally streams a whole
:class:`~repro.space.updates.DataUpdate` batch through one compiled
pipeline: the view is resolved once, the maintenance plan is built once
per (view, updated-relation) run, and provenance tags recover the
per-update cardinalities every message/IO charge needs — so the batch
path's counters equal the per-update loop's exactly.
"""

from __future__ import annotations

import math
from itertools import groupby
from collections.abc import Iterable, Mapping, Sequence

from repro.config import MaintenanceConfig
from repro.errors import MaintenanceError
from repro.esql.ast import ViewDefinition
from repro.esql.validate import ViewValidator
from repro.misd.statistics import SpaceStatistics
from repro.qc.cost import MaintenancePlan, plan_for_view
from repro.relational.relation import Relation
from repro.space.source import Binding, clause_decidable
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate, UpdateKind
from repro.relational.columnar import KernelCounters
from repro.maintenance.counters import MaintenanceCounters
from repro.maintenance.delta import ColumnBatch, DeltaBatch, seed_plan

#: Per-update relation-cardinality overlays for modeled-cost pricing:
#: one mapping per update, consulted instead of the live catalog so a
#: deferred flush prices exactly what the sequential protocol saw.
SizeOverlays = Sequence[Mapping[str, int] | None] | None


class ViewMaintainer:
    """Executes Algorithm 1 against a simulated information space.

    Configured with a :class:`~repro.config.MaintenanceConfig` slice.
    """

    def __init__(
        self,
        space: InformationSpace,
        statistics: SpaceStatistics | None = None,
        config: MaintenanceConfig | None = None,
    ) -> None:
        self.config = config if config is not None else MaintenanceConfig()
        self._space = space
        self._statistics = (
            statistics if statistics is not None else space.mkb.statistics
        )
        # How single-site queries are *executed* (index probes vs nested
        # loops, tuple batches vs binding dicts); the modeled cost
        # counters are identical across all four combinations.
        self._use_index = self.config.use_index
        self._representation = self.config.representation
        self.counters = MaintenanceCounters()
        #: Columnar-plane observability: rows scanned vs selected per
        #: column kernel.  The row planes never record into it.
        self.kernel_counters = KernelCounters()

    @property
    def representation(self) -> str:
        return self._representation

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def maintain(
        self,
        view: ViewDefinition,
        extent: Relation,
        update: DataUpdate,
    ) -> MaintenanceCounters:
        """Bring ``extent`` up to date after ``update``; returns the
        counters for this single update."""
        if update.relation not in view.relation_names:
            raise MaintenanceError(
                f"update at {update.relation!r} does not affect view "
                f"{view.name!r}"
            )
        before = self.counters.snapshot()
        resolved = self._resolve(view)
        plan = self._plan(resolved, update.relation)
        self._run(resolved, extent, plan, [update])
        return self.counters.diff(before)

    def maintain_batch(
        self,
        view: ViewDefinition,
        extent: Relation,
        updates: Iterable[DataUpdate],
        relation_sizes: SizeOverlays = None,
    ) -> MaintenanceCounters:
        """Stream a whole update batch through the compiled pipeline.

        The view is resolved once and the maintenance plan is built once
        per (view, updated-relation) run; consecutive updates at the
        same relation propagate as one tagged
        :class:`~repro.maintenance.delta.DeltaBatch` whose provenance
        recovers per-update cardinalities, so the modeled counters are
        byte-identical to calling :meth:`maintain` per update.

        Updates must already be applied to their source relations (the
        same contract as :meth:`maintain`).  Equivalence with the
        sequential per-update protocol additionally requires that no
        update in the batch targets a relation an *earlier* update's
        propagation actually joins against — an update's own relation is
        never joined, so any single-relation stream qualifies, and
        :meth:`~repro.core.eve.EVESystem.apply_updates` flushes mixed
        streams at exactly the boundaries where the guarantee would
        break (its join-graph analysis proves the safe interleavings).

        ``relation_sizes`` (optional) supplies one cardinality overlay
        per update — relation name to the cardinality the *sequential*
        protocol would have priced I/O against.  A caller that batches
        across a proven-unjoinable foreign update passes the enqueue-time
        snapshot so the Appendix A ``min(scan, probe)`` charges stay
        byte-identical to the per-update reference even though the
        catalog has since moved on.  ``None`` (or a ``None`` entry)
        prices against the live catalog.
        """
        batch = list(updates)
        for update in batch:
            if update.relation not in view.relation_names:
                raise MaintenanceError(
                    f"update at {update.relation!r} does not affect view "
                    f"{view.name!r}"
                )
        overlays = (
            list(relation_sizes) if relation_sizes is not None else None
        )
        if overlays is not None and len(overlays) != len(batch):
            raise MaintenanceError(
                f"relation_sizes carries {len(overlays)} overlay(s) for "
                f"{len(batch)} update(s)"
            )
        before = self.counters.snapshot()
        if batch:
            resolved = self._resolve(view)
            plans: dict[str, MaintenancePlan] = {}
            for relation, run_iter in groupby(
                enumerate(batch), key=lambda pair: pair[1].relation
            ):
                run = list(run_iter)
                run_updates = [update for _, update in run]
                run_overlays = (
                    [overlays[position] for position, _ in run]
                    if overlays is not None
                    else None
                )
                plan = plans.get(relation)
                if plan is None:
                    plan = plans[relation] = self._plan(resolved, relation)
                self._run(resolved, extent, plan, run_updates, run_overlays)
        return self.counters.diff(before)

    def _run(
        self,
        resolved: ViewDefinition,
        extent: Relation,
        plan: MaintenancePlan,
        updates: list[DataUpdate],
        overlays: SizeOverlays = None,
    ) -> None:
        """Propagate + apply one same-relation update run."""
        if self._representation == "dict":
            for position, update in enumerate(updates):
                sizes = overlays[position] if overlays is not None else None
                deltas = self._propagate(resolved, plan, update, sizes)
                self._apply(resolved, extent, deltas, update.kind)
        else:
            batch = self._propagate_tuples(resolved, plan, updates, overlays)
            self._apply_batch(resolved, extent, batch, updates)

    def _resolve(self, view: ViewDefinition) -> ViewDefinition:
        schemas = {
            name: self._space.relation(name).schema
            for name in view.relation_names
        }
        return ViewValidator(schemas).resolve_view(view)

    def _plan(
        self, view: ViewDefinition, updated_relation: str
    ) -> MaintenancePlan:
        owners = {
            name: self._space.owner_of(name).name
            for name in view.relation_names
        }
        return plan_for_view(view, owners, updated_relation)

    # ------------------------------------------------------------------
    # Delta propagation (the Sec. 6.1 sweep) — binding plane
    # ------------------------------------------------------------------
    def _propagate(
        self,
        view: ViewDefinition,
        plan: MaintenancePlan,
        update: DataUpdate,
        sizes: Mapping[str, int] | None = None,
    ) -> list[Binding]:
        condition = view.condition()
        updated_schema = self._space.relation(update.relation).schema
        seed: Binding = {
            f"{update.relation}.{attr}": value
            for attr, value in zip(updated_schema.attribute_names, update.row)
        }
        # Local selections on the updated relation itself prune the seed.
        if not _binding_satisfies(condition, seed):
            deltas: list[Binding] = []
        else:
            deltas = [seed]
        delta_width = updated_schema.tuple_byte_size()

        # The update notification itself (first term of Eq. 21).
        self.counters.record_message(delta_width)

        for index, group in enumerate(plan.groups):
            local = (
                list(plan.first_source_other_relations)
                if index == 0
                else list(group.relations)
            )
            if not local:
                continue  # no query to the updating source (footnote 12)
            source = self._space.source(group.source)
            # Ship the delta (plus the query) down to the source.
            self.counters.record_message(len(deltas) * delta_width)
            self._charge_io(len(deltas), local, sizes)
            deltas = source.answer_single_site_query(
                deltas, local, condition, use_index=self._use_index
            )
            for name in local:
                schema = self._space.relation(name).schema
                delta_width += schema.tuple_byte_size()
            # Ship the joined delta back to the warehouse.
            self.counters.record_message(len(deltas) * delta_width)
        return deltas

    # ------------------------------------------------------------------
    # Delta propagation — compiled planes (tuple and columnar batches)
    # ------------------------------------------------------------------
    def _propagate_tuples(
        self,
        view: ViewDefinition,
        plan: MaintenancePlan,
        updates: list[DataUpdate],
        overlays: SizeOverlays = None,
    ) -> "DeltaBatch | ColumnBatch":
        """One same-relation run through the compiled pipeline.

        Serves both compiled representations — the delta travels as a
        :class:`DeltaBatch` (tuple) or :class:`ColumnBatch` (columnar);
        every accounting statement is shared so the modeled counters
        cannot drift between them.  Message and I/O charges are recorded
        *per update* from the batch's provenance counts, reproducing the
        per-update reference totals exactly (the counters are sums, so
        only the per-update quantities matter, not the interleaving).
        """
        condition = view.condition()
        relation = plan.updated_relation
        updated_schema = self._space.relation(relation).schema
        splan = seed_plan(condition, relation, updated_schema)
        rows: list[tuple] = []
        tags: list[int] = []
        for position, update in enumerate(updates):
            # Local selections on the updated relation prune the seed.
            if splan.predicate(update.row):
                rows.append(update.row)
                tags.append(position)
        columnar = self._representation == "columnar"
        if columnar:
            batch = ColumnBatch.seed(relation, updated_schema, rows, tags)
        else:
            batch = DeltaBatch(splan.columns, rows, tags)
        delta_width = updated_schema.tuple_byte_size()
        counts = batch.counts_by_tag(len(updates))

        # The update notifications themselves (first term of Eq. 21).
        for _ in updates:
            self.counters.record_message(delta_width)

        for index, group in enumerate(plan.groups):
            local = (
                list(plan.first_source_other_relations)
                if index == 0
                else list(group.relations)
            )
            if not local:
                continue  # no query to the updating source (footnote 12)
            source = self._space.source(group.source)
            # Ship each update's delta (plus the query) down to the IS.
            for count in counts:
                self.counters.record_message(count * delta_width)
            for position, count in enumerate(counts):
                self._charge_io(
                    count,
                    local,
                    overlays[position] if overlays is not None else None,
                )
            if columnar:
                batch = source.answer_single_site_columnar(
                    batch,
                    local,
                    condition,
                    use_index=self._use_index,
                    counters=self.kernel_counters,
                )
            else:
                batch = source.answer_single_site_batch(
                    batch, local, condition, use_index=self._use_index
                )
            for name in local:
                schema = self._space.relation(name).schema
                delta_width += schema.tuple_byte_size()
            counts = batch.counts_by_tag(len(updates))
            # Ship each update's joined delta back to the warehouse.
            for count in counts:
                self.counters.record_message(count * delta_width)
        return batch

    def _charge_io(
        self,
        cardinality: int,
        local: list[str],
        sizes: Mapping[str, int] | None = None,
    ) -> None:
        """Appendix A pricing against actual cardinalities.

        Per local relation: the optimizer either scans it once
        (ceil(|R|/bfr)) or probes per delta tuple at
        ceil(js*|R|/bfr) blocks each — whichever is cheaper.
        ``cardinality`` is one update's delta count entering the source.
        ``sizes`` overlays per-relation cardinalities (deferred flushes
        price against the sequential protocol's catalog state).
        """
        bfr = self._statistics.blocking_factor
        js = self._statistics.join_selectivity
        for name in local:
            relation_size = (
                sizes[name]
                if sizes is not None and name in sizes
                else self._space.relation(name).cardinality
            )
            scan = math.ceil(relation_size / bfr) if relation_size else 0
            probe = cardinality * math.ceil(js * relation_size / bfr)
            self.counters.record_io(min(scan, probe) if relation_size else 0)
            cardinality = max(
                1, math.ceil(cardinality * js * relation_size)
            )

    # ------------------------------------------------------------------
    # Applying the delta to the materialized extent
    # ------------------------------------------------------------------
    def _apply(
        self,
        view: ViewDefinition,
        extent: Relation,
        deltas: list[Binding],
        kind: UpdateKind,
    ) -> None:
        keys = [str(item.ref) for item in view.select]
        rows = [tuple(binding[key] for key in keys) for binding in deltas]
        self._apply_rows(view, extent, rows, kind)

    def _apply_batch(
        self,
        view: ViewDefinition,
        extent: Relation,
        batch: "DeltaBatch | ColumnBatch",
        updates: list[DataUpdate],
    ) -> None:
        """Project once, then apply per update in stream order."""
        keys = [str(item.ref) for item in view.select]
        projected = batch.project(keys)
        if batch.tags is None:
            if batch.cardinality:
                raise MaintenanceError(
                    "delta batch carries no provenance tags; cannot map "
                    "rows back to their originating updates"
                )
            tags: list[int] = []
        else:
            tags = batch.tags
        for tag, group in groupby(
            zip(tags, projected), key=lambda pair: pair[0]
        ):
            self._apply_rows(
                view,
                extent,
                [row for _, row in group],
                updates[tag].kind,
            )

    def _apply_rows(
        self,
        view: ViewDefinition,
        extent: Relation,
        rows: list[tuple],
        kind: UpdateKind,
    ) -> None:
        if kind is UpdateKind.INSERT:
            for row in rows:
                extent.insert(row)
        else:
            for row in rows:
                if not extent.delete(row):
                    raise MaintenanceError(
                        f"view {view.name!r} is inconsistent: delta row "
                        f"{row!r} not present during delete propagation"
                    )


def _binding_satisfies(condition, binding: Binding) -> bool:
    """Evaluate the decidable clauses against the seed binding."""
    for clause in condition.clauses:
        if clause_decidable(clause, binding) and not clause.evaluate(binding):
            return False
    return True
