"""Incremental view maintenance — Algorithm 1, executed for real.

The :class:`ViewMaintainer` keeps materialized view extents up to date
after data-content updates, following the non-concurrent protocol of
Sec. 6.1:

1. An IS notifies the warehouse of a one-tuple insert/delete.
2. The maintainer visits each involved source in plan order, sending the
   current delta down as a single-site query and receiving the joined
   delta back (one message each way, bytes = tuples x accumulated width).
3. The final delta is projected onto the view interface and applied to the
   materialized extent (inserts append; deletes remove).

All three cost factors are *measured* via
:class:`~repro.maintenance.counters.MaintenanceCounters`: each message's
byte payload is the actual delta size, and per-source I/O charges the
min(full scan, per-delta-tuple index probes) rule of Appendix A against
the real matching-tuple counts.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import MaintenanceError
from repro.esql.ast import ViewDefinition
from repro.esql.validate import ViewValidator
from repro.misd.statistics import SpaceStatistics
from repro.qc.cost import MaintenancePlan, plan_for_view
from repro.relational.relation import Relation
from repro.space.source import Binding, _clause_decidable
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate, UpdateKind
from repro.maintenance.counters import MaintenanceCounters


class ViewMaintainer:
    """Executes Algorithm 1 against a simulated information space."""

    def __init__(
        self,
        space: InformationSpace,
        statistics: SpaceStatistics | None = None,
        use_index: bool = True,
    ) -> None:
        self._space = space
        self._statistics = (
            statistics if statistics is not None else space.mkb.statistics
        )
        # How single-site queries are *executed* (index probes vs nested
        # loops); the modeled cost counters are identical either way.
        self._use_index = use_index
        self.counters = MaintenanceCounters()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def maintain(
        self,
        view: ViewDefinition,
        extent: Relation,
        update: DataUpdate,
    ) -> MaintenanceCounters:
        """Bring ``extent`` up to date after ``update``; returns the
        counters for this single update."""
        if update.relation not in view.relation_names:
            raise MaintenanceError(
                f"update at {update.relation!r} does not affect view "
                f"{view.name!r}"
            )
        before = MaintenanceCounters(
            self.counters.messages,
            self.counters.bytes_transferred,
            self.counters.io_operations,
        )
        resolved = self._resolve(view)
        plan = self._plan(resolved, update.relation)
        delta_rows = self._propagate(resolved, plan, update)
        self._apply(resolved, extent, delta_rows, update.kind)
        return MaintenanceCounters(
            self.counters.messages - before.messages,
            self.counters.bytes_transferred - before.bytes_transferred,
            self.counters.io_operations - before.io_operations,
        )

    def _resolve(self, view: ViewDefinition) -> ViewDefinition:
        schemas = {
            name: self._space.relation(name).schema
            for name in view.relation_names
        }
        return ViewValidator(schemas).resolve_view(view)

    def _plan(
        self, view: ViewDefinition, updated_relation: str
    ) -> MaintenancePlan:
        owners = {
            name: self._space.owner_of(name).name
            for name in view.relation_names
        }
        return plan_for_view(view, owners, updated_relation)

    # ------------------------------------------------------------------
    # Delta propagation (the Sec. 6.1 sweep)
    # ------------------------------------------------------------------
    def _propagate(
        self,
        view: ViewDefinition,
        plan: MaintenancePlan,
        update: DataUpdate,
    ) -> list[Binding]:
        condition = view.condition()
        updated_schema = self._space.relation(update.relation).schema
        seed: Binding = {
            f"{update.relation}.{attr}": value
            for attr, value in zip(updated_schema.attribute_names, update.row)
        }
        # Local selections on the updated relation itself prune the seed.
        if not _binding_satisfies(condition, seed):
            deltas: list[Binding] = []
        else:
            deltas = [seed]
        widths = {update.relation: updated_schema.tuple_byte_size()}
        delta_width = widths[update.relation]

        # The update notification itself (first term of Eq. 21).
        self.counters.record_message(delta_width)

        for index, group in enumerate(plan.groups):
            local = (
                list(plan.first_source_other_relations)
                if index == 0
                else list(group.relations)
            )
            if not local:
                continue  # no query to the updating source (footnote 12)
            source = self._space.source(group.source)
            # Ship the delta (plus the query) down to the source.
            self.counters.record_message(len(deltas) * delta_width)
            self._charge_io(deltas, local)
            deltas = source.answer_single_site_query(
                deltas, local, condition, use_index=self._use_index
            )
            for name in local:
                schema = self._space.relation(name).schema
                delta_width += schema.tuple_byte_size()
            # Ship the joined delta back to the warehouse.
            self.counters.record_message(len(deltas) * delta_width)
        return deltas

    def _charge_io(self, deltas: list[Binding], local: list[str]) -> None:
        """Appendix A pricing against actual cardinalities.

        Per local relation: the optimizer either scans it once
        (ceil(|R|/bfr)) or probes per delta tuple at
        ceil(js*|R|/bfr) blocks each — whichever is cheaper.
        """
        bfr = self._statistics.blocking_factor
        js = self._statistics.join_selectivity
        cardinality = len(deltas)
        for name in local:
            relation_size = self._space.relation(name).cardinality
            scan = math.ceil(relation_size / bfr) if relation_size else 0
            probe = cardinality * math.ceil(js * relation_size / bfr)
            self.counters.record_io(min(scan, probe) if relation_size else 0)
            cardinality = max(
                1, math.ceil(cardinality * js * relation_size)
            )

    # ------------------------------------------------------------------
    # Applying the delta to the materialized extent
    # ------------------------------------------------------------------
    def _apply(
        self,
        view: ViewDefinition,
        extent: Relation,
        deltas: list[Binding],
        kind: UpdateKind,
    ) -> None:
        keys = [str(item.ref) for item in view.select]
        rows = [tuple(binding[key] for key in keys) for binding in deltas]
        if kind is UpdateKind.INSERT:
            for row in rows:
                extent.insert(row)
        else:
            for row in rows:
                if not extent.delete(row):
                    raise MaintenanceError(
                        f"view {view.name!r} is inconsistent: delta row "
                        f"{row!r} not present during delete propagation"
                    )


def _binding_satisfies(condition, binding: Binding) -> bool:
    """Evaluate the decidable clauses against the seed binding."""
    for clause in condition.clauses:
        if _clause_decidable(clause, binding) and not clause.evaluate(binding):
            return False
    return True
