"""Measured cost counters for the maintenance simulator.

The analytic model of Sec. 6 *estimates* messages, bytes, and I/Os.  The
simulator executes Algorithm 1 for real and counts the same three factors,
so the two can be compared (the paper lists this cross-validation as
future work; our substrate is executable, so we do it).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MaintenanceCounters:
    """Messages, bytes, and I/Os observed during simulated maintenance."""

    messages: int = 0
    bytes_transferred: int = 0
    io_operations: int = 0

    def record_message(self, payload_bytes: int) -> None:
        """One message carrying ``payload_bytes`` of tuple data."""
        self.messages += 1
        self.bytes_transferred += payload_bytes

    def record_io(self, operations: int) -> None:
        self.io_operations += operations

    def snapshot(self) -> "MaintenanceCounters":
        """Immutable copy of the current totals (pair with :meth:`diff`)."""
        return MaintenanceCounters(
            self.messages, self.bytes_transferred, self.io_operations
        )

    def diff(self, earlier: "MaintenanceCounters") -> "MaintenanceCounters":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return MaintenanceCounters(
            self.messages - earlier.messages,
            self.bytes_transferred - earlier.bytes_transferred,
            self.io_operations - earlier.io_operations,
        )

    def merged(self, other: "MaintenanceCounters") -> "MaintenanceCounters":
        return MaintenanceCounters(
            self.messages + other.messages,
            self.bytes_transferred + other.bytes_transferred,
            self.io_operations + other.io_operations,
        )

    def reset(self) -> None:
        self.messages = 0
        self.bytes_transferred = 0
        self.io_operations = 0

    def __str__(self) -> str:
        return (
            f"messages={self.messages} bytes={self.bytes_transferred} "
            f"ios={self.io_operations}"
        )
