"""Incremental view maintenance: Algorithm 1 executed with cost counters.

Public surface:

* :class:`ViewMaintainer` — propagates single-tuple updates (and, via
  :meth:`~repro.maintenance.simulator.ViewMaintainer.maintain_batch`,
  whole update streams) into a materialized extent, measuring
  messages / bytes / I/Os for comparison against the analytic cost
  model of Sec. 6
* :class:`MaintenanceCounters` — the measured factors
* :class:`DeltaBatch` — the compiled positional-tuple delta plane
"""

from repro.maintenance.counters import MaintenanceCounters
from repro.maintenance.delta import DeltaBatch
from repro.maintenance.simulator import ViewMaintainer

__all__ = ["DeltaBatch", "MaintenanceCounters", "ViewMaintainer"]
