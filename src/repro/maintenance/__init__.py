"""Incremental view maintenance: Algorithm 1 executed with cost counters.

Public surface:

* :class:`ViewMaintainer` — propagates single-tuple updates into a
  materialized extent, measuring messages / bytes / I/Os for comparison
  against the analytic cost model of Sec. 6
* :class:`MaintenanceCounters` — the measured factors
"""

from repro.maintenance.counters import MaintenanceCounters
from repro.maintenance.simulator import ViewMaintainer

__all__ = ["MaintenanceCounters", "ViewMaintainer"]
