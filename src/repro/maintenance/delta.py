"""The positional-tuple delta plane of Algorithm 1.

Delta relations in flight used to be shipped between sources as per-row
``dict[str, Any]`` bindings, with every WHERE conjunct re-interpreted per
candidate.  This module owns the compiled alternative: a
:class:`DeltaBatch` is an ordered schema of bound qualified columns plus
a list of positional tuples, mirroring how a real delta accumulates
columns from every relation it has joined with so far.

The per-relation join step is planned *once per (condition, bound-column
layout, relation)* and memoized:

* equijoin conjuncts linking the local relation to an already-bound
  column become index probe keys, with the probe positions resolved into
  tuple slots up front (no per-call key-set intersection);
* every other conjunct that is decidable over the extended layout
  compiles into one positional predicate via
  :mod:`repro.relational.compile` — clause resolution is identical to
  the interpreted ``clause.evaluate(dict)`` path, so both planes accept
  and reject exactly the same candidates;
* conjuncts still missing columns stay latent and fire at the first
  later step whose layout binds them, reproducing the
  "decidable-so-far" semantics of the binding plane.

Batches optionally carry per-row provenance ``tags`` (the index of the
originating update in a batched stream).  Join steps propagate tags row
for row, which is what lets :meth:`ViewMaintainer.maintain_batch` stream
a whole update batch through one compiled pipeline while keeping the
modeled CF_M/CF_T/CF_IO counters byte-identical to the per-update
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from repro.relational.columnar import probe_positions
from repro.relational.compile import (
    ColumnFilter,
    RowPredicate,
    compile_clauses,
    compile_clauses_kernel,
    layout_slots,
    resolve_slot,
)
from repro.relational.expressions import Condition, PrimitiveClause
from repro.relational.relation import Relation
from repro.relational.schema import Schema

# The clause classifiers are shared with the binding plane: both planes
# must plan joins from one implementation so their candidate acceptance
# can never drift apart.  (Importing space.source here is cycle-safe —
# its only maintenance import is deferred into the batch entry point.)
from repro.space.source import partition_local_clauses, probe_pair

Row = tuple[Any, ...]


# ----------------------------------------------------------------------
# The batch itself
# ----------------------------------------------------------------------
@dataclass
class DeltaBatch:
    """An in-flight delta relation: bound columns + positional tuples.

    ``columns`` is the accumulated, ordered schema of fully qualified
    column names (``"R.A"``); every row is a tuple aligned with it.
    ``tags`` (optional) carries one provenance index per row — the
    position of the originating update in a batched stream — so batched
    accounting can recover per-update cardinalities at every stage.
    """

    columns: tuple[str, ...]
    rows: list[Row]
    tags: list[int] | None = None

    @classmethod
    def seed(
        cls,
        relation: str,
        schema: Schema,
        rows: Sequence[Row],
        tags: list[int] | None = None,
    ) -> "DeltaBatch":
        """The initial delta: the updated relation's columns and rows."""
        return cls(seed_columns(relation, schema), list(rows), tags)

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def counts_by_tag(self, updates: int) -> list[int]:
        """Per-update row counts (requires provenance tags)."""
        counts = [0] * updates
        if self.tags is not None:
            for tag in self.tags:
                counts[tag] += 1
        elif self.rows:
            raise ValueError("batch carries no provenance tags")
        return counts

    def project(self, keys: Sequence[str]) -> list[Row]:
        """Rows projected onto ``keys`` (exact qualified-column lookup).

        Missing keys raise :class:`KeyError`, exactly like the binding
        plane's ``binding[key]`` projection.
        """
        slots = layout_slots(self.columns)
        positions = [slots[key] for key in keys]
        return [tuple(row[p] for p in positions) for row in self.rows]


def seed_columns(relation: str, schema: Schema) -> tuple[str, ...]:
    return tuple(f"{relation}.{attr}" for attr in schema.attribute_names)


@dataclass
class ColumnBatch:
    """A delta batch stored column-wise: one list per bound column.

    The columnar counterpart of :class:`DeltaBatch`: same ordered layout
    of fully qualified column names, but the payload is ``cols`` —
    parallel equal-length value lists — instead of row tuples.  ``tags``
    carries per-row provenance exactly like the row form.  The row-wise
    surface (:meth:`rows`, :meth:`project`) materializes on demand, so
    extent application code is shared between batch forms.
    """

    columns: tuple[str, ...]
    cols: list[list]
    tags: list[int] | None = None

    @classmethod
    def seed(
        cls,
        relation: str,
        schema: Schema,
        rows: Sequence[Row],
        tags: list[int] | None = None,
    ) -> "ColumnBatch":
        """The initial delta, transposed into columns."""
        columns = seed_columns(relation, schema)
        if rows:
            cols = list(map(list, zip(*rows)))
        else:
            cols = [[] for _ in columns]
        return cls(columns, cols, tags)

    @property
    def cardinality(self) -> int:
        return len(self.cols[0]) if self.cols else 0

    @property
    def rows(self) -> list[Row]:
        """The row-tuple rendition (materialized on demand)."""
        return list(zip(*self.cols)) if self.cardinality else []

    def counts_by_tag(self, updates: int) -> list[int]:
        """Per-update row counts (requires provenance tags)."""
        counts = [0] * updates
        if self.tags is not None:
            for tag in self.tags:
                counts[tag] += 1
        elif self.cardinality:
            raise ValueError("batch carries no provenance tags")
        return counts

    def project(self, keys: Sequence[str]) -> list[Row]:
        """Rows projected onto ``keys`` (exact qualified-column lookup)."""
        slots = layout_slots(self.columns)
        picked = [self.cols[slots[key]] for key in keys]
        return list(zip(*picked)) if self.cardinality else []


# ----------------------------------------------------------------------
# Compiled plans (memoized per layout)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeedPlan:
    """Seed layout + the compiled local-selection filter."""

    columns: tuple[str, ...]
    #: Conjunction of the condition's clauses decidable at the seed
    #: layout (local selections on the updated relation itself).
    predicate: RowPredicate


@dataclass(frozen=True)
class ColumnStepPlan:
    """One join step compiled into column kernels (the columnar plane).

    Field roles mirror :class:`StepPlan` clause for clause; the compiled
    artifacts are :class:`~repro.relational.compile.ColumnFilter`
    conjunctions over the extended column layout (or the local relation's
    own layout, for ``local_filter``) and schema positions for the
    vectorized probe.
    """

    relation: str
    new_columns: tuple[str, ...]
    #: Schema positions of the local probe attributes (feeds the column
    #: store's position index); empty on the cross-join path.
    probe_positions: tuple[int, ...]
    #: Column indexes (into the *incoming* batch) feeding the probe key.
    probe_slots: tuple[int, ...]
    residual: ColumnFilter
    local_filter: ColumnFilter | None
    cross: ColumnFilter
    full: ColumnFilter


@dataclass(frozen=True)
class StepPlan:
    """One local-relation join step, compiled against a fixed layout."""

    relation: str
    new_columns: tuple[str, ...]
    #: Local attributes to index on; empty when no equijoin links the
    #: relation to a bound column (the cross-join path applies then).
    probe_attrs: tuple[str, ...]
    #: Tuple slots (into the *incoming* rows) feeding the probe key.
    probe_slots: tuple[int, ...]
    #: Probe path: decidable residual clauses over the extended layout.
    residual: RowPredicate
    #: Cross path: clauses local to this relation, over the local row
    #: alone — prunes the relation once before the cross join.
    local_filter: RowPredicate | None
    #: Cross path: decidable non-local clauses over the extended layout.
    cross: RowPredicate
    #: Nested-loop path: every decidable clause (probes included) over
    #: the extended layout — the ``use_index=False`` reference.
    full: RowPredicate


def _decidable(
    clauses: Sequence[PrimitiveClause], slots: dict[str, int]
) -> list[PrimitiveClause]:
    """Clauses whose operands all resolve in ``slots``.

    Mirrors ``_clause_decidable`` of the binding plane: qualified-name
    resolution with the (never-matching, for qualified layouts)
    bare-name fallback of :func:`repro.relational.compile.resolve_slot`.
    """
    return [
        clause
        for clause in clauses
        if all(
            resolve_slot(ref, slots) is not None
            for ref in clause.attribute_refs
        )
    ]


#: (clauses, incoming columns, relation, attribute names) -> StepPlan.
#: FIFO-capped: layouts recur per (view, updated relation) pair, so a
#: handful of entries serve an entire storm; the cap only guards
#: pathological clause diversity.
_STEP_PLANS: dict[tuple, StepPlan] = {}
_COLUMN_STEP_PLANS: dict[tuple, ColumnStepPlan] = {}
_SEED_PLANS: dict[tuple, SeedPlan] = {}
_MAX_CACHED_PLANS = 512


def _cached(cache: dict, key: tuple, build) -> Any:
    try:
        plan = cache.get(key)
    except TypeError:  # unhashable constant in a clause — build uncached
        return build()
    if plan is None:
        plan = build()
        if len(cache) >= _MAX_CACHED_PLANS:
            cache.pop(next(iter(cache)))
        cache[key] = plan
    return plan


def seed_plan(
    condition: Condition, relation: str, schema: Schema
) -> SeedPlan:
    """Memoized seed layout + compiled decidable-clause filter."""
    clauses = tuple(condition.clauses)
    key = (clauses, relation, schema.attribute_names)

    def build() -> SeedPlan:
        columns = seed_columns(relation, schema)
        slots = layout_slots(columns)
        return SeedPlan(columns, compile_clauses(_decidable(clauses, slots), slots))

    return _cached(_SEED_PLANS, key, build)


def step_plan(
    condition: Condition,
    columns: tuple[str, ...],
    name: str,
    schema: Schema,
) -> StepPlan:
    """Memoized join-step plan for one local relation.

    The probe-key plan (which conjuncts probe, and through which tuple
    slots) is computed here once per layout instead of re-intersecting
    bound-key sets per call, and the residual predicates compile once
    per (condition, bound-columns) layout.
    """
    clauses = tuple(condition.clauses)
    key = (clauses, columns, name, schema.attribute_names)

    def build() -> StepPlan:
        bound = frozenset(columns)
        probe_attrs: list[str] = []
        probe_columns: list[str] = []
        residual_clauses: list[PrimitiveClause] = []
        for clause in clauses:
            pair = probe_pair(clause, name, schema, bound)
            if pair is not None:
                probe_attrs.append(pair[0])
                probe_columns.append(pair[1])
            else:
                residual_clauses.append(clause)

        incoming = layout_slots(columns)
        local_columns = seed_columns(name, schema)
        new_columns = columns + local_columns
        new_slots = layout_slots(new_columns)

        local_only, others = partition_local_clauses(
            residual_clauses, name, schema
        )
        local_slots = layout_slots(local_columns)
        local_filter = (
            compile_clauses(local_only, local_slots) if local_only else None
        )
        return StepPlan(
            relation=name,
            new_columns=new_columns,
            probe_attrs=tuple(probe_attrs),
            probe_slots=tuple(incoming[column] for column in probe_columns),
            residual=compile_clauses(
                _decidable(residual_clauses, new_slots), new_slots
            ),
            local_filter=local_filter,
            cross=compile_clauses(_decidable(others, new_slots), new_slots),
            full=compile_clauses(_decidable(clauses, new_slots), new_slots),
        )

    return _cached(_STEP_PLANS, key, build)


# ----------------------------------------------------------------------
# Executing one single-site query on the tuple plane
# ----------------------------------------------------------------------
def extend_batch(
    provider,
    batch: DeltaBatch,
    local_relations: Sequence[str],
    condition: Condition,
    use_index: bool = True,
) -> DeltaBatch:
    """Join ``batch`` with each local relation in turn (one IS's step).

    ``provider`` is anything with ``relation(name) -> Relation``
    (an :class:`~repro.space.source.InformationSource`).  Candidate
    acceptance and row ordering are identical to the binding plane:
    probes iterate incoming rows in order and index buckets in relation
    order; cross joins iterate incoming x local in order.
    """
    columns, rows, tags = batch.columns, batch.rows, batch.tags
    for name in local_relations:
        local: Relation = provider.relation(name)
        plan = step_plan(condition, columns, name, local.schema)
        out_rows: list[Row] = []
        out_tags: list[int] | None = [] if tags is not None else None
        if use_index and plan.probe_attrs and rows:
            index = local.index_on(plan.probe_attrs)
            slots = plan.probe_slots
            predicate = plan.residual
            for position, row in enumerate(rows):
                key = tuple(row[slot] for slot in slots)
                for local_row in index.probe(key):
                    candidate = row + local_row
                    if predicate(candidate):
                        out_rows.append(candidate)
                        if out_tags is not None:
                            out_tags.append(tags[position])
        elif use_index and rows:
            # No equijoin link: prune the relation once with its local
            # clauses, then cross with the incoming rows.
            local_rows = list(local)
            if plan.local_filter is not None:
                local_rows = [
                    row for row in local_rows if plan.local_filter(row)
                ]
            predicate = plan.cross
            for position, row in enumerate(rows):
                for local_row in local_rows:
                    candidate = row + local_row
                    if predicate(candidate):
                        out_rows.append(candidate)
                        if out_tags is not None:
                            out_tags.append(tags[position])
        else:
            # Nested-loop reference path (also the trivial empty case).
            predicate = plan.full
            for position, row in enumerate(rows):
                for local_row in local:
                    candidate = row + local_row
                    if predicate(candidate):
                        out_rows.append(candidate)
                        if out_tags is not None:
                            out_tags.append(tags[position])
        columns, rows, tags = plan.new_columns, out_rows, out_tags
    return DeltaBatch(columns, rows, tags)


# ----------------------------------------------------------------------
# Executing one single-site query on the columnar plane
# ----------------------------------------------------------------------
def column_step_plan(
    condition: Condition,
    columns: tuple[str, ...],
    name: str,
    schema: Schema,
) -> ColumnStepPlan:
    """Memoized columnar join-step plan for one local relation.

    Clause classification is byte for byte the one :func:`step_plan`
    uses (shared ``probe_pair`` / ``partition_local_clauses`` /
    ``_decidable``), so the columnar plane can never accept a candidate
    either row plane rejects; only the compiled artifact differs.
    """
    clauses = tuple(condition.clauses)
    key = (clauses, columns, name, schema.attribute_names)

    def build() -> ColumnStepPlan:
        bound = frozenset(columns)
        probe_attrs: list[str] = []
        probe_columns: list[str] = []
        residual_clauses: list[PrimitiveClause] = []
        for clause in clauses:
            pair = probe_pair(clause, name, schema, bound)
            if pair is not None:
                probe_attrs.append(pair[0])
                probe_columns.append(pair[1])
            else:
                residual_clauses.append(clause)

        incoming = layout_slots(columns)
        local_columns = seed_columns(name, schema)
        new_columns = columns + local_columns
        new_slots = layout_slots(new_columns)

        local_only, others = partition_local_clauses(
            residual_clauses, name, schema
        )
        # Local-column layout == schema positions, so the local filter
        # runs directly over the relation's column store.
        local_slots = layout_slots(local_columns)
        local_filter = (
            compile_clauses_kernel(local_only, local_slots)
            if local_only
            else None
        )
        return ColumnStepPlan(
            relation=name,
            new_columns=new_columns,
            probe_positions=tuple(
                schema.position(attr) for attr in probe_attrs
            ),
            probe_slots=tuple(incoming[column] for column in probe_columns),
            residual=compile_clauses_kernel(
                _decidable(residual_clauses, new_slots), new_slots
            ),
            local_filter=local_filter,
            cross=compile_clauses_kernel(
                _decidable(others, new_slots), new_slots
            ),
            full=compile_clauses_kernel(
                _decidable(clauses, new_slots), new_slots
            ),
        )

    return _cached(_COLUMN_STEP_PLANS, key, build)


def extend_batch_columnar(
    provider,
    batch: ColumnBatch,
    local_relations: Sequence[str],
    condition: Condition,
    use_index: bool = True,
    counters=None,
) -> ColumnBatch:
    """Join a :class:`ColumnBatch` with each local relation in turn.

    The columnar rendition of :func:`extend_batch`: each step computes
    ``(left, right)`` position vectors (vectorized probe, pre-filtered
    cross product, or full nested loop), narrows them through the
    residual kernel conjunction, and gathers every bound column plus the
    local relation's columns through them.  Candidate acceptance and
    order match both row planes; ``counters`` (a
    :class:`~repro.relational.columnar.KernelCounters`) records rows
    scanned vs selected per kernel.
    """
    columns, cols, tags = batch.columns, batch.cols, batch.tags
    for name in local_relations:
        local: Relation = provider.relation(name)
        schema = local.schema
        plan = column_step_plan(condition, columns, name, schema)
        store = local.column_store()
        incoming = len(cols[0]) if cols else 0
        base = len(columns)

        if use_index and plan.probe_positions and incoming:
            index = store.position_index(plan.probe_positions)
            key_columns = [cols[slot] for slot in plan.probe_slots]
            li, ri = probe_positions(
                key_columns,
                index,
                counters,
                store.index_is_unique(plan.probe_positions),
            )
            residual = plan.residual
        elif use_index and incoming:
            selection = range(store.length)
            if plan.local_filter is not None:
                selection = plan.local_filter(
                    store.columns, selection, counters
                )
            li = [i for i in range(incoming) for _ in selection]
            ri = list(selection) * incoming
            residual = plan.cross
        else:
            # Nested-loop reference path (also the trivial empty case).
            li = [i for i in range(incoming) for _ in range(store.length)]
            ri = list(range(store.length)) * incoming
            residual = plan.full

        if residual.kernels and li:
            layout: list = [None] * len(plan.new_columns)
            for slot in residual.slots:
                if slot >= base:
                    column = store.columns[slot - base]
                    layout[slot] = list(map(column.__getitem__, ri))
                else:
                    column = cols[slot]
                    layout[slot] = list(map(column.__getitem__, li))
            selection = residual(layout, range(len(li)), counters)
            if len(selection) != len(li):
                li = [li[s] for s in selection]
                ri = [ri[s] for s in selection]

        new_cols = [list(map(column.__getitem__, li)) for column in cols]
        for position in range(schema.arity):
            column = store.columns[position]
            new_cols.append(list(map(column.__getitem__, ri)))
        if tags is not None:
            tags = list(map(tags.__getitem__, li))
        columns, cols = plan.new_columns, new_cols
    return ColumnBatch(columns, cols, tags)
