"""The View Knowledge Base (VKB) — Fig. 1's view-space store.

Stores every view defined over the information space together with its
E-SQL evolution preferences (they live inside the
:class:`~repro.esql.ast.ViewDefinition` itself), the current synchronized
definition, and an audit trail of the rewritings applied over the view's
lifetime (Experiment 1 measures view "survival" across exactly this trail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import WorkspaceError
from repro.esql.ast import ViewDefinition
from repro.sync.rewriting import Rewriting


@dataclass
class ViewRecord:
    """Everything the VKB knows about one view."""

    original: ViewDefinition
    current: ViewDefinition
    history: list[Rewriting] = field(default_factory=list)
    alive: bool = True

    @property
    def name(self) -> str:
        return self.original.name

    @property
    def generations(self) -> int:
        """How many synchronizations this view has survived."""
        return len(self.history)


class ViewKnowledgeBase:
    """Registry of views by name, with synchronization bookkeeping."""

    def __init__(self) -> None:
        self._records: dict[str, ViewRecord] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def define(self, view: ViewDefinition) -> ViewRecord:
        if view.name in self._records:
            raise WorkspaceError(f"view {view.name!r} is already defined")
        record = ViewRecord(original=view, current=view)
        self._records[view.name] = record
        return record

    def drop(self, name: str) -> ViewRecord:
        if name not in self._records:
            raise WorkspaceError(f"view {name!r} is not defined")
        return self._records.pop(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __iter__(self) -> Iterator[ViewRecord]:
        return iter(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._records)

    def record(self, name: str) -> ViewRecord:
        try:
            return self._records[name]
        except KeyError:
            raise WorkspaceError(f"view {name!r} is not defined") from None

    def current(self, name: str) -> ViewDefinition:
        return self.record(name).current

    def alive_views(self) -> tuple[ViewRecord, ...]:
        return tuple(r for r in self._records.values() if r.alive)

    def views_referencing(self, relation: str) -> tuple[ViewRecord, ...]:
        """Alive views whose current definition references ``relation``."""
        return tuple(
            record
            for record in self._records.values()
            if record.alive and record.current.references_relation(relation)
        )

    # ------------------------------------------------------------------
    # Synchronization bookkeeping
    # ------------------------------------------------------------------
    def apply_rewriting(self, rewriting: Rewriting) -> ViewRecord:
        """Commit a chosen rewriting as the view's new current definition."""
        record = self.record(rewriting.view.name)
        if not record.alive:
            raise WorkspaceError(
                f"view {record.name!r} is no longer alive and cannot evolve"
            )
        record.current = rewriting.view
        record.history.append(rewriting)
        return record

    def mark_undefined(self, name: str) -> ViewRecord:
        """Record that no legal rewriting exists — the view is deceased."""
        record = self.record(name)
        record.alive = False
        return record
