"""The View Knowledge Base (VKB) — Fig. 1's view-space store.

Stores every view defined over the information space together with its
E-SQL evolution preferences (they live inside the
:class:`~repro.esql.ast.ViewDefinition` itself), the current synchronized
definition, and an audit trail of the rewritings applied over the view's
lifetime (Experiment 1 measures view "survival" across exactly this trail).

The VKB also maintains a **relation → views inverted index** over the
alive views' *current* definitions, kept current across rewritings.
Change and update dispatch over thousands of views is an index lookup
(:meth:`ViewKnowledgeBase.views_referencing`), not a scan; results come
back in view-definition order so dispatch order — and with it the
synchronization log — is identical to the historical full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.errors import WorkspaceError
from repro.esql.ast import ViewDefinition
from repro.sync.rewriting import Rewriting


@dataclass
class ViewRecord:
    """Everything the VKB knows about one view."""

    original: ViewDefinition
    current: ViewDefinition
    history: list[Rewriting] = field(default_factory=list)
    alive: bool = True

    @property
    def name(self) -> str:
        return self.original.name

    @property
    def generations(self) -> int:
        """How many synchronizations this view has survived."""
        return len(self.history)


class ViewKnowledgeBase:
    """Registry of views by name, with synchronization bookkeeping."""

    def __init__(self) -> None:
        self._records: dict[str, ViewRecord] = {}
        #: relation name -> names of alive views currently referencing it.
        self._referencing: dict[str, set[str]] = {}
        #: view name -> definition sequence number (dispatch ordering).
        self._order: dict[str, int] = {}
        self._next_order = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Bumped by every definition-changing operation (define, drop,
        rewriting commit, mark-undefined), so long-lived mirrors of the
        VKB — the sharded worker pool — can detect out-of-band drift
        with one integer compare instead of a deep diff.
        """
        return self._version

    # ------------------------------------------------------------------
    # Inverted index maintenance
    # ------------------------------------------------------------------
    def _index_add(self, record: ViewRecord) -> None:
        for relation in record.current.relation_names:
            self._referencing.setdefault(relation, set()).add(record.name)

    def _index_discard(self, record: ViewRecord) -> None:
        for relation in record.current.relation_names:
            names = self._referencing.get(relation)
            if names is None:
                continue
            names.discard(record.name)
            if not names:
                del self._referencing[relation]

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def define(self, view: ViewDefinition) -> ViewRecord:
        if view.name in self._records:
            raise WorkspaceError(f"view {view.name!r} is already defined")
        record = ViewRecord(original=view, current=view)
        self._records[view.name] = record
        self._order[view.name] = self._next_order
        self._next_order += 1
        self._index_add(record)
        self._version += 1
        return record

    def adopt_record(self, record: ViewRecord, order: int) -> ViewRecord:
        """Install an existing record under an explicit dispatch order.

        Bootstrap path for VKB mirrors (worker shards): reproduces the
        parent registry's ordering exactly, so ``views_referencing`` —
        and with it dispatch and the synchronization log — sort
        identically on both sides.
        """
        if record.name in self._records:
            raise WorkspaceError(f"view {record.name!r} is already defined")
        self._records[record.name] = record
        self._order[record.name] = order
        self._next_order = max(self._next_order, order + 1)
        if record.alive:
            self._index_add(record)
        self._version += 1
        return record

    def drop(self, name: str) -> ViewRecord:
        if name not in self._records:
            raise WorkspaceError(f"view {name!r} is not defined")
        record = self._records.pop(name)
        if record.alive:
            self._index_discard(record)
        del self._order[name]
        self._version += 1
        return record

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __iter__(self) -> Iterator[ViewRecord]:
        return iter(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._records)

    def record(self, name: str) -> ViewRecord:
        try:
            return self._records[name]
        except KeyError:
            raise WorkspaceError(f"view {name!r} is not defined") from None

    def current(self, name: str) -> ViewDefinition:
        return self.record(name).current

    def order_of(self, name: str) -> int:
        """The view's definition sequence number (dispatch order)."""
        self.record(name)  # raise WorkspaceError for unknown views
        return self._order[name]

    def alive_views(self) -> tuple[ViewRecord, ...]:
        return tuple(r for r in self._records.values() if r.alive)

    def views_referencing(self, relation: str) -> tuple[ViewRecord, ...]:
        """Alive views whose current definition references ``relation``.

        Backed by the inverted index — O(affected · log affected), not
        O(all views) — and ordered by view definition sequence, exactly
        like a scan over the registry.
        """
        names = self._referencing.get(relation)
        if not names:
            return ()
        return tuple(
            self._records[name]
            for name in sorted(names, key=self._order.__getitem__)
        )

    # ------------------------------------------------------------------
    # Synchronization bookkeeping
    # ------------------------------------------------------------------
    def apply_rewriting(self, rewriting: Rewriting) -> ViewRecord:
        """Commit a chosen rewriting as the view's new current definition."""
        record = self.record(rewriting.view.name)
        if not record.alive:
            raise WorkspaceError(
                f"view {record.name!r} is no longer alive and cannot evolve"
            )
        self._index_discard(record)
        record.current = rewriting.view
        record.history.append(rewriting)
        self._index_add(record)
        self._version += 1
        return record

    def mark_undefined(self, name: str) -> ViewRecord:
        """Record that no legal rewriting exists — the view is deceased."""
        record = self.record(name)
        if record.alive:
            self._index_discard(record)
        record.alive = False
        self._version += 1
        return record
