"""Cost-aware, deadline-bounded scheduling of batch view synchronization.

PR 2's batched dispatch visits every affected view strictly in view
definition order, one after the other.  This module turns the per-view
replay into an explicit, immutable *work plan* and schedules it:

* **Cost ordering** — work items are ordered cheapest-to-salvage first
  using :meth:`~repro.qc.model.QCModel.cost_lower_bound` (the best-case
  co-hosted maintenance plan of Eq. 24), the standing bound the ROADMAP
  earmarked for exactly this consumer.  When a deadline looms, the views
  most likely to be salvaged cheaply are synchronized first.
* **Deadline degradation** — an optional wall-clock ``budget`` degrades
  gracefully: work dispatched after the budget is exhausted either falls
  back to the ``first_legal`` search policy (the cheap old-EVE baseline;
  ``degrade="first_legal"``) or is parked as an explicit
  :class:`DeferredSynchronization` record (``degrade="defer"``) that
  :meth:`~repro.core.eve.EVESystem.resume_deferred` can replay later.
  ``budget_units`` is the machine-independent twin: a token bucket of
  *modeled* Eq. 24 cost, debited per dispatched view from its salvage
  bound — same degrade/defer semantics, fully deterministic (no wall
  clock), so budgets can be planned offline and asserted in tests.
* **Pluggable executors** — ``serial`` (the reference), ``threads``
  (:class:`~concurrent.futures.ThreadPoolExecutor`), ``processes``
  (fork-based, for true CPU parallelism where the platform offers it;
  falls back to ``serial`` elsewhere, with a one-time
  :class:`RuntimeWarning` and the demotion recorded on the report), and
  ``workers`` (the persistent sharded pool of
  :mod:`repro.sync.workers`: spawn-safe long-lived processes that keep
  their VKB shard and extents warm across batches, shipping only
  deltas).  Whatever the executor, committed winners, QC-Values, and
  extents are identical to the serial reference — enforced by
  ``tests/property/test_scheduler_parity.py``.
* **Chain grouping** — views whose worklists share a changed relation are
  linked into one :class:`ChainGroup` and never split across workers, so
  relation-identity interactions can never race (and coalescing below
  always finds its leader in the same group).
* **Search coalescing** (``coalesce=True``) — the storm workloads define
  many structurally identical views over the same relation; their salvage
  searches are identical up to the view name.  A coalescing scheduler
  runs one search per equivalence class (canonical definition modulo
  name + worklist) and rebinds the committed results to each follower.
  Rebinding is exact: assessments never read the view name, so followers
  receive float-identical QC-Values.

The scheduler talks to the system through the small
:class:`SchedulerRuntime` protocol (implemented by
:class:`~repro.core.eve.EVESystem`), keeping executor/ordering concerns
out of the control plane proper.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from time import perf_counter
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Protocol

from repro.config import ScheduleConfig
from repro.space.changes import SchemaChange
from repro.sync.pipeline import SearchPolicy, StageCounters

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.eve import SynchronizationResult


#: One (batch position, change) entry of a per-view worklist.
WorklistEntry = tuple[int, SchemaChange]


def coalesce_fingerprint(view) -> str:
    """Order-preserving rendition of a view definition, name excluded.

    Two views may coalesce only when a committed leader definition can
    be renamed into the follower's *exact* definition — so unlike the
    assessment cache's :func:`~repro.qc.assessment_cache
    .fingerprint_view` (which sorts and normalizes WHERE conjuncts,
    because assessments are order-insensitive), this fingerprint keeps
    every clause in declared order.  WHERE-order variants therefore
    never coalesce: ``ViewDefinition`` equality is order-sensitive, and
    a follower must end up byte-identical to what its own search would
    have committed.
    """
    select = ",".join(str(item) for item in view.select)
    from_ = ",".join(str(item) for item in view.from_)
    where = ",".join(str(item) for item in view.where)
    return f"{view.extent_parameter}|{select}|{from_}|{where}"


# ----------------------------------------------------------------------
# The immutable work plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ViewWorkItem:
    """One affected view's share of a staged batch, ready to replay."""

    view_name: str
    #: View definition sequence number — fixes plan (= sync log) order.
    order: int
    #: Ordered (batch position, change) pairs relevant to this view.
    worklist: tuple[WorklistEntry, ...]
    #: ``QCModel.cost_lower_bound`` of salvaging this view, priced when
    #: the view first entered the plan; ``inf`` when unpriceable.
    cost_bound: float
    #: Identifier of the chain group (see :class:`ChainGroup`).
    chain_key: str
    #: Canonical identity of the search this item needs (definition
    #: modulo view name + worklist positions); equal keys coalesce.
    coalesce_key: tuple

    @property
    def positions(self) -> tuple[int, ...]:
        return tuple(position for position, _ in self.worklist)


@dataclass(frozen=True)
class ChainGroup:
    """Work items linked by shared changed relations.

    Items in one group always execute on one worker, in plan order —
    the scheduling unit that preserves PR 2's sequential-parity
    semantics for relation-identity interactions.
    """

    key: str
    items: tuple[ViewWorkItem, ...]

    @property
    def cost_bound(self) -> float:
        return min(item.cost_bound for item in self.items)

    @property
    def order(self) -> int:
        return min(item.order for item in self.items)


@dataclass(frozen=True)
class BatchWorkPlan:
    """Everything the scheduler needs to replay one chain-free batch."""

    items: tuple[ViewWorkItem, ...]
    changes: tuple[SchemaChange, ...]
    #: relation name -> (batch position, change) pairs addressing it;
    #: replays consult this to merge changes a rewriting pulled in.
    by_relation: Mapping[str, tuple[WorklistEntry, ...]]

    def changes_on(self, relation: str) -> tuple[WorklistEntry, ...]:
        return self.by_relation.get(relation, ())

    def groups(self) -> tuple[ChainGroup, ...]:
        """Chain groups in plan order (items keep plan order within)."""
        grouped: dict[str, list[ViewWorkItem]] = {}
        for item in self.items:
            grouped.setdefault(item.chain_key, []).append(item)
        return tuple(
            ChainGroup(key, tuple(members))
            for key, members in grouped.items()
        )


def build_work_plan(
    staged: Sequence[tuple[str, int, tuple[WorklistEntry, ...], float, tuple]],
    changes: Sequence[SchemaChange],
) -> BatchWorkPlan:
    """Assemble the immutable plan from staged per-view worklists.

    ``staged`` rows are ``(view_name, order, worklist, cost_bound,
    definition_key)``.  Chain keys are connected components over the
    changed relations each worklist touches (union-find), so views that
    share any changed relation land in the same :class:`ChainGroup`.
    """
    by_relation: dict[str, list[WorklistEntry]] = {}
    for position, change in enumerate(changes):
        by_relation.setdefault(change.relation, []).append((position, change))

    parent: dict[str, str] = {}

    def find(relation: str) -> str:
        root = relation
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[relation] != root:  # path compression
            parent[relation], relation = root, parent[relation]
        return root

    for _, _, worklist, _, _ in staged:
        relations = [change.relation for _, change in worklist]
        for other in relations[1:]:
            parent[find(other)] = find(relations[0])

    items = []
    for view_name, order, worklist, cost_bound, definition_key in staged:
        chain_key = find(worklist[0][1].relation) if worklist else view_name
        coalesce_key = (
            definition_key,
            tuple(position for position, _ in worklist),
        )
        items.append(
            ViewWorkItem(
                view_name, order, worklist, cost_bound, chain_key,
                coalesce_key,
            )
        )
    items.sort(key=lambda item: item.order)
    return BatchWorkPlan(
        tuple(items),
        tuple(changes),
        {name: tuple(entries) for name, entries in by_relation.items()},
    )


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeferredSynchronization:
    """A view the scheduler parked past the budget, replayable later."""

    item: ViewWorkItem
    plan: BatchWorkPlan
    reason: str

    @property
    def view_name(self) -> str:
        return self.item.view_name

    @property
    def cost_bound(self) -> float:
        return self.item.cost_bound


@dataclass
class ItemOutcome:
    """What replaying one work item produced, wherever it ran."""

    item: ViewWorkItem
    results: "tuple[SynchronizationResult, ...]"
    seconds: float
    #: True when the executing process already committed to the live
    #: VKB — serial/threads outcomes, including coalesced followers
    #: (``_run_group`` adopts those on the spot).  False only for
    #: process-executor outcomes, which the parent rebuilds from the
    #: child's rows and must adopt itself.
    committed: bool
    degraded: bool = False
    coalesced: bool = False


@dataclass
class UnitBudgetMeter:
    """Modeled-cost units debited so far against one ``budget_units``.

    A mutable accumulator shared across every scheduler execution of one
    logical run (``apply_changes`` passes one meter to all of a batch's
    chain-split sub-plans, so the bucket covers their sum — the
    modeled-cost analogue of the wall-clock ``deadline_anchor``).
    """

    spent: float = 0.0


@dataclass
class ScheduleReport:
    """The full accounting of one scheduled batch execution."""

    results: "tuple[SynchronizationResult, ...]"
    deferred: tuple[DeferredSynchronization, ...]
    degraded_views: tuple[str, ...]
    per_view_seconds: dict[str, float]
    wall_seconds: float
    executor: str
    workers: int
    coalesced: int
    budget: float | None
    #: Modeled-cost token bucket in force (None when unbudgeted) and
    #: the Eq. 24 units debited by this execution's dispatches.
    budget_units: float | None = None
    units_spent: float = 0.0
    #: The executor that was *requested* when the one reported in
    #: ``executor`` is a silent-no-more demotion (currently only
    #: ``"processes"`` on fork-less platforms); None when the requested
    #: executor actually ran.
    executor_fallback: str | None = None
    #: Per-shard accounting of the ``workers`` executor — one
    #: :class:`~repro.sync.workers.ShardDispatch` per shard the batch
    #: touched (views, chain groups, bytes shipped/received, bootstrap
    #: snapshot bytes, worker wall clock); empty for other executors.
    shards: tuple = ()

    @property
    def counters(self) -> StageCounters:
        """Batch-merged pipeline counters (+ deferral accounting)."""
        merged = StageCounters()
        for result in self.results:
            if result.counters is not None:
                merged = merged.merged(result.counters)
        merged.deferred += len(self.deferred)
        return merged


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
class SchedulerRuntime(Protocol):
    """What the scheduler needs from the system it drives."""

    def replay_item(
        self,
        item: ViewWorkItem,
        plan: BatchWorkPlan,
        policy: SearchPolicy | str | None = None,
    ) -> "list[SynchronizationResult]":
        """Replay one view's worklist, committing to the live VKB."""
        ...

    def adopt_results(
        self, results: "Sequence[SynchronizationResult]"
    ) -> None:
        """Commit results produced elsewhere (fork / coalesced rebind)."""
        ...

    def finalize_view(self, view_name: str) -> None:
        """Rematerialize the view's extent after its worklist replay."""
        ...


#: Fork-side state for the process executor: (runtime, plan, groups,
#: policy overrides).  Set in the parent immediately before the pool
#: forks its workers; index-addressed by :func:`_replay_group_in_fork`.
#: The lock serializes concurrent process-executor runs in one parent —
#: the state must stay stable from the moment it is written until the
#: pool has forked and drained, so overlapping schedules take turns.
_FORK_STATE: dict = {}
_FORK_LOCK = threading.Lock()


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


#: Whether the processes→serial demotion has been announced yet.  One
#: warning per process: the demotion is a platform property, not a
#: per-batch surprise, and storm workloads schedule thousands of
#: batches.  (The report still records it on every affected batch.)
_FALLBACK_WARNED = False


def _warn_fork_fallback() -> None:
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        "executor='processes' requires the fork start method, which this "
        "platform does not offer; falling back to executor='serial'. "
        "Use executor='workers' for spawn-safe process parallelism.",
        RuntimeWarning,
        stacklevel=3,
    )


def _replay_group_in_fork(group_index: int):
    """Worker entry point: replay one chain group in the forked child.

    The child inherited a copy-on-write snapshot of the whole system, so
    the serial replay code runs unchanged against the child's private
    VKB; only (picklable) result rows travel back to the parent, which
    rebuilds the outcomes and adopts them into the live VKB in plan
    order.  The rows are the dedupe format of
    :func:`repro.sync.workers._dedupe_rows`: a coalesced follower ships
    one back-reference to its leader's row instead of re-pickling the
    leader's full result set once per follower — on a storm of
    structurally identical views that is the difference between a
    payload linear in *searches run* and one linear in *views*.
    """
    from repro.sync.workers import _dedupe_rows

    scheduler = _FORK_STATE["scheduler"]
    runtime = _FORK_STATE["runtime"]
    plan = _FORK_STATE["plan"]
    group, policy, degraded = _FORK_STATE["groups"][group_index]
    outcomes = scheduler._run_group(plan, runtime, group, policy, degraded)
    return _dedupe_rows(outcomes)


class SynchronizationScheduler:
    """Orders, budgets, and dispatches a :class:`BatchWorkPlan`.

    Configured declaratively with a
    :class:`~repro.config.ScheduleConfig` (the validated, serializable
    profile slice).  Field semantics:

    ``order``
        ``"cost"`` (default) dispatches chain groups cheapest-to-salvage
        first (ties broken by plan order); ``"plan"`` keeps definition
        order.  Results and the synchronization log are always reported
        in plan order, so ordering only moves *scheduling* priority —
        which views make it under a deadline, and latency under a
        parallel executor.
    ``executor``
        ``"serial"`` | ``"threads"`` | ``"processes"`` (fork; falls back
        to serial where fork is unavailable).
    ``budget`` / ``budget_units`` / ``degrade``
        Wall-clock seconds (``budget``) or a token bucket of modeled
        Eq. 24 cost units (``budget_units``, debited per dispatched
        view from its salvage bound; machine-independent and
        deterministic) after which remaining groups degrade to the
        ``first_legal`` policy (``degrade="first_legal"``) or are parked
        as :class:`DeferredSynchronization` records (``"defer"``).
        Either budget at 0.0 degrades/defers everything
        deterministically; when both are set, whichever exhausts first
        wins.
    ``coalesce``
        Run one search per (definition modulo name, worklist) class and
        rebind results to followers — identical outcomes, large wins on
        storm workloads full of structurally identical views.
    """

    def __init__(self, config: ScheduleConfig | None = None) -> None:
        self.config = config if config is not None else ScheduleConfig()
        #: Lazily created :class:`~repro.sync.workers.ShardedWorkerPool`
        #: (``executor="workers"`` only); survives across executions.
        self._worker_pool = None
        self.executor = self.config.executor
        self.max_workers = self.config.max_workers
        self.budget = self.config.budget
        self.budget_units = self.config.budget_units
        self.degrade = self.config.degrade
        self.order = self.config.order
        self.coalesce = self.config.coalesce

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: BatchWorkPlan,
        runtime: SchedulerRuntime,
        deadline_anchor: float | None = None,
        unit_meter: UnitBudgetMeter | None = None,
    ) -> ScheduleReport:
        """Dispatch the plan; report results/deferrals in plan order.

        ``deadline_anchor`` (a ``perf_counter`` instant) anchors the
        budget clock; callers replaying several plans under one deadline
        (``apply_changes`` over a chain-split batch) pass the same
        anchor to every execution so the budget covers their sum.
        ``unit_meter`` plays the same role for ``budget_units``: one
        shared meter makes the token bucket span every sub-plan of a
        logical run (a fresh meter is created here when omitted).
        """
        wall_started = perf_counter()
        started = (
            wall_started if deadline_anchor is None else deadline_anchor
        )
        if unit_meter is None and self.budget_units is not None:
            unit_meter = UnitBudgetMeter()
        units_before = unit_meter.spent if unit_meter is not None else 0.0
        groups = list(plan.groups())
        if self.order == "cost":
            groups.sort(key=lambda group: (group.cost_bound, group.order))

        executor = self.executor
        executor_fallback = None
        if executor == "processes" and not _fork_available():
            executor = "serial"
            executor_fallback = "processes"
            _warn_fork_fallback()
        if len(groups) <= 1 and executor != "workers":
            # A single chain group gains nothing from thread/fork
            # fan-out.  The workers executor is exempt: every batch
            # must flow through the pool or the shard mirrors would
            # miss the commits and re-bootstrap on the next dispatch.
            executor = "serial"
        workers = self.max_workers or min(8, (os.cpu_count() or 1) + 3)

        outcomes: list[ItemOutcome] = []
        deferred: list[DeferredSynchronization] = []
        shard_dispatches: tuple = ()
        if executor == "serial":
            self._execute_serial(
                plan, runtime, groups, started, unit_meter, outcomes, deferred
            )
            workers = 1
        elif executor == "threads":
            self._execute_threads(
                plan, runtime, groups, started, unit_meter, workers,
                outcomes, deferred,
            )
        elif executor == "workers":
            shard_dispatches = self._execute_workers(
                plan, runtime, groups, started, unit_meter, outcomes,
                deferred,
            )
            workers = self.config.shards or 1
        else:
            self._execute_processes(
                plan, runtime, groups, started, unit_meter, workers,
                outcomes, deferred,
            )

        # Adoption + reporting happen in plan order regardless of the
        # executor's completion order, so the synchronization log (and
        # the VKB commit order for adopted outcomes) is deterministic.
        outcomes.sort(key=lambda outcome: outcome.item.order)
        deferred.sort(key=lambda record: record.item.order)
        deferred_names = {record.view_name for record in deferred}
        results: list = []
        for outcome in outcomes:
            if not outcome.committed:
                runtime.adopt_results(outcome.results)
            results.extend(outcome.results)
        for item in plan.items:
            if item.view_name not in deferred_names:
                runtime.finalize_view(item.view_name)
        return ScheduleReport(
            results=tuple(results),
            deferred=tuple(deferred),
            degraded_views=tuple(
                outcome.item.view_name
                for outcome in outcomes
                if outcome.degraded
            ),
            per_view_seconds={
                outcome.item.view_name: outcome.seconds
                for outcome in outcomes
            },
            wall_seconds=perf_counter() - wall_started,
            executor=executor,
            workers=workers,
            coalesced=sum(1 for outcome in outcomes if outcome.coalesced),
            budget=self.budget,
            budget_units=self.budget_units,
            # Per-execution debit: a shared meter accumulates across a
            # chain-split batch's sub-plans, but each report accounts
            # only its own dispatches.
            units_spent=(
                unit_meter.spent - units_before
                if unit_meter is not None
                else 0.0
            ),
            executor_fallback=executor_fallback,
            shards=shard_dispatches,
        )

    # ------------------------------------------------------------------
    # Budget bookkeeping
    # ------------------------------------------------------------------
    def _over_budget(
        self, started: float, meter: UnitBudgetMeter | None
    ) -> bool:
        if (
            self.budget_units is not None
            and meter is not None
            and meter.spent >= self.budget_units
        ):
            return True
        return (
            self.budget is not None
            and perf_counter() - started >= self.budget
        )

    def _debit(
        self, meter: UnitBudgetMeter | None, group: ChainGroup
    ) -> None:
        """Debit a dispatched group's items from the token bucket.

        Each view is charged its salvage bound (the cost-ordering
        priority); unpriceable views (``inf`` bound) debit nothing —
        they schedule last under cost order anyway, and an infinite
        debit would silently zero the bucket for everyone after them.
        """
        if meter is None:
            return
        for item in group.items:
            if item.cost_bound != float("inf"):
                meter.spent += item.cost_bound

    def _park(
        self,
        plan: BatchWorkPlan,
        group: ChainGroup,
        deferred: list[DeferredSynchronization],
        meter: UnitBudgetMeter | None = None,
    ) -> None:
        if (
            self.budget_units is not None
            and meter is not None
            and meter.spent >= self.budget_units
        ):
            reason = (
                f"budget of {self.budget_units} cost units exhausted "
                f"before dispatch"
            )
        else:
            reason = f"budget of {self.budget}s exhausted before dispatch"
        for item in group.items:
            deferred.append(DeferredSynchronization(item, plan, reason))

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _execute_serial(
        self, plan, runtime, groups, started, meter, outcomes, deferred
    ) -> None:
        for group in groups:
            if self._over_budget(started, meter):
                if self.degrade == "defer":
                    self._park(plan, group, deferred, meter)
                    continue
                outcomes.extend(
                    self._run_group(
                        plan, runtime, group, "first_legal", True
                    )
                )
            else:
                self._debit(meter, group)
                outcomes.extend(
                    self._run_group(plan, runtime, group, None, False)
                )

    def _execute_threads(
        self, plan, runtime, groups, started, meter, workers, outcomes,
        deferred,
    ) -> None:
        pending = list(groups)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            running = set()

            # dispatch() only ever runs on the scheduling thread, so the
            # unit meter is read and debited without synchronization.
            def dispatch() -> None:
                while pending and len(running) < workers:
                    if self._over_budget(started, meter):
                        if self.degrade == "defer":
                            while pending:
                                self._park(
                                    plan, pending.pop(0), deferred, meter
                                )
                            return
                        group = pending.pop(0)
                        running.add(
                            pool.submit(
                                self._run_group, plan, runtime, group,
                                "first_legal", True,
                            )
                        )
                    else:
                        group = pending.pop(0)
                        self._debit(meter, group)
                        running.add(
                            pool.submit(
                                self._run_group, plan, runtime, group,
                                None, False,
                            )
                        )

            dispatch()
            while running:
                done, running = wait(running, return_when=FIRST_COMPLETED)
                for future in done:
                    outcomes.extend(future.result())
                dispatch()

    def _execute_processes(
        self, plan, runtime, groups, started, meter, workers, outcomes,
        deferred,
    ) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # Decide degradation/deferral up front: the fork snapshot is
        # taken once, so budget checks cannot usefully run mid-flight in
        # the children.  A zero/over-run budget degrades everything not
        # already dispatched, exactly like the other executors observe
        # at their dispatch points.
        dispatchable: list[tuple[ChainGroup, str | None, bool]] = []
        for group in groups:
            if self._over_budget(started, meter):
                if self.degrade == "defer":
                    self._park(plan, group, deferred, meter)
                    continue
                dispatchable.append((group, "first_legal", True))
            else:
                self._debit(meter, group)
                dispatchable.append((group, None, False))
        if not dispatchable:
            return
        with _FORK_LOCK:
            _FORK_STATE.update(
                scheduler=self, runtime=runtime, plan=plan,
                groups=dispatchable,
            )
            try:
                context = multiprocessing.get_context("fork")
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(dispatchable)),
                    mp_context=context,
                ) as pool:
                    from repro.sync.workers import _outcomes_from_rows

                    by_order = {item.order: item for item in plan.items}
                    for rows in pool.map(
                        _replay_group_in_fork, range(len(dispatchable))
                    ):
                        _outcomes_from_rows(rows, by_order, outcomes)
            finally:
                _FORK_STATE.clear()

    def _execute_workers(
        self, plan, runtime, groups, started, meter, outcomes, deferred
    ) -> tuple:
        """Dispatch through the persistent sharded worker pool.

        Budget decisions happen up front, exactly like the fork
        executor's: the batch ships as one message per shard, so there
        is no mid-flight dispatch point to re-check the clock at.
        Returns the per-shard :class:`~repro.sync.workers.ShardDispatch`
        accounting rows for the report.
        """
        dispatchable: list[tuple[ChainGroup, str | None, bool]] = []
        for group in groups:
            if self._over_budget(started, meter):
                if self.degrade == "defer":
                    self._park(plan, group, deferred, meter)
                    continue
                dispatchable.append((group, "first_legal", True))
            else:
                self._debit(meter, group)
                dispatchable.append((group, None, False))
        if not dispatchable:
            return ()
        committed, dispatches = self._ensure_pool().run_batch(
            plan, runtime, dispatchable
        )
        outcomes.extend(committed)
        return tuple(dispatches)

    def _ensure_pool(self):
        if self._worker_pool is None:
            from repro.sync.workers import ShardedWorkerPool

            self._worker_pool = ShardedWorkerPool(self.config)
        return self._worker_pool

    def close(self) -> None:
        """Stop the persistent worker pool, if one was ever started.

        Safe to call on any scheduler (no-op without a pool) and safe
        to keep scheduling afterwards — the next ``workers`` dispatch
        re-bootstraps a fresh fleet.
        """
        if self._worker_pool is not None:
            self._worker_pool.close()

    # ------------------------------------------------------------------
    # Group replay (shared by every executor; runs in the child for
    # the process executor)
    # ------------------------------------------------------------------
    def _run_group(
        self,
        plan: BatchWorkPlan,
        runtime: SchedulerRuntime,
        group: ChainGroup,
        policy: str | None,
        degraded: bool,
    ) -> list[ItemOutcome]:
        outcomes: list[ItemOutcome] = []
        leaders: dict[tuple, ItemOutcome] = {}
        for item in group.items:
            leader = leaders.get(item.coalesce_key) if self.coalesce else None
            began = perf_counter()
            if leader is not None:
                results = _rebind_results(leader.results, item.view_name)
                runtime.adopt_results(results)
                outcomes.append(
                    ItemOutcome(
                        item, results, perf_counter() - began,
                        committed=True, degraded=degraded, coalesced=True,
                    )
                )
                continue
            results = tuple(runtime.replay_item(item, plan, policy))
            if degraded:
                for result in results:
                    if result.counters is not None:
                        result.counters.degraded += 1
            outcome = ItemOutcome(
                item, results, perf_counter() - began,
                committed=True, degraded=degraded,
            )
            outcomes.append(outcome)
            if self.coalesce:
                leaders[item.coalesce_key] = outcome
        return outcomes


# ----------------------------------------------------------------------
# Coalescing support
# ----------------------------------------------------------------------
def _rebind_results(
    results: "Sequence[SynchronizationResult]", view_name: str
):
    """Re-target a leader view's results onto a structurally identical
    follower view.

    Only the view *name* differs between leader and follower (that is
    what the coalesce key certifies), and neither candidate generation
    nor quality/cost assessment reads the name — so renaming the
    rewritings inside every evaluation reproduces, float for float, what
    a direct search for the follower would have committed.

    Follower counters are *not* copied from the leader: no search ran
    for the follower, and batch-merged accounting
    (:attr:`ScheduleReport.counters`) must report work actually
    performed.  Followers carry fresh counters with only the
    scheduler-level flags preserved.
    """
    from repro.qc.model import Evaluation

    rebound = []
    for result in results:
        evaluations = tuple(
            Evaluation(
                _rename_rewriting(evaluation.rewriting, view_name),
                evaluation.quality,
                evaluation.cost,
                evaluation.normalized_cost,
                evaluation.qc,
                evaluation.rank,
            )
            for evaluation in result.evaluations
        )
        chosen = None
        if result.chosen is not None:
            for source, target in zip(result.evaluations, evaluations):
                if source is result.chosen:
                    chosen = target
                    break
            if chosen is None:  # chosen not aliased into the list
                chosen = Evaluation(
                    _rename_rewriting(result.chosen.rewriting, view_name),
                    result.chosen.quality,
                    result.chosen.cost,
                    result.chosen.normalized_cost,
                    result.chosen.qc,
                    result.chosen.rank,
                )
        counters = (
            StageCounters(degraded=result.counters.degraded)
            if result.counters is not None
            else None
        )
        rebound.append(
            type(result)(
                view_name,
                result.change,
                list(evaluations),
                chosen,
                counters,
                result.policy,
            )
        )
    return tuple(rebound)


def _rename_rewriting(rewriting, view_name: str):
    from repro.sync.rewriting import Rewriting

    return Rewriting(
        rewriting.original.renamed(view_name),
        rewriting.view.renamed(view_name),
        rewriting.moves,
        rewriting.extent_relationship,
    )
