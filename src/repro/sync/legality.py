"""Legality checking: does a rewriting respect the E-SQL preferences?

A rewriting is *legal* (Sec. 3.3) when every edit it applied is sanctioned
by the evolution parameters of the original view and the resulting extent
relationship complies with the view-extent parameter VE.  The synchronizer
only generates legal rewritings, but this module re-derives legality
independently from the move provenance — it is the referee the tests (and
the QC model's input validation) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.esql.ast import ViewDefinition
from repro.sync.rewriting import (
    AddJoinMove,
    DropAttributeMove,
    DropConditionMove,
    DropRelationMove,
    Move,
    RenameMove,
    ReplaceAttributeMove,
    ReplaceRelationMove,
    Rewriting,
)


@dataclass
class LegalityReport:
    """Outcome of a legality check: verdict plus every violation found."""

    legal: bool
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.legal


def check_legality(rewriting: Rewriting) -> LegalityReport:
    """Full legality audit of ``rewriting`` against its original view."""
    violations: list[str] = []
    original = rewriting.original

    _check_indispensable_outputs(original, rewriting.view, violations)
    dropped_outputs = {
        move.output_name
        for move in rewriting.moves
        if isinstance(move, DropAttributeMove)
    }
    dropped_clauses = {
        move.clause
        for move in rewriting.moves
        if isinstance(move, DropConditionMove)
    }
    for move in rewriting.moves:
        _check_move(original, move, violations, dropped_outputs, dropped_clauses)
    if not rewriting.extent_relationship.satisfies(original.extent_parameter):
        violations.append(
            f"extent relationship {rewriting.extent_relationship} violates "
            f"VE = '{original.extent_parameter}'"
        )
    return LegalityReport(legal=not violations, violations=violations)


def is_legal(rewriting: Rewriting) -> bool:
    """Convenience wrapper over :func:`check_legality`."""
    return check_legality(rewriting).legal


def _check_indispensable_outputs(
    original: ViewDefinition, view: ViewDefinition, violations: list[str]
) -> None:
    """Every AD=false attribute of the original must survive by name."""
    surviving = set(view.interface)
    for item in original.select:
        if not item.flags.dispensable and item.output_name not in surviving:
            violations.append(
                f"indispensable attribute {item.output_name!r} was dropped"
            )


def _check_move(
    original: ViewDefinition,
    move: Move,
    violations: list[str],
    dropped_outputs: set[str] = frozenset(),
    dropped_clauses: set = frozenset(),
) -> None:
    if isinstance(move, DropAttributeMove):
        item = _find_select(original, move.output_name)
        if item is None:
            violations.append(
                f"drop of unknown attribute {move.output_name!r}"
            )
        elif not item.flags.dispensable:
            violations.append(
                f"attribute {move.output_name!r} is indispensable (AD=false) "
                "but was dropped"
            )
    elif isinstance(move, DropConditionMove):
        item = _find_where(original, move)
        if item is None:
            violations.append(f"drop of unknown condition ({move.clause})")
        elif not item.flags.dispensable:
            violations.append(
                f"condition ({move.clause}) is indispensable (CD=false) "
                "but was dropped"
            )
    elif isinstance(move, DropRelationMove):
        item = _find_from(original, move.relation)
        if item is None:
            violations.append(f"drop of unknown relation {move.relation!r}")
        elif not item.flags.dispensable:
            violations.append(
                f"relation {move.relation!r} is indispensable (RD=false) "
                "but was dropped"
            )
    elif isinstance(move, ReplaceRelationMove):
        item = _find_from(original, move.old_relation)
        if item is None:
            violations.append(
                f"replacement of unknown relation {move.old_relation!r}"
            )
        elif not item.flags.replaceable:
            violations.append(
                f"relation {move.old_relation!r} is non-replaceable "
                "(RR=false) but was replaced"
            )
        else:
            _check_component_replaceability(
                original,
                move.old_relation,
                violations,
                dropped_outputs,
                dropped_clauses,
            )
    elif isinstance(move, ReplaceAttributeMove):
        select_item = next(
            (i for i in original.select if i.ref == move.old), None
        )
        if select_item is not None and not select_item.flags.replaceable:
            violations.append(
                f"attribute {move.old} is non-replaceable (AR=false) "
                "but was replaced"
            )
        for where_item in original.where:
            if move.old in where_item.clause.attribute_refs:
                if not where_item.flags.replaceable:
                    violations.append(
                        f"condition ({where_item.clause}) is non-replaceable "
                        "(CR=false) but was rewritten"
                    )
    elif isinstance(move, (AddJoinMove, RenameMove)):
        # Joining in a carrier relation and pure renames never violate
        # preferences by themselves.
        return


def _check_component_replaceability(
    original: ViewDefinition,
    relation: str,
    violations: list[str],
    dropped_outputs: set[str],
    dropped_clauses: set,
) -> None:
    """Replacing a relation rewrites the items sourced from it.

    Each *surviving* SELECT item taken from the relation must be AR=true;
    each surviving WHERE conjunct mentioning it must be CR=true.  Items
    that a sibling drop move removed are audited by that move instead.
    """
    for item in original.select_items_from(relation):
        if item.output_name in dropped_outputs:
            continue
        if not item.flags.replaceable:
            violations.append(
                f"attribute {item.ref} is non-replaceable (AR=false) but its "
                f"relation {relation!r} was replaced"
            )
    for item in original.where_items_on(relation):
        if item.clause in dropped_clauses:
            continue
        if not item.flags.replaceable:
            violations.append(
                f"condition ({item.clause}) is non-replaceable (CR=false) "
                f"but its relation {relation!r} was replaced"
            )


def _find_select(view: ViewDefinition, output_name: str):
    return next(
        (i for i in view.select if i.output_name == output_name), None
    )


def _find_where(view: ViewDefinition, move: DropConditionMove):
    return next((i for i in view.where if i.clause == move.clause), None)


def _find_from(view: ViewDefinition, relation: str):
    return next((i for i in view.from_ if i.relation == relation), None)
