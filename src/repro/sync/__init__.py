"""View synchronization: detecting affected views and rewriting them.

Public surface:

* :class:`ViewKnowledgeBase` / :class:`ViewRecord` — the VKB of Fig. 1
* :class:`ViewSynchronizer` — legal-rewriting generation (SVS/CVS moves,
  pluggable :mod:`repro.sync.generators` strategies)
* :class:`RewritingSearchPipeline` / :class:`SearchPolicy` /
  :class:`StageCounters` — the streaming synchronize-and-rank pipeline
* :class:`Rewriting`, the :class:`Move` hierarchy,
  :class:`ExtentRelationship` — rewriting provenance
* :func:`check_legality` / :func:`is_legal` — independent legality audit
"""

from repro.sync.legality import LegalityReport, check_legality, is_legal
from repro.sync.rewriting import (
    AddJoinMove,
    DropAttributeMove,
    DropConditionMove,
    DropRelationMove,
    ExtentRelationship,
    Move,
    RenameMove,
    ReplaceAttributeMove,
    ReplaceRelationMove,
    Rewriting,
    combine_extent,
)
from repro.sync.synchronizer import ViewSynchronizer
from repro.sync.vkb import ViewKnowledgeBase, ViewRecord

__all__ = [
    "AddJoinMove",
    "DropAttributeMove",
    "DropConditionMove",
    "DropRelationMove",
    "ExtentRelationship",
    "LegalityReport",
    "Move",
    "RenameMove",
    "ReplaceAttributeMove",
    "ReplaceRelationMove",
    "Rewriting",
    "ViewKnowledgeBase",
    "ViewRecord",
    "ViewSynchronizer",
    "check_legality",
    "combine_extent",
    "is_legal",
]

from repro.sync.heuristic import HeuristicOutcome, HeuristicSynchronizer

__all__ += ["HeuristicOutcome", "HeuristicSynchronizer"]

from repro.sync.pipeline import (
    PipelineResult,
    RewritingSearchPipeline,
    SearchPolicy,
    StageCounters,
)

__all__ += [
    "PipelineResult",
    "RewritingSearchPipeline",
    "SearchPolicy",
    "StageCounters",
]

from repro.sync.scheduler import (
    BatchWorkPlan,
    ChainGroup,
    DeferredSynchronization,
    ScheduleReport,
    SynchronizationScheduler,
    ViewWorkItem,
    build_work_plan,
    coalesce_fingerprint,
)

__all__ += [
    "BatchWorkPlan",
    "ChainGroup",
    "DeferredSynchronization",
    "ScheduleReport",
    "SynchronizationScheduler",
    "ViewWorkItem",
    "build_work_plan",
    "coalesce_fingerprint",
]
