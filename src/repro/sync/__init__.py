"""View synchronization: detecting affected views and rewriting them.

Public surface:

* :class:`ViewKnowledgeBase` / :class:`ViewRecord` — the VKB of Fig. 1
* :class:`ViewSynchronizer` — legal-rewriting generation (SVS/CVS moves,
  pluggable :mod:`repro.sync.generators` strategies)
* :class:`RewritingSearchPipeline` / :class:`SearchPolicy` /
  :class:`StageCounters` — the streaming synchronize-and-rank pipeline
* :class:`Rewriting`, the :class:`Move` hierarchy,
  :class:`ExtentRelationship` — rewriting provenance
* :func:`check_legality` / :func:`is_legal` — independent legality audit
"""

from repro.sync.heuristic import HeuristicOutcome, HeuristicSynchronizer
from repro.sync.legality import LegalityReport, check_legality, is_legal
from repro.sync.pipeline import (
    PipelineResult,
    RewritingSearchPipeline,
    SearchPolicy,
    StageCounters,
)
from repro.sync.rewriting import (
    AddJoinMove,
    DropAttributeMove,
    DropConditionMove,
    DropRelationMove,
    ExtentRelationship,
    Move,
    RenameMove,
    ReplaceAttributeMove,
    ReplaceRelationMove,
    Rewriting,
    combine_extent,
)
from repro.sync.scheduler import (
    BatchWorkPlan,
    ChainGroup,
    DeferredSynchronization,
    ScheduleReport,
    SynchronizationScheduler,
    ViewWorkItem,
    build_work_plan,
    coalesce_fingerprint,
)
from repro.sync.synchronizer import ViewSynchronizer
from repro.sync.vkb import ViewKnowledgeBase, ViewRecord

__all__ = [
    "AddJoinMove",
    "BatchWorkPlan",
    "ChainGroup",
    "DeferredSynchronization",
    "DropAttributeMove",
    "DropConditionMove",
    "DropRelationMove",
    "ExtentRelationship",
    "HeuristicOutcome",
    "HeuristicSynchronizer",
    "LegalityReport",
    "Move",
    "PipelineResult",
    "RenameMove",
    "ReplaceAttributeMove",
    "ReplaceRelationMove",
    "Rewriting",
    "RewritingSearchPipeline",
    "ScheduleReport",
    "SearchPolicy",
    "StageCounters",
    "SynchronizationScheduler",
    "ViewKnowledgeBase",
    "ViewRecord",
    "ViewSynchronizer",
    "ViewWorkItem",
    "build_work_plan",
    "check_legality",
    "coalesce_fingerprint",
    "combine_extent",
    "is_legal",
]
