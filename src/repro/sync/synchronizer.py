"""The View Synchronizer: generate legal rewritings for an affected view.

Re-implements the rewriting generation the paper builds on (the SVS
algorithm of [LNR97b] and the relation-substitution core of the CVS
algorithm [NLR98]) to the extent the QC-Model experiments exercise it:

* **Drop moves** — dispensable attributes, conditions, or whole relations
  are removed from the view (SVS).
* **Replacement moves** — a deleted relation (or one that lost an
  attribute) is substituted by another relation related to it through a PC
  constraint; attribute names are translated through the constraint's
  positional correspondence, the constraint's right-side selection is
  folded into the WHERE clause, and uncovered dispensable components are
  dropped alongside (CVS).
* **Attribute replacement moves** — a single deleted attribute is
  redirected to an equivalent attribute of another relation, joining that
  relation in via a join constraint when it is not already in the view.
* **Renames** — change-relation-name / change-attribute-name fold into the
  definition and always yield one equivalent rewriting.

Every emitted rewriting is legal by construction (the preconditions mirror
:mod:`repro.sync.legality`) and carries its move provenance plus the
inferred extent relationship, filtered against the view's VE parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from repro.esql.ast import FromItem, SelectItem, ViewDefinition, WhereItem
from repro.esql.params import EvolutionFlags
from repro.esql.validate import ViewValidator
from repro.misd.constraints import PCConstraint
from repro.misd.mkb import MetaKnowledgeBase
from repro.relational.expressions import AttributeRef
from repro.space.changes import (
    AddAttribute,
    AddRelation,
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
    SchemaChange,
)
from repro.sync.rewriting import (
    AddJoinMove,
    DropAttributeMove,
    DropConditionMove,
    DropRelationMove,
    ExtentRelationship,
    Move,
    RenameMove,
    ReplaceAttributeMove,
    ReplaceRelationMove,
    Rewriting,
)

#: Flags given to components the synchronizer introduces itself (join
#: clauses, PC selection clauses).  They are dispensable+replaceable so
#: future synchronizations can evolve them again.
_SYNTHETIC_FLAGS = EvolutionFlags(dispensable=True, replaceable=True)

#: Upper bound on the dominated-variant spectrum per base rewriting.
_MAX_DOMINATED_VARIANTS = 32


@dataclass(frozen=True)
class _Route:
    """One way to reach a live replacement relation from a lost one.

    ``attribute_map`` translates the lost relation's attributes to the
    donor's; ``constraints`` is the PC path (length 1 for direct routes);
    ``donor_selection`` is the right-side selection to fold into the
    rewritten WHERE clause, phrased over the donor, or None.
    """

    donor: str
    attribute_map: dict[str, str]
    extent: ExtentRelationship
    constraints: tuple[PCConstraint, ...]
    donor_selection: object | None = None


class ViewSynchronizer:
    """Generates legal rewritings from MKB knowledge (Sec. 3.3).

    ``cache`` (optional, shared with the QC-Model via
    :class:`~repro.qc.assessment_cache.AssessmentCache`) memoizes view
    resolution against the historical MKB schemas — every capability
    change re-synchronizes every affected view, and resolution is pure
    given the MKB state, so the owner invalidates the cache whenever that
    state moves.
    """

    def __init__(self, mkb: MetaKnowledgeBase, cache=None) -> None:
        self._mkb = mkb
        self._cache = cache

    # ------------------------------------------------------------------
    # Affectedness
    # ------------------------------------------------------------------
    def is_affected(self, view: ViewDefinition, change: SchemaChange) -> bool:
        """Whether ``change`` invalidates (or renames under) ``view``."""
        if not view.references_relation(change.relation):
            return False
        if isinstance(change, (AddRelation, AddAttribute)):
            return False
        if isinstance(change, (DeleteRelation, RenameRelation)):
            return True
        if isinstance(change, (DeleteAttribute, RenameAttribute)):
            return self._view_uses_attribute(
                view, change.relation, change.attribute
            )
        return False

    @staticmethod
    def _view_uses_attribute(
        view: ViewDefinition, relation: str, attribute: str
    ) -> bool:
        if any(
            item.ref.matches(attribute, relation) for item in view.select
        ):
            return True
        return any(
            item.references(attribute, relation) for item in view.where
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def synchronize(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        include_dominated: bool = False,
    ) -> list[Rewriting]:
        """All legal rewritings of ``view`` under ``change``.

        Returns an empty list when the view cannot be salvaged (it must
        then be marked undefined).  ``include_dominated`` additionally
        enumerates the footnote-2 "spectrum": variants that drop further
        dispensable attributes and are strictly inferior in information
        preservation — useful for studying the full candidate space.
        """
        view = self._resolve(view)
        if not self.is_affected(view, change):
            return [Rewriting(view, view, (), ExtentRelationship.EQUAL)]

        if isinstance(change, RenameRelation):
            candidates = [self._rename_relation(view, change)]
        elif isinstance(change, RenameAttribute):
            candidates = [self._rename_attribute(view, change)]
        elif isinstance(change, DeleteRelation):
            candidates = list(self._sync_relation_loss(view, change.relation))
        elif isinstance(change, DeleteAttribute):
            candidates = list(
                self._sync_attribute_loss(view, change.relation, change.attribute)
            )
        else:  # pragma: no cover - adds never affect
            candidates = []

        legal = [
            rewriting
            for rewriting in candidates
            if rewriting.extent_relationship.satisfies(view.extent_parameter)
        ]
        if include_dominated:
            legal = self._with_dominated_spectrum(legal)
        return _deduplicate(legal)

    def _resolve(self, view: ViewDefinition) -> ViewDefinition:
        """Fully qualify the view against (historical) MKB schemas."""
        if self._cache is not None:
            return self._cache.resolved_view(
                view,
                lambda: self._resolve_uncached(view),
                token=self._mkb.version,
            )
        return self._resolve_uncached(view)

    def _resolve_uncached(self, view: ViewDefinition) -> ViewDefinition:
        schemas = {}
        for name in view.relation_names:
            schemas[name] = self._mkb.historical_schema(name)
        return ViewValidator(schemas).resolve_view(view)

    # ------------------------------------------------------------------
    # Renames (always one equivalent rewriting)
    # ------------------------------------------------------------------
    def _rename_relation(
        self, view: ViewDefinition, change: RenameRelation
    ) -> Rewriting:
        new_view = view.replacing_relation(change.relation, change.new_name)
        move = RenameMove(
            f"rename relation {change.relation} -> {change.new_name}"
        )
        return Rewriting(view, new_view, (move,), ExtentRelationship.EQUAL)

    def _rename_attribute(
        self, view: ViewDefinition, change: RenameAttribute
    ) -> Rewriting:
        old = AttributeRef(change.attribute, change.relation)
        new = AttributeRef(change.new_name, change.relation)
        new_view = view.replacing_attribute(old, new)
        move = RenameMove(
            f"rename attribute {old} -> {new}"
        )
        return Rewriting(view, new_view, (move,), ExtentRelationship.EQUAL)

    # ------------------------------------------------------------------
    # delete-relation
    # ------------------------------------------------------------------
    def _sync_relation_loss(
        self, view: ViewDefinition, relation: str
    ) -> Iterable[Rewriting]:
        drop = self._drop_relation_move(view, relation)
        if drop is not None:
            yield drop
        yield from self._replacement_rewritings(view, relation)

    def _drop_relation_move(
        self, view: ViewDefinition, relation: str
    ) -> Rewriting | None:
        """The SVS move: remove the relation and everything on it."""
        from_item = view.from_item(relation)
        if not from_item.flags.dispensable:
            return None
        affected_select = view.select_items_from(relation)
        affected_where = view.where_items_on(relation)
        if any(not item.flags.dispensable for item in affected_select):
            return None
        if any(not item.flags.dispensable for item in affected_where):
            return None
        try:
            new_view = view.dropping_relation(relation)
        except Exception:  # empties the interface or the FROM clause
            return None
        moves: list[Move] = [DropRelationMove(relation)]
        moves.extend(
            DropAttributeMove(item.output_name, item.ref)
            for item in affected_select
        )
        moves.extend(DropConditionMove(item.clause) for item in affected_where)
        # Removing join/selection conditions can only widen the extent on
        # the surviving attributes.
        extent = (
            ExtentRelationship.SUPERSET
            if affected_where
            else ExtentRelationship.EQUAL
        )
        return Rewriting(view, new_view, tuple(moves), extent)

    # ------------------------------------------------------------------
    # delete-attribute
    # ------------------------------------------------------------------
    def _sync_attribute_loss(
        self, view: ViewDefinition, relation: str, attribute: str
    ) -> Iterable[Rewriting]:
        drop = self._drop_attribute_move(view, relation, attribute)
        if drop is not None:
            yield drop
        yield from self._attribute_replacement_rewritings(
            view, relation, attribute
        )
        # The Sec. 7.6 heuristic: replacing the whole relation is also on
        # the table when a single attribute disappears.
        yield from self._replacement_rewritings(view, relation)

    def _drop_attribute_move(
        self, view: ViewDefinition, relation: str, attribute: str
    ) -> Rewriting | None:
        """Remove every reference to the lost attribute (SVS move)."""
        ref = AttributeRef(attribute, relation)
        affected_select = [
            item for item in view.select if item.ref == ref
        ]
        affected_where = [
            item for item in view.where if ref in item.clause.attribute_refs
        ]
        if any(not item.flags.dispensable for item in affected_select):
            return None
        if any(not item.flags.dispensable for item in affected_where):
            return None
        working = view
        moves: list[Move] = []
        for item in affected_select:
            if len(working.select) == 1:
                return None  # would empty the interface
            working = working.dropping_select_item(item.output_name)
            moves.append(DropAttributeMove(item.output_name, item.ref))
        for item in affected_where:
            index = next(
                i for i, w in enumerate(working.where) if w.clause == item.clause
            )
            working = working.dropping_where_item(index)
            moves.append(DropConditionMove(item.clause))
        if not moves:
            return None
        extent = (
            ExtentRelationship.SUPERSET
            if affected_where
            else ExtentRelationship.EQUAL
        )
        return Rewriting(view, working, tuple(moves), extent)

    def _attribute_replacement_rewritings(
        self, view: ViewDefinition, relation: str, attribute: str
    ) -> Iterable[Rewriting]:
        """Redirect the lost attribute to an equivalent one elsewhere."""
        old_ref = AttributeRef(attribute, relation)
        select_items = [i for i in view.select if i.ref == old_ref]
        where_items = [
            i for i in view.where if old_ref in i.clause.attribute_refs
        ]
        if any(not i.flags.replaceable for i in select_items):
            return
        if any(not i.flags.replaceable for i in where_items):
            return
        for pc in self._mkb.sync_pc_constraints(relation):
            if attribute not in pc.left.attributes:
                continue
            donor = pc.right.relation
            if donor not in self._mkb:
                continue
            new_attribute = pc.attribute_map()[attribute]
            if new_attribute not in self._mkb.schema(donor):
                continue  # the donor has since lost the column itself
            new_ref = AttributeRef(new_attribute, donor)
            base_extent = ExtentRelationship.from_pc(pc.relationship)
            if pc.left.has_selection or pc.right.has_selection:
                base_extent = ExtentRelationship.UNKNOWN

            if donor in view.relation_names:
                new_view = view.replacing_attribute(old_ref, new_ref)
                # Value provenance changes; without key knowledge the
                # row-wise correspondence is not guaranteed.
                extent = (
                    ExtentRelationship.EQUAL
                    if base_extent is ExtentRelationship.EQUAL
                    else ExtentRelationship.UNKNOWN
                )
                yield Rewriting(
                    view,
                    new_view,
                    (ReplaceAttributeMove(old_ref, new_ref, pc),),
                    extent,
                )
                continue

            join_clauses = self._join_path_into_view(view, donor, relation)
            if join_clauses is None:
                continue
            new_view = view.adding_from_item(
                FromItem(donor, _SYNTHETIC_FLAGS, self._owner_or_none(donor))
            )
            new_view = new_view.adding_where_items(
                WhereItem(clause, _SYNTHETIC_FLAGS) for clause in join_clauses
            )
            new_view = new_view.replacing_attribute(old_ref, new_ref)
            moves: tuple[Move, ...] = (
                AddJoinMove(donor, tuple(join_clauses)),
                ReplaceAttributeMove(old_ref, new_ref, pc),
            )
            # Joining a carrier relation in can both lose rows (failed
            # matches) and cannot be proven lossless without key metadata.
            yield Rewriting(view, new_view, moves, ExtentRelationship.UNKNOWN)

    def _join_path_into_view(
        self, view: ViewDefinition, donor: str, lost_relation: str
    ):
        """Join clauses connecting ``donor`` to a surviving view relation."""
        for jc in self._mkb.sync_join_constraints(donor):
            partner = jc.other(donor)
            if partner == lost_relation:
                continue
            if partner in view.relation_names:
                return list(jc.condition.clauses)
        return None

    def _owner_or_none(self, relation: str) -> str | None:
        try:
            return self._mkb.owner(relation)
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Relation replacement (CVS core)
    # ------------------------------------------------------------------
    def _replacement_rewritings(
        self, view: ViewDefinition, relation: str
    ) -> Iterable[Rewriting]:
        """Substitute ``relation`` wholesale via each replacement route."""
        from_item = view.from_item(relation)
        if not from_item.flags.replaceable:
            return
        used_select = view.select_items_from(relation)
        used_where = view.where_items_on(relation)
        for route in self._replacement_routes(view, relation):
            rewriting = self._build_replacement(
                view, relation, route, used_select, used_where
            )
            if rewriting is not None:
                yield rewriting

    def _replacement_routes(
        self, view: ViewDefinition, relation: str
    ) -> list["_Route"]:
        """Direct and 2-hop PC routes from ``relation`` to a live donor.

        Direct routes use one constraint.  Transitive routes chain two
        selection-free constraints through an intermediate relation (which
        may itself be dead) — the Experiment 1 situation, where S and T
        are both related to a common ancestor R but not to each other.
        The composed extent effect follows the relationship lattice;
        opposite directions compose to UNKNOWN.
        """
        routes: list[_Route] = []
        seen_donors: set[str] = set()
        for pc in self._mkb.sync_pc_constraints(relation):
            donor = pc.right.relation
            if donor in self._mkb and donor not in view.relation_names:
                extent = ExtentRelationship.from_pc(pc.relationship)
                if pc.left.has_selection:
                    extent = extent.compose(ExtentRelationship.SUBSET)
                routes.append(
                    _Route(
                        donor,
                        pc.attribute_map(),
                        extent,
                        (pc,),
                        pc.right.condition
                        if pc.right.has_selection
                        else None,
                    )
                )
                seen_donors.add(donor)
            # Transitive continuation (only through selection-free hops).
            if pc.left.has_selection or pc.right.has_selection:
                continue
            for pc2 in self._mkb.sync_pc_constraints(donor):
                final = pc2.right.relation
                if (
                    final == relation
                    or final in seen_donors
                    or final not in self._mkb
                    or final in view.relation_names
                    or pc2.left.has_selection
                    or pc2.right.has_selection
                ):
                    continue
                first_map = pc.attribute_map()
                second_map = pc2.attribute_map()
                composed = {
                    name: second_map[mid]
                    for name, mid in first_map.items()
                    if mid in second_map
                }
                if not composed:
                    continue
                extent = ExtentRelationship.from_pc(pc.relationship).compose(
                    ExtentRelationship.from_pc(pc2.relationship)
                )
                routes.append(
                    _Route(final, composed, extent, (pc, pc2), None)
                )
                seen_donors.add(final)
        return routes

    def _build_replacement(
        self,
        view: ViewDefinition,
        relation: str,
        route: "_Route",
        used_select: tuple[SelectItem, ...],
        used_where: tuple[WhereItem, ...],
    ) -> Rewriting | None:
        donor = route.donor
        # An attribute is only covered when the donor *currently* offers
        # the corresponding column — a retired constraint may map onto a
        # column the donor has since lost.
        donor_schema = self._mkb.schema(donor)
        covered = {
            name
            for name, target in route.attribute_map.items()
            if target in donor_schema
        }
        working = view
        moves: list[Move] = []
        extent = ExtentRelationship.EQUAL

        # SELECT items from the lost relation that the donor cannot supply
        # must be dropped — only allowed when dispensable.
        for item in used_select:
            if item.ref.attribute in covered:
                if not item.flags.replaceable:
                    return None
                continue
            if not item.flags.dispensable:
                return None
            if len(working.select) == 1:
                return None
            working = working.dropping_select_item(item.output_name)
            moves.append(DropAttributeMove(item.output_name, item.ref))

        # WHERE conjuncts with un-covered references must be dropped too.
        for item in used_where:
            refs_on_lost = [
                ref
                for ref in item.clause.attribute_refs
                if ref.relation == relation
            ]
            if all(ref.attribute in covered for ref in refs_on_lost):
                if not item.flags.replaceable:
                    return None
                continue
            if not item.flags.dispensable:
                return None
            index = next(
                i for i, w in enumerate(working.where) if w.clause == item.clause
            )
            working = working.dropping_where_item(index)
            moves.append(DropConditionMove(item.clause))
            extent = extent.compose(ExtentRelationship.SUPERSET)

        if not any(
            item.ref.relation == relation for item in working.select
        ) and not any(
            item.references_relation(relation) for item in working.where
        ):
            # Nothing from the lost relation survives; substituting the
            # donor would add an unconstrained relation. Prefer the pure
            # drop move, which the caller generates separately.
            return None

        working = working.replacing_relation(
            relation, donor, route.attribute_map, self._owner_or_none(donor)
        )
        moves.append(
            ReplaceRelationMove(
                relation, donor, route.constraints[0], route.constraints
            )
        )
        extent = extent.compose(route.extent)
        if route.donor_selection is not None:
            # Align the donor with the constrained fragment by folding the
            # right-side selection (already phrased over the donor) into
            # the WHERE clause.
            working = working.adding_where_items(
                WhereItem(clause, _SYNTHETIC_FLAGS)
                for clause in route.donor_selection.clauses
            )
        return Rewriting(view, working, tuple(moves), extent)

    # ------------------------------------------------------------------
    # Dominated spectrum (footnote 2)
    # ------------------------------------------------------------------
    def _with_dominated_spectrum(
        self, rewritings: list[Rewriting]
    ) -> list[Rewriting]:
        expanded = list(rewritings)
        for rewriting in rewritings:
            expanded.extend(_dominated_variants(rewriting))
        return expanded


def _dominated_variants(rewriting: Rewriting) -> list[Rewriting]:
    """Variants that drop further dispensable attributes (strictly inferior)."""
    droppable = [
        item
        for item in rewriting.view.select
        if item.flags.dispensable
    ]
    variants: list[Rewriting] = []
    for size in range(1, len(droppable) + 1):
        for subset in combinations(droppable, size):
            if len(subset) == len(rewriting.view.select):
                continue  # would empty the interface
            working = rewriting.view
            moves = list(rewriting.moves)
            try:
                for item in subset:
                    working = working.dropping_select_item(item.output_name)
                    moves.append(DropAttributeMove(item.output_name, item.ref))
            except Exception:
                continue
            variants.append(
                Rewriting(
                    rewriting.original,
                    working,
                    tuple(moves),
                    rewriting.extent_relationship,
                )
            )
            if len(variants) >= _MAX_DOMINATED_VARIANTS:
                return variants
    return variants


def _deduplicate(rewritings: list[Rewriting]) -> list[Rewriting]:
    seen: set[ViewDefinition] = set()
    unique: list[Rewriting] = []
    for rewriting in rewritings:
        if rewriting.view in seen:
            continue
        seen.add(rewriting.view)
        unique.append(rewriting)
    return unique
