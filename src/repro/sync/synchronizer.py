"""The View Synchronizer: generate legal rewritings for an affected view.

Re-implements the rewriting generation the paper builds on (the SVS
algorithm of [LNR97b] and the relation-substitution core of the CVS
algorithm [NLR98]) to the extent the QC-Model experiments exercise it.
The move families live in :mod:`repro.sync.generators` as pluggable
:class:`~repro.sync.generators.CandidateGenerator` strategies:

* **Renames** (:class:`~repro.sync.generators.RenameGenerator`) —
  change-relation-name / change-attribute-name fold into the definition
  and always yield one equivalent rewriting.
* **Drop moves** (:class:`~repro.sync.generators.DropGenerator`) —
  dispensable attributes, conditions, or whole relations are removed
  from the view (SVS).
* **Attribute replacement moves**
  (:class:`~repro.sync.generators.AttributeReplacementGenerator`) — a
  single deleted attribute is redirected to an equivalent attribute of
  another relation, joining that relation in when needed.
* **Relation replacement moves**
  (:class:`~repro.sync.generators.RelationReplacementGenerator`) — a
  lost relation is substituted wholesale via a PC constraint (CVS).

Every emitted rewriting is legal by construction (the preconditions
mirror :mod:`repro.sync.legality`) and carries its move provenance plus
the inferred extent relationship.

Two consumption styles share the same generation machinery:

* :meth:`ViewSynchronizer.synchronize` — the eager reference path: the
  full legal candidate list, VE-filtered and deduplicated (what the
  first EVE prototype materialized before ranking).
* :meth:`ViewSynchronizer.generate_candidates` — the streaming path the
  :class:`~repro.sync.pipeline.RewritingSearchPipeline` consumes:
  candidates are yielded one by one so legality filtering,
  deduplication, and QC pruning discard them before the next is built.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.esql.ast import ViewDefinition
from repro.esql.validate import ViewValidator
from repro.misd.mkb import MetaKnowledgeBase
from repro.space.changes import (
    AddAttribute,
    AddRelation,
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
    SchemaChange,
)
from repro.sync.generators import (
    CandidateGenerator,
    DominatedSpectrumGenerator,
    GenerationContext,
    default_generators,
)
from repro.sync.rewriting import ExtentRelationship, Rewriting


class ViewSynchronizer:
    """Generates legal rewritings from MKB knowledge (Sec. 3.3).

    ``cache`` (optional, shared with the QC-Model via
    :class:`~repro.qc.assessment_cache.AssessmentCache`) memoizes view
    resolution against the historical MKB schemas — every capability
    change re-synchronizes every affected view, and resolution is pure
    given the MKB state, so the owner invalidates the cache whenever that
    state moves.

    ``generators`` overrides (or, via
    :func:`~repro.sync.generators.default_generators` plus extras,
    extends) the move families consulted; they run in the given order,
    which fixes candidate ordering and therefore every downstream
    tie-break.
    """

    def __init__(
        self,
        mkb: MetaKnowledgeBase,
        cache=None,
        generators: Iterable[CandidateGenerator] | None = None,
    ) -> None:
        self._mkb = mkb
        self._cache = cache
        self.generators: tuple[CandidateGenerator, ...] = (
            tuple(generators) if generators is not None else default_generators()
        )
        self._context = GenerationContext(mkb)
        self._dominated = DominatedSpectrumGenerator()

    @property
    def mkb(self) -> MetaKnowledgeBase:
        """The meta knowledge base candidates are generated against."""
        return self._mkb

    # ------------------------------------------------------------------
    # Affectedness
    # ------------------------------------------------------------------
    def is_affected(self, view: ViewDefinition, change: SchemaChange) -> bool:
        """Whether ``change`` invalidates (or renames under) ``view``."""
        if not view.references_relation(change.relation):
            return False
        if isinstance(change, (AddRelation, AddAttribute)):
            return False
        if isinstance(change, (DeleteRelation, RenameRelation)):
            return True
        if isinstance(change, (DeleteAttribute, RenameAttribute)):
            return self._view_uses_attribute(
                view, change.relation, change.attribute
            )
        return False

    @staticmethod
    def _view_uses_attribute(
        view: ViewDefinition, relation: str, attribute: str
    ) -> bool:
        if any(
            item.ref.matches(attribute, relation) for item in view.select
        ):
            return True
        return any(
            item.references(attribute, relation) for item in view.where
        )

    # ------------------------------------------------------------------
    # Eager entry point (the reference path)
    # ------------------------------------------------------------------
    def synchronize(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        include_dominated: bool = False,
    ) -> list[Rewriting]:
        """All legal rewritings of ``view`` under ``change``.

        Returns an empty list when the view cannot be salvaged (it must
        then be marked undefined).  ``include_dominated`` additionally
        enumerates the footnote-2 "spectrum": variants that drop further
        dispensable attributes and are strictly inferior in information
        preservation — useful for studying the full candidate space.
        """
        view = self.resolve(view)
        if not self.is_affected(view, change):
            return [Rewriting(view, view, (), ExtentRelationship.EQUAL)]
        legal = [
            rewriting
            for rewriting in self.generate_candidates(view, change)
            if rewriting.extent_relationship.satisfies(view.extent_parameter)
        ]
        if include_dominated:
            legal = list(self._dominated.expand(legal))
        return _deduplicate(legal)

    # ------------------------------------------------------------------
    # Streaming entry points (the pipeline path)
    # ------------------------------------------------------------------
    def generate_candidates(
        self, resolved_view: ViewDefinition, change: SchemaChange
    ) -> Iterator[Rewriting]:
        """Lazily yield every candidate the move families produce.

        ``resolved_view`` must already be resolved (:meth:`resolve`);
        candidates arrive in chain order, unfiltered — VE compliance,
        deduplication, and the independent legality audit are downstream
        stages of the pipeline.
        """
        for generator in self.generators:
            if generator.applies_to(change):
                yield from generator.generate(
                    resolved_view, change, self._context
                )

    def expand_dominated(
        self, stream: Iterable[Rewriting]
    ) -> Iterator[Rewriting]:
        """Expand a candidate stream with each base's dominated variants."""
        return self._dominated.expand(stream)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, view: ViewDefinition) -> ViewDefinition:
        """Fully qualify the view against (historical) MKB schemas."""
        if self._cache is not None:
            return self._cache.resolved_view(
                view,
                lambda: self._resolve_uncached(view),
                token=self._mkb.version,
            )
        return self._resolve_uncached(view)

    def _resolve_uncached(self, view: ViewDefinition) -> ViewDefinition:
        schemas = {}
        for name in view.relation_names:
            schemas[name] = self._mkb.historical_schema(name)
        return ViewValidator(schemas).resolve_view(view)


def _deduplicate(rewritings: list[Rewriting]) -> list[Rewriting]:
    seen: set[ViewDefinition] = set()
    unique: list[Rewriting] = []
    for rewriting in rewritings:
        if rewriting.view in seen:
            continue
        seen.add(rewriting.view)
        unique.append(rewriting)
    return unique
