"""Rewritings: candidate replacement view definitions with provenance.

A :class:`Rewriting` bundles the new :class:`ViewDefinition` with the
*moves* that produced it (attribute drops, relation replacements, ...) and
the inferred :class:`ExtentRelationship` between the new and the original
extent.  The provenance is what makes legality checkable (each move is
justified by an evolution flag) and what lets the quality model pick the
right Fig. 9 overlap case without re-deriving how the rewriting came to be.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterable

from repro.esql.ast import ViewDefinition
from repro.esql.params import ViewExtent
from repro.misd.constraints import PCConstraint, PCRelationship
from repro.relational.expressions import AttributeRef, PrimitiveClause


class ExtentRelationship(enum.Enum):
    """How a rewriting's extent relates to the original (Fig. 8).

    Comparisons are on the common subset of attributes (Definition 2):

    * ``EQUAL``       — Fig. 8(a) "Equivalent"
    * ``SUPERSET``    — Fig. 8(b): the new extent contains the old
    * ``SUBSET``      — Fig. 8(c): the new extent is contained in the old
    * ``UNKNOWN``     — Fig. 8(d) "Approximate": both D1 and D2 may be
      non-empty, or no constraint pins the relationship down
    """

    EQUAL = "equal"
    SUPERSET = "superset"
    SUBSET = "subset"
    UNKNOWN = "approximate"

    def __str__(self) -> str:
        return self.value

    def compose(self, other: "ExtentRelationship") -> "ExtentRelationship":
        """Relationship after applying two moves in sequence.

        The lattice: EQUAL is the identity, equal directions reinforce,
        opposite directions (or any UNKNOWN) give UNKNOWN.
        """
        if self is ExtentRelationship.EQUAL:
            return other
        if other is ExtentRelationship.EQUAL:
            return self
        if self is other:
            return self
        return ExtentRelationship.UNKNOWN

    def satisfies(self, extent_parameter: ViewExtent) -> bool:
        """Whether this relationship complies with the view's VE setting."""
        if extent_parameter is ViewExtent.ANY:
            return True
        if extent_parameter is ViewExtent.EQUAL:
            return self is ExtentRelationship.EQUAL
        if extent_parameter is ViewExtent.SUPERSET:
            return self in (ExtentRelationship.EQUAL, ExtentRelationship.SUPERSET)
        return self in (ExtentRelationship.EQUAL, ExtentRelationship.SUBSET)

    @classmethod
    def from_pc(cls, relationship: PCRelationship) -> "ExtentRelationship":
        """Extent effect of substituting the right side of ``R REL T`` for R.

        Monotone SPJ views lift the relation-level relationship: replacing
        R with a superset relation yields a superset extent, and so on.
        ``R REL T`` is oriented (left = the dropped relation), so the view
        relationship is the *flip* of REL.
        """
        if relationship is PCRelationship.EQUIVALENT:
            return cls.EQUAL
        if relationship is PCRelationship.SUBSET:  # R ⊆ T, T replaces R
            return cls.SUPERSET
        return cls.SUBSET


# ----------------------------------------------------------------------
# Moves (provenance of a rewriting)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Move:
    """Base class of the atomic edits a synchronizer may apply."""

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


@dataclass(frozen=True)
class DropAttributeMove(Move):
    """A dispensable SELECT item was removed."""

    output_name: str
    source: AttributeRef

    def describe(self) -> str:
        return f"drop attribute {self.source} (output {self.output_name!r})"


@dataclass(frozen=True)
class DropConditionMove(Move):
    """A dispensable WHERE conjunct was removed."""

    clause: PrimitiveClause

    def describe(self) -> str:
        return f"drop condition ({self.clause})"


@dataclass(frozen=True)
class DropRelationMove(Move):
    """A dispensable FROM relation (plus everything on it) was removed."""

    relation: str

    def describe(self) -> str:
        return f"drop relation {self.relation}"


@dataclass(frozen=True)
class ReplaceRelationMove(Move):
    """A FROM relation was substituted via a PC constraint (CVS move).

    ``via`` records the full constraint path when the substitution was
    found transitively (e.g. S replaced by T because both relate to a
    common ancestor R); for direct substitutions it holds the single
    constraint.
    """

    old_relation: str
    new_relation: str
    constraint: PCConstraint
    via: tuple[PCConstraint, ...] = ()

    @property
    def is_transitive(self) -> bool:
        return len(self.via) > 1

    def describe(self) -> str:
        route = " via ".join(str(pc) for pc in self.via) or str(self.constraint)
        return (
            f"replace relation {self.old_relation} -> {self.new_relation} "
            f"using {route}"
        )


@dataclass(frozen=True)
class ReplaceAttributeMove(Move):
    """A single attribute reference was redirected to another relation."""

    old: AttributeRef
    new: AttributeRef
    constraint: PCConstraint

    def describe(self) -> str:
        return f"replace attribute {self.old} -> {self.new}"


@dataclass(frozen=True)
class AddJoinMove(Move):
    """A relation joined in (via a join constraint) to carry a replacement."""

    relation: str
    clauses: tuple[PrimitiveClause, ...]

    def describe(self) -> str:
        rendered = " AND ".join(str(c) for c in self.clauses)
        return f"join in {self.relation} on {rendered}"


@dataclass(frozen=True)
class RenameMove(Move):
    """A pure rename (relation or attribute) was folded in — equivalent."""

    description: str

    def describe(self) -> str:
        return self.description


# ----------------------------------------------------------------------
# The rewriting bundle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rewriting:
    """One candidate replacement for an affected view."""

    original: ViewDefinition
    view: ViewDefinition
    moves: tuple[Move, ...] = ()
    extent_relationship: ExtentRelationship = ExtentRelationship.EQUAL

    @property
    def is_identity(self) -> bool:
        return not self.moves

    @property
    def name(self) -> str:
        return self.view.name

    def preserved_outputs(self) -> tuple[str, ...]:
        """Original interface attributes still present in the rewriting."""
        new_interface = set(self.view.interface)
        return tuple(
            name for name in self.original.interface if name in new_interface
        )

    def dropped_outputs(self) -> tuple[str, ...]:
        new_interface = set(self.view.interface)
        return tuple(
            name for name in self.original.interface if name not in new_interface
        )

    def replacement_moves(self) -> tuple[ReplaceRelationMove, ...]:
        return tuple(
            move for move in self.moves if isinstance(move, ReplaceRelationMove)
        )

    def describe(self) -> str:
        if not self.moves:
            return f"{self.view.name}: unchanged"
        steps = "; ".join(move.describe() for move in self.moves)
        return f"{self.view.name}: {steps} [{self.extent_relationship}]"

    def renamed(self, new_name: str) -> "Rewriting":
        return Rewriting(
            self.original,
            self.view.renamed(new_name),
            self.moves,
            self.extent_relationship,
        )


def combine_extent(moves_relationships: Iterable[ExtentRelationship]) -> ExtentRelationship:
    """Fold a sequence of per-move extent effects into one relationship."""
    combined = ExtentRelationship.EQUAL
    for relationship in moves_relationships:
        combined = combined.compose(relationship)
    return combined
