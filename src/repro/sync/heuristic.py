"""Heuristic view synchronization — the paper's proposed future work.

Sec. 8: "an extension ... of the heuristics identified in this current
work may lead to the development of a novel heuristic view
synchronization algorithm that instead of first generating all rewriting
solutions and then ranking them, would be able to discard some of the
search space early on."

This module implements that algorithm.  Instead of materializing every
legal rewriting and running the full QC evaluation,
:class:`HeuristicSynchronizer`:

1. asks the base synchronizer for candidate *routes* cheaply (the same
   generation machinery, but candidates are scored before they are fully
   costed),
2. orders candidates by the Sec. 7.6 heuristic stack (fewest sources,
   closest replacement size, smallest/fewest relations, fewest clauses),
3. evaluates only the best ``beam_width`` candidates with the real
   QC-Model, and returns the winner.

The benchmark ``bench_heuristic_sync.py`` measures how often the pruned
search returns the same rewriting as the exhaustive one, and how much of
the candidate set it never had to price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SynchronizationError
from repro.esql.ast import ViewDefinition
from repro.misd.mkb import MetaKnowledgeBase
from repro.space.changes import SchemaChange
from repro.sync.rewriting import Rewriting
from repro.sync.synchronizer import ViewSynchronizer

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.qc.model import Evaluation
    from repro.qc.params import TradeoffParameters
    from repro.qc.workload import WorkloadSpec


@dataclass(frozen=True)
class HeuristicOutcome:
    """Result of a pruned synchronization run."""

    chosen: "Evaluation"
    evaluated: int
    generated: int

    @property
    def pruned_fraction(self) -> float:
        """Share of candidates never priced by the QC-Model."""
        if self.generated == 0:
            return 0.0
        return 1.0 - self.evaluated / self.generated


class HeuristicSynchronizer:
    """Beam-pruned synchronization: rank cheaply, price only the beam."""

    def __init__(
        self,
        mkb: MetaKnowledgeBase,
        params: "TradeoffParameters | None" = None,
        beam_width: int = 2,
    ) -> None:
        from repro.qc.heuristics import default_heuristic_stack
        from repro.qc.model import QCModel

        if beam_width < 1:
            raise SynchronizationError("beam width must be at least 1")
        self._mkb = mkb
        self._base = ViewSynchronizer(mkb)
        self._model = QCModel(mkb, params)
        self._stack = default_heuristic_stack(mkb, mkb.statistics)
        self.beam_width = beam_width

    def synchronize_best(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        workload: "WorkloadSpec | None" = None,
        updated_relation: str | None = None,
    ) -> HeuristicOutcome:
        """The chosen rewriting plus pruning statistics.

        Raises :class:`SynchronizationError` when no legal rewriting
        exists (the view must then be marked undefined, as usual).
        """
        candidates = self._base.synchronize(view, change)
        if not candidates:
            raise SynchronizationError(
                f"view {view.name!r} has no legal rewriting under "
                f"{change.describe()}"
            )
        beam = self._select_beam(candidates)
        evaluations = self._model.evaluate(
            beam, workload, updated_relation
        )
        return HeuristicOutcome(
            chosen=evaluations[0],
            evaluated=len(beam),
            generated=len(candidates),
        )

    def _select_beam(self, candidates: list[Rewriting]) -> list[Rewriting]:
        """The ``beam_width`` heuristically best candidates.

        Ordering is lexicographic over the Sec. 7.6 stack; ties keep
        generation order, so the beam is deterministic.
        """
        scored = sorted(
            candidates,
            key=lambda rewriting: tuple(
                key(rewriting) for key in self._stack
            ),
        )
        return scored[: self.beam_width]
