"""The candidate-generator protocol of the rewriting-search pipeline.

Each move family of the synchronizer (rename / drop / attribute
replacement / relation replacement / dominated spectrum) is one
:class:`CandidateGenerator` strategy.  Generators *yield* rewritings
lazily instead of building lists, so downstream stages (VE filtering,
deduplication, legality, QC pruning) can discard candidates before the
next one is even constructed — and a ``first_legal`` search never pays
for the part of the spectrum it does not visit.

A generator receives the *resolved* view (fully qualified against the
historical MKB schemas), the capability change, and a
:class:`GenerationContext` exposing the meta knowledge it may consult.
Custom generators plug into :class:`~repro.sync.synchronizer.ViewSynchronizer`
via its ``generators`` argument; they run after the built-in families in
registration order, so the default candidate ordering (and therefore tie
breaking) is stable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import UnknownRelationError
from repro.esql.ast import ViewDefinition
from repro.esql.params import EvolutionFlags
from repro.misd.mkb import MetaKnowledgeBase
from repro.space.changes import SchemaChange
from repro.sync.rewriting import Rewriting

#: Flags given to components the synchronizer introduces itself (join
#: clauses, PC selection clauses).  They are dispensable+replaceable so
#: future synchronizations can evolve them again.
SYNTHETIC_FLAGS = EvolutionFlags(dispensable=True, replaceable=True)


@dataclass(frozen=True)
class GenerationContext:
    """Everything a generator may consult while producing candidates."""

    mkb: MetaKnowledgeBase

    def owner_or_none(self, relation: str) -> str | None:
        """The owning source of ``relation``, or None for retired names."""
        try:
            return self.mkb.owner(relation)
        except UnknownRelationError:
            return None


class CandidateGenerator(ABC):
    """One move family of the rewriting search.

    ``applies_to`` gates the family on the change kind; ``generate``
    lazily yields every rewriting the family can produce for the view.
    Yielded rewritings must be legal *by construction* with respect to
    the evolution flags they consume — the pipeline still audits them
    independently, but a generator should never need the audit to fail.
    """

    #: Stable identifier used in counters and diagnostics.
    name: str = "generator"

    @abstractmethod
    def applies_to(self, change: SchemaChange) -> bool:
        """Whether this family produces candidates for ``change``."""

    @abstractmethod
    def generate(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        context: GenerationContext,
    ) -> Iterator[Rewriting]:
        """Lazily yield candidate rewritings of ``view`` under ``change``."""
