"""Drop moves (SVS): remove dispensable components touched by a loss.

* ``delete-relation`` — remove the relation plus every SELECT item and
  WHERE conjunct on it (all must be dispensable).
* ``delete-attribute`` — remove every reference to the lost attribute.

Both produce at most one rewriting, so this family streams cheaply ahead
of the replacement searches in the default chain.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import SchemaError
from repro.esql.ast import ViewDefinition
from repro.relational.expressions import AttributeRef
from repro.space.changes import DeleteAttribute, DeleteRelation, SchemaChange
from repro.sync.generators.base import CandidateGenerator, GenerationContext
from repro.sync.rewriting import (
    DropAttributeMove,
    DropConditionMove,
    DropRelationMove,
    ExtentRelationship,
    Move,
    Rewriting,
)


class DropGenerator(CandidateGenerator):
    """The SVS drop family for relation and attribute losses."""

    name = "drop"

    def applies_to(self, change: SchemaChange) -> bool:
        return isinstance(change, (DeleteRelation, DeleteAttribute))

    def generate(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        context: GenerationContext,
    ) -> Iterator[Rewriting]:
        if isinstance(change, DeleteRelation):
            rewriting = drop_relation_move(view, change.relation)
        else:
            assert isinstance(change, DeleteAttribute)
            rewriting = drop_attribute_move(
                view, change.relation, change.attribute
            )
        if rewriting is not None:
            yield rewriting


def drop_relation_move(
    view: ViewDefinition, relation: str
) -> Rewriting | None:
    """The SVS move: remove the relation and everything on it."""
    from_item = view.from_item(relation)
    if not from_item.flags.dispensable:
        return None
    affected_select = view.select_items_from(relation)
    affected_where = view.where_items_on(relation)
    if any(not item.flags.dispensable for item in affected_select):
        return None
    if any(not item.flags.dispensable for item in affected_where):
        return None
    try:
        new_view = view.dropping_relation(relation)
    except SchemaError:  # empties the interface or the FROM clause
        return None
    moves: list[Move] = [DropRelationMove(relation)]
    moves.extend(
        DropAttributeMove(item.output_name, item.ref)
        for item in affected_select
    )
    moves.extend(DropConditionMove(item.clause) for item in affected_where)
    # Removing join/selection conditions can only widen the extent on
    # the surviving attributes.
    extent = (
        ExtentRelationship.SUPERSET
        if affected_where
        else ExtentRelationship.EQUAL
    )
    return Rewriting(view, new_view, tuple(moves), extent)


def drop_attribute_move(
    view: ViewDefinition, relation: str, attribute: str
) -> Rewriting | None:
    """Remove every reference to the lost attribute (SVS move)."""
    ref = AttributeRef(attribute, relation)
    affected_select = [item for item in view.select if item.ref == ref]
    affected_where = [
        item for item in view.where if ref in item.clause.attribute_refs
    ]
    if any(not item.flags.dispensable for item in affected_select):
        return None
    if any(not item.flags.dispensable for item in affected_where):
        return None
    working = view
    moves: list[Move] = []
    for item in affected_select:
        if len(working.select) == 1:
            return None  # would empty the interface
        working = working.dropping_select_item(item.output_name)
        moves.append(DropAttributeMove(item.output_name, item.ref))
    for item in affected_where:
        index = next(
            i for i, w in enumerate(working.where) if w.clause == item.clause
        )
        working = working.dropping_where_item(index)
        moves.append(DropConditionMove(item.clause))
    if not moves:
        return None
    extent = (
        ExtentRelationship.SUPERSET
        if affected_where
        else ExtentRelationship.EQUAL
    )
    return Rewriting(view, working, tuple(moves), extent)
