"""The dominated-variant spectrum (footnote 2).

Variants that drop further dispensable attributes from a base rewriting
are strictly inferior in information preservation — useful for studying
the full candidate space, never for picking a winner.  The spectrum is
exponential in the number of dispensable attributes, so this module is
built to stay *unmaterialized*: :func:`iter_dominated_variants` is a
generator, and :class:`DominatedSpectrumGenerator` expands a candidate
stream lazily (bases first, then each base's variants) only when a
caller explicitly asks for the spectrum.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Iterator

from repro.errors import SchemaError
from repro.sync.rewriting import DropAttributeMove, Rewriting

#: Upper bound on the dominated-variant spectrum per base rewriting.
MAX_DOMINATED_VARIANTS = 32


def iter_dominated_variants(
    rewriting: Rewriting, limit: int = MAX_DOMINATED_VARIANTS
) -> Iterator[Rewriting]:
    """Lazily yield variants that drop further dispensable attributes."""
    droppable = [
        item for item in rewriting.view.select if item.flags.dispensable
    ]
    produced = 0
    for size in range(1, len(droppable) + 1):
        for subset in combinations(droppable, size):
            if len(subset) == len(rewriting.view.select):
                continue  # would empty the interface
            working = rewriting.view
            moves = list(rewriting.moves)
            try:
                for item in subset:
                    working = working.dropping_select_item(item.output_name)
                    moves.append(
                        DropAttributeMove(item.output_name, item.ref)
                    )
            except SchemaError:  # a sibling drop emptied the interface
                continue
            yield Rewriting(
                rewriting.original,
                working,
                tuple(moves),
                rewriting.extent_relationship,
            )
            produced += 1
            if produced >= limit:
                return


class DominatedSpectrumGenerator:
    """Stream expander: every base candidate, then each base's variants.

    The ordering (all bases before any variant) mirrors the eager
    synchronizer, so deduplication and stable ranking tie-breaks behave
    identically whether the spectrum arrives from a list or a stream.
    """

    name = "dominated-spectrum"

    def __init__(self, limit: int = MAX_DOMINATED_VARIANTS) -> None:
        self.limit = limit

    def expand(self, stream: Iterable[Rewriting]) -> Iterator[Rewriting]:
        bases: list[Rewriting] = []
        for rewriting in stream:
            bases.append(rewriting)
            yield rewriting
        for rewriting in bases:
            yield from iter_dominated_variants(rewriting, self.limit)
