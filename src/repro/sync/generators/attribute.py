"""Attribute replacement moves: redirect a lost attribute elsewhere.

A deleted attribute is redirected to an equivalent attribute of another
relation through a PC constraint; when the donor is not already in the
view, it is joined in via a join constraint (with synthetic, evolvable
flags on the introduced clauses).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.esql.ast import FromItem, ViewDefinition, WhereItem
from repro.relational.expressions import AttributeRef
from repro.space.changes import DeleteAttribute, SchemaChange
from repro.sync.generators.base import (
    SYNTHETIC_FLAGS,
    CandidateGenerator,
    GenerationContext,
)
from repro.sync.rewriting import (
    AddJoinMove,
    ExtentRelationship,
    Move,
    ReplaceAttributeMove,
    Rewriting,
)


class AttributeReplacementGenerator(CandidateGenerator):
    """Redirect the lost attribute to an equivalent one elsewhere."""

    name = "replace-attribute"

    def applies_to(self, change: SchemaChange) -> bool:
        return isinstance(change, DeleteAttribute)

    def generate(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        context: GenerationContext,
    ) -> Iterator[Rewriting]:
        assert isinstance(change, DeleteAttribute)
        relation, attribute = change.relation, change.attribute
        mkb = context.mkb
        old_ref = AttributeRef(attribute, relation)
        select_items = [i for i in view.select if i.ref == old_ref]
        where_items = [
            i for i in view.where if old_ref in i.clause.attribute_refs
        ]
        if any(not i.flags.replaceable for i in select_items):
            return
        if any(not i.flags.replaceable for i in where_items):
            return
        for pc in mkb.sync_pc_constraints(relation):
            if attribute not in pc.left.attributes:
                continue
            donor = pc.right.relation
            if donor not in mkb:
                continue
            new_attribute = pc.attribute_map()[attribute]
            if new_attribute not in mkb.schema(donor):
                continue  # the donor has since lost the column itself
            new_ref = AttributeRef(new_attribute, donor)
            base_extent = ExtentRelationship.from_pc(pc.relationship)
            if pc.left.has_selection or pc.right.has_selection:
                base_extent = ExtentRelationship.UNKNOWN

            if donor in view.relation_names:
                new_view = view.replacing_attribute(old_ref, new_ref)
                # Value provenance changes; without key knowledge the
                # row-wise correspondence is not guaranteed.
                extent = (
                    ExtentRelationship.EQUAL
                    if base_extent is ExtentRelationship.EQUAL
                    else ExtentRelationship.UNKNOWN
                )
                yield Rewriting(
                    view,
                    new_view,
                    (ReplaceAttributeMove(old_ref, new_ref, pc),),
                    extent,
                )
                continue

            join_clauses = _join_path_into_view(mkb, view, donor, relation)
            if join_clauses is None:
                continue
            new_view = view.adding_from_item(
                FromItem(donor, SYNTHETIC_FLAGS, context.owner_or_none(donor))
            )
            new_view = new_view.adding_where_items(
                WhereItem(clause, SYNTHETIC_FLAGS) for clause in join_clauses
            )
            new_view = new_view.replacing_attribute(old_ref, new_ref)
            moves: tuple[Move, ...] = (
                AddJoinMove(donor, tuple(join_clauses)),
                ReplaceAttributeMove(old_ref, new_ref, pc),
            )
            # Joining a carrier relation in can both lose rows (failed
            # matches) and cannot be proven lossless without key metadata.
            yield Rewriting(view, new_view, moves, ExtentRelationship.UNKNOWN)


def _join_path_into_view(
    mkb, view: ViewDefinition, donor: str, lost_relation: str
):
    """Join clauses connecting ``donor`` to a surviving view relation."""
    for jc in mkb.sync_join_constraints(donor):
        partner = jc.other(donor)
        if partner == lost_relation:
            continue
        if partner in view.relation_names:
            return list(jc.condition.clauses)
    return None
