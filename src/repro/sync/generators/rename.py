"""Rename moves: change-relation-name / change-attribute-name.

Renames always fold into the view definition and yield exactly one
equivalent rewriting (Sec. 3.3) — the cheapest family, which is why it
runs first in the default generator chain.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.esql.ast import ViewDefinition
from repro.relational.expressions import AttributeRef
from repro.space.changes import RenameAttribute, RenameRelation, SchemaChange
from repro.sync.generators.base import CandidateGenerator, GenerationContext
from repro.sync.rewriting import ExtentRelationship, RenameMove, Rewriting


class RenameGenerator(CandidateGenerator):
    """Folds renames into the definition — always one equivalent rewriting."""

    name = "rename"

    def applies_to(self, change: SchemaChange) -> bool:
        return isinstance(change, (RenameRelation, RenameAttribute))

    def generate(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        context: GenerationContext,
    ) -> Iterator[Rewriting]:
        if isinstance(change, RenameRelation):
            new_view = view.replacing_relation(change.relation, change.new_name)
            move = RenameMove(
                f"rename relation {change.relation} -> {change.new_name}"
            )
        else:
            assert isinstance(change, RenameAttribute)
            old = AttributeRef(change.attribute, change.relation)
            new = AttributeRef(change.new_name, change.relation)
            new_view = view.replacing_attribute(old, new)
            move = RenameMove(f"rename attribute {old} -> {new}")
        yield Rewriting(view, new_view, (move,), ExtentRelationship.EQUAL)
