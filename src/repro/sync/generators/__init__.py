"""Pluggable candidate generators — the move families of the synchronizer.

The default chain (order matters: it fixes candidate ordering, and with
it deduplication and ranking tie-breaks):

1. :class:`RenameGenerator` — renames fold into the definition,
2. :class:`DropGenerator` — SVS drop moves,
3. :class:`AttributeReplacementGenerator` — redirect a lost attribute,
4. :class:`RelationReplacementGenerator` — CVS wholesale substitution.

The dominated spectrum (:class:`DominatedSpectrumGenerator`) is not part
of the chain: it is a stream *expander* applied only when a caller
explicitly requests the strictly-inferior variants.
"""

from repro.sync.generators.attribute import AttributeReplacementGenerator
from repro.sync.generators.base import (
    SYNTHETIC_FLAGS,
    CandidateGenerator,
    GenerationContext,
)
from repro.sync.generators.dominated import (
    MAX_DOMINATED_VARIANTS,
    DominatedSpectrumGenerator,
    iter_dominated_variants,
)
from repro.sync.generators.drop import (
    DropGenerator,
    drop_attribute_move,
    drop_relation_move,
)
from repro.sync.generators.rename import RenameGenerator
from repro.sync.generators.replace import (
    RelationReplacementGenerator,
    Route,
    build_replacement,
    iter_replacement_routes,
)


#: name -> generator factory, the registry declarative configurations
#: (:class:`repro.config.SearchConfig`) resolve generator *names* through.
GENERATOR_REGISTRY: dict[str, type[CandidateGenerator]] = {
    "rename": RenameGenerator,
    "drop": DropGenerator,
    "attribute_replacement": AttributeReplacementGenerator,
    "relation_replacement": RelationReplacementGenerator,
}

#: The built-in chain, in the canonical order (it fixes candidate
#: ordering, and with it deduplication and every ranking tie-break).
DEFAULT_GENERATOR_NAMES: tuple[str, ...] = (
    "rename",
    "drop",
    "attribute_replacement",
    "relation_replacement",
)


def default_generators() -> tuple[CandidateGenerator, ...]:
    """The built-in move families, in the canonical order."""
    return generators_from_names(DEFAULT_GENERATOR_NAMES)


def generators_from_names(names) -> tuple[CandidateGenerator, ...]:
    """Instantiate a generator chain from registry names, in order."""
    from repro.errors import ConfigurationError

    chain = []
    for name in names:
        try:
            factory = GENERATOR_REGISTRY[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown candidate generator {name!r}; expected one of "
                f"{', '.join(sorted(GENERATOR_REGISTRY))}"
            ) from None
        chain.append(factory())
    return tuple(chain)


__all__ = [
    "AttributeReplacementGenerator",
    "CandidateGenerator",
    "DEFAULT_GENERATOR_NAMES",
    "DominatedSpectrumGenerator",
    "DropGenerator",
    "GENERATOR_REGISTRY",
    "GenerationContext",
    "MAX_DOMINATED_VARIANTS",
    "RelationReplacementGenerator",
    "RenameGenerator",
    "Route",
    "SYNTHETIC_FLAGS",
    "build_replacement",
    "default_generators",
    "drop_attribute_move",
    "drop_relation_move",
    "generators_from_names",
    "iter_dominated_variants",
    "iter_replacement_routes",
]
