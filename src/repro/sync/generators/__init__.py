"""Pluggable candidate generators — the move families of the synchronizer.

The default chain (order matters: it fixes candidate ordering, and with
it deduplication and ranking tie-breaks):

1. :class:`RenameGenerator` — renames fold into the definition,
2. :class:`DropGenerator` — SVS drop moves,
3. :class:`AttributeReplacementGenerator` — redirect a lost attribute,
4. :class:`RelationReplacementGenerator` — CVS wholesale substitution.

The dominated spectrum (:class:`DominatedSpectrumGenerator`) is not part
of the chain: it is a stream *expander* applied only when a caller
explicitly requests the strictly-inferior variants.
"""

from repro.sync.generators.attribute import AttributeReplacementGenerator
from repro.sync.generators.base import (
    SYNTHETIC_FLAGS,
    CandidateGenerator,
    GenerationContext,
)
from repro.sync.generators.dominated import (
    MAX_DOMINATED_VARIANTS,
    DominatedSpectrumGenerator,
    iter_dominated_variants,
)
from repro.sync.generators.drop import (
    DropGenerator,
    drop_attribute_move,
    drop_relation_move,
)
from repro.sync.generators.rename import RenameGenerator
from repro.sync.generators.replace import (
    RelationReplacementGenerator,
    Route,
    build_replacement,
    iter_replacement_routes,
)


def default_generators() -> tuple[CandidateGenerator, ...]:
    """The built-in move families, in the canonical order."""
    return (
        RenameGenerator(),
        DropGenerator(),
        AttributeReplacementGenerator(),
        RelationReplacementGenerator(),
    )


__all__ = [
    "AttributeReplacementGenerator",
    "CandidateGenerator",
    "DominatedSpectrumGenerator",
    "DropGenerator",
    "GenerationContext",
    "MAX_DOMINATED_VARIANTS",
    "RelationReplacementGenerator",
    "RenameGenerator",
    "Route",
    "SYNTHETIC_FLAGS",
    "build_replacement",
    "default_generators",
    "drop_attribute_move",
    "drop_relation_move",
    "iter_dominated_variants",
    "iter_replacement_routes",
]
