"""Relation replacement moves (the CVS core).

A deleted relation (or one that lost an attribute — the Sec. 7.6
heuristic keeps whole-relation substitution on the table in that case
too) is substituted by another relation related to it through a PC
constraint.  Attribute names are translated through the constraint's
positional correspondence, the constraint's right-side selection is
folded into the WHERE clause, and uncovered dispensable components are
dropped alongside.

Routes are discovered directly (one constraint) and transitively
(two selection-free constraints through an intermediate relation — the
Experiment 1 situation).  Route discovery is itself lazy: a
``first_legal`` search that accepts the first substitution never pays
for the transitive sweep behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.esql.ast import SelectItem, ViewDefinition, WhereItem
from repro.misd.constraints import PCConstraint
from repro.space.changes import DeleteAttribute, DeleteRelation, SchemaChange
from repro.sync.generators.base import (
    SYNTHETIC_FLAGS,
    CandidateGenerator,
    GenerationContext,
)
from repro.sync.rewriting import (
    DropAttributeMove,
    DropConditionMove,
    ExtentRelationship,
    Move,
    ReplaceRelationMove,
    Rewriting,
)


@dataclass(frozen=True)
class Route:
    """One way to reach a live replacement relation from a lost one.

    ``attribute_map`` translates the lost relation's attributes to the
    donor's; ``constraints`` is the PC path (length 1 for direct routes);
    ``donor_selection`` is the right-side selection to fold into the
    rewritten WHERE clause, phrased over the donor, or None.
    """

    donor: str
    attribute_map: dict[str, str]
    extent: ExtentRelationship
    constraints: tuple[PCConstraint, ...]
    donor_selection: object | None = None


class RelationReplacementGenerator(CandidateGenerator):
    """Substitute the losing relation wholesale via each replacement route."""

    name = "replace-relation"

    def applies_to(self, change: SchemaChange) -> bool:
        return isinstance(change, (DeleteRelation, DeleteAttribute))

    def generate(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        context: GenerationContext,
    ) -> Iterator[Rewriting]:
        relation = change.relation
        from_item = view.from_item(relation)
        if not from_item.flags.replaceable:
            return
        used_select = view.select_items_from(relation)
        used_where = view.where_items_on(relation)
        for route in iter_replacement_routes(context.mkb, view, relation):
            rewriting = build_replacement(
                context, view, relation, route, used_select, used_where
            )
            if rewriting is not None:
                yield rewriting


def iter_replacement_routes(
    mkb, view: ViewDefinition, relation: str
) -> Iterator[Route]:
    """Direct and 2-hop PC routes from ``relation`` to a live donor.

    Direct routes use one constraint.  Transitive routes chain two
    selection-free constraints through an intermediate relation (which
    may itself be dead) — the Experiment 1 situation, where S and T
    are both related to a common ancestor R but not to each other.
    The composed extent effect follows the relationship lattice;
    opposite directions compose to UNKNOWN.
    """
    seen_donors: set[str] = set()
    for pc in mkb.sync_pc_constraints(relation):
        donor = pc.right.relation
        if donor in mkb and donor not in view.relation_names:
            extent = ExtentRelationship.from_pc(pc.relationship)
            if pc.left.has_selection:
                extent = extent.compose(ExtentRelationship.SUBSET)
            seen_donors.add(donor)
            yield Route(
                donor,
                pc.attribute_map(),
                extent,
                (pc,),
                pc.right.condition if pc.right.has_selection else None,
            )
        # Transitive continuation (only through selection-free hops).
        if pc.left.has_selection or pc.right.has_selection:
            continue
        for pc2 in mkb.sync_pc_constraints(donor):
            final = pc2.right.relation
            if (
                final == relation
                or final in seen_donors
                or final not in mkb
                or final in view.relation_names
                or pc2.left.has_selection
                or pc2.right.has_selection
            ):
                continue
            first_map = pc.attribute_map()
            second_map = pc2.attribute_map()
            composed = {
                name: second_map[mid]
                for name, mid in first_map.items()
                if mid in second_map
            }
            if not composed:
                continue
            extent = ExtentRelationship.from_pc(pc.relationship).compose(
                ExtentRelationship.from_pc(pc2.relationship)
            )
            seen_donors.add(final)
            yield Route(final, composed, extent, (pc, pc2), None)


def build_replacement(
    context: GenerationContext,
    view: ViewDefinition,
    relation: str,
    route: Route,
    used_select: tuple[SelectItem, ...],
    used_where: tuple[WhereItem, ...],
) -> Rewriting | None:
    donor = route.donor
    # An attribute is only covered when the donor *currently* offers
    # the corresponding column — a retired constraint may map onto a
    # column the donor has since lost.
    donor_schema = context.mkb.schema(donor)
    covered = {
        name
        for name, target in route.attribute_map.items()
        if target in donor_schema
    }
    working = view
    moves: list[Move] = []
    extent = ExtentRelationship.EQUAL

    # SELECT items from the lost relation that the donor cannot supply
    # must be dropped — only allowed when dispensable.
    for item in used_select:
        if item.ref.attribute in covered:
            if not item.flags.replaceable:
                return None
            continue
        if not item.flags.dispensable:
            return None
        if len(working.select) == 1:
            return None
        working = working.dropping_select_item(item.output_name)
        moves.append(DropAttributeMove(item.output_name, item.ref))

    # WHERE conjuncts with un-covered references must be dropped too.
    for item in used_where:
        refs_on_lost = [
            ref
            for ref in item.clause.attribute_refs
            if ref.relation == relation
        ]
        if all(ref.attribute in covered for ref in refs_on_lost):
            if not item.flags.replaceable:
                return None
            continue
        if not item.flags.dispensable:
            return None
        index = next(
            i for i, w in enumerate(working.where) if w.clause == item.clause
        )
        working = working.dropping_where_item(index)
        moves.append(DropConditionMove(item.clause))
        extent = extent.compose(ExtentRelationship.SUPERSET)

    if not any(
        item.ref.relation == relation for item in working.select
    ) and not any(
        item.references_relation(relation) for item in working.where
    ):
        # Nothing from the lost relation survives; substituting the
        # donor would add an unconstrained relation. Prefer the pure
        # drop move, which the drop family generates separately.
        return None

    working = working.replacing_relation(
        relation, donor, route.attribute_map, context.owner_or_none(donor)
    )
    moves.append(
        ReplaceRelationMove(
            relation, donor, route.constraints[0], route.constraints
        )
    )
    extent = extent.compose(route.extent)
    if route.donor_selection is not None:
        # Align the donor with the constrained fragment by folding the
        # right-side selection (already phrased over the donor) into
        # the WHERE clause.
        working = working.adding_where_items(
            WhereItem(clause, SYNTHETIC_FLAGS)
            for clause in route.donor_selection.clauses
        )
    return Rewriting(view, working, tuple(moves), extent)
