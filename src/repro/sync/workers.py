"""Persistent-worker execution over a sharded VKB.

The fork-based ``processes`` executor re-forks the whole runtime for
every ``apply_changes`` batch: each batch pays a full copy-on-write
snapshot, and platforms without ``fork`` get nothing at all.  This
module is the actor-style alternative — long-lived workers that hold
state and receive work over queues:

* The VKB is partitioned into **shards** along the relation→views
  inverted index: a relation's shard is ``crc32(name) % shards``, and a
  view's *home shard* is the shard of the first relation its current
  definition references — deterministic, so parent and workers always
  agree without negotiation.
* One long-lived, spawn-safe worker process per shard holds a full
  mirror of the system (information space, MKB, assessment caches)
  plus *its shard's* view records and materialized extents, all built
  exactly once per pool epoch from one bootstrap snapshot.
* Per batch, only deltas cross the wire: the capability changes and
  data updates the parent observed since the worker's last sync point,
  the committed rewritings of home views that were executed on another
  shard, and the routed :class:`~repro.sync.scheduler.ChainGroup` work
  items.  No re-fork, no per-batch snapshot pickling — the
  ``snapshot_bytes`` accounting in :class:`ShardDispatch` is zero on
  every warm dispatch, and the benchmarks gate on exactly that.
* Chain groups that span shards route to the shard owning the item
  with the **heaviest salvage bound** (ties to the earliest plan
  order); the other shards receive the group's foreign view records as
  *loaners* for the duration of the batch, and the commits flow back
  to the home shards through the delta log.  Observable outcomes stay
  plan-order and byte-identical to ``serial``.

Drift safety: the pool watches the parent VKB's mutation counter, the
parent's relation-name set, the parent MKB's constraint fingerprint
(:meth:`~repro.misd.mkb.MetaKnowledgeBase.constraint_fingerprint` — a
monotone add-counter capability changes never bump), and
``CacheInvalidated("relation-registered")`` events; any out-of-band
mutation (``define_view``, ``drop_view``, ``register_relation``,
``add_join_constraint``/``add_pc_constraint``, ``resume_deferred``, a
serial scheduler run against the same system, ...) triggers a full
re-bootstrap on the next dispatch, announced as a
:class:`~repro.events.ShardRebalanced` event (constraint additions use
``reason="mkb-drift"``).

Failure semantics: workers reply per batch; nothing is adopted into
the parent VKB until every dispatched shard has replied successfully.
A worker exception (or a dead worker process) therefore aborts the
batch with a :class:`~repro.errors.SynchronizationError` naming the
failing view, tears the pool down (one
:class:`~repro.events.WorkerRecycled` per worker), and leaves the
parent consistent; the next dispatch re-bootstraps.
"""

from __future__ import annotations

import os
import pickle
import weakref
import zlib
from dataclasses import dataclass

from repro.errors import SynchronizationError
from repro.events import CacheInvalidated, ShardRebalanced, WorkerRecycled
from repro.space.changes import AddRelation, DeleteRelation, RenameRelation

__all__ = ["ShardDispatch", "ShardedWorkerPool"]


#: Environment variable for deterministic failure injection in tests:
#: set to a view name to make the worker replaying that view raise, or
#: to ``"kill!<view>"`` to make the worker die without replying.  Read
#: in the *parent* at dispatch time and shipped inside the batch
#: message, so tests can clear it without respawning workers.
FAULT_ENV = "REPRO_WORKERS_INJECT_FAULT"

#: Seconds between liveness checks while waiting on a worker reply.
_POLL_SECONDS = 0.25


@dataclass(frozen=True)
class ShardDispatch:
    """Per-shard accounting for one dispatched batch."""

    shard: int
    #: Views replayed on this shard this batch (loaners included).
    views: int
    #: Chain groups routed to this shard this batch.
    groups: int
    #: Size of the batch message (deltas + routed work), in bytes.
    bytes_shipped: int
    #: Size of the worker's reply (result rows), in bytes.
    bytes_received: int
    #: Size of the bootstrap snapshot — non-zero only on the dispatch
    #: that (re)built the pool; warm dispatches ship no snapshot.
    snapshot_bytes: int
    #: Wall-clock seconds the worker spent replaying its groups.
    worker_seconds: float

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "views": self.views,
            "groups": self.groups,
            "bytes_shipped": self.bytes_shipped,
            "bytes_received": self.bytes_received,
            "snapshot_bytes": self.snapshot_bytes,
            "worker_seconds": round(self.worker_seconds, 6),
        }


def relation_shard(relation: str, shards: int) -> int:
    """Deterministic relation → shard map.

    crc32, not the builtin ``hash`` — the builtin is salted per process
    and the parent and its spawned workers must agree on the partition.
    """
    return zlib.crc32(relation.encode("utf-8")) % shards


def view_home_shard(view, shards: int) -> int:
    """A view's home shard: the shard of its first referenced relation."""
    names = view.relation_names
    if not names:
        return 0
    return relation_shard(names[0], shards)


def _dedupe_rows(outcomes) -> list:
    """Serialize group outcomes without re-pickling coalesced results.

    Leaders travel as ``("full", order, results, seconds, degraded)``
    rows; coalesced followers as ``("coalesced", order, leader_order,
    seconds, degraded)`` — the receiver rebinds the leader's results to
    the follower's name, reproducing the executing side's rebind float
    for float.  Shared by the workers executor and the fork executor
    (whose per-group payloads used to repeat every follower's full
    result set).
    """
    leader_by_key: dict = {}
    rows = []
    for outcome in outcomes:
        key = outcome.item.coalesce_key
        if outcome.coalesced and key in leader_by_key:
            rows.append(
                (
                    "coalesced",
                    outcome.item.order,
                    leader_by_key[key],
                    outcome.seconds,
                    outcome.degraded,
                )
            )
        else:
            leader_by_key.setdefault(key, outcome.item.order)
            rows.append(
                (
                    "full",
                    outcome.item.order,
                    outcome.results,
                    outcome.seconds,
                    outcome.degraded,
                )
            )
    return rows


def _outcomes_from_rows(rows, by_order, outcomes) -> None:
    """Rebuild :class:`ItemOutcome`\\ s from :func:`_dedupe_rows` rows.

    Appends to ``outcomes`` with ``committed=False`` — the caller (the
    parent process) adopts them into the live VKB in plan order.
    Rebinding a follower here is exact: the leader's results are the
    very objects a worker-side rebind would have started from, and
    :func:`~repro.sync.scheduler._rebind_results` never reads anything
    name-dependent.
    """
    from repro.sync.scheduler import ItemOutcome, _rebind_results

    leaders: dict[int, tuple] = {}
    for row in rows:
        if row[0] == "full":
            _, order, results, seconds, degraded = row
            leaders[order] = results
            outcomes.append(
                ItemOutcome(
                    by_order[order], results, seconds,
                    committed=False, degraded=degraded,
                )
            )
        else:
            _, order, leader_order, seconds, degraded = row
            results = _rebind_results(
                leaders[leader_order], by_order[order].view_name
            )
            outcomes.append(
                ItemOutcome(
                    by_order[order], results, seconds,
                    committed=False, degraded=degraded, coalesced=True,
                )
            )


# ----------------------------------------------------------------------
# Worker side (spawn target — everything here must import clean)
# ----------------------------------------------------------------------
class _WorkerFailure(Exception):
    """Internal: a batch replay failed; carries the view to blame."""

    def __init__(self, view: str | None, detail: str) -> None:
        super().__init__(detail)
        self.view = view
        self.detail = detail


class _TracingRuntime:
    """Delegates the SchedulerRuntime protocol to the worker's system,
    remembering the view currently being replayed so a crash can be
    attributed exactly."""

    def __init__(self, eve) -> None:
        self.eve = eve
        self.current_view: str | None = None

    def replay_item(self, item, plan, policy=None):
        self.current_view = item.view_name
        return self.eve.replay_item(item, plan, policy)

    def adopt_results(self, results):
        self.eve.adopt_results(results)

    def finalize_view(self, view_name):
        self.eve.finalize_view(view_name)


class _WorkerState:
    """Everything one worker process holds across batches."""

    def __init__(self, eve, scheduler) -> None:
        self.eve = eve
        self.scheduler = scheduler


def _worker_bootstrap(message) -> _WorkerState:
    """Rebuild a full runtime mirror from the bootstrap snapshot."""
    from repro.config import ScheduleConfig
    from repro.core.eve import EVESystem
    from repro.sync.scheduler import SynchronizationScheduler
    from repro.sync.vkb import ViewRecord

    _, space, params, config, coalesce, records, extents = message
    # The shipped space arrives without subscribers
    # (InformationSpace.__getstate__); the rebuilt system registers its
    # own, so shipped data updates maintain the mirrored extents exactly
    # like the parent maintains its own.  auto_synchronize=False gates
    # only capability-triggered synchronization — that work arrives as
    # routed chain groups, never as a listener side effect.
    eve = EVESystem(
        params=params,
        space=space,
        auto_synchronize=False,
        config=config.with_schedule(
            executor="serial", shards=None, max_workers=None,
            budget=None, budget_units=None,
        ),
    )
    for original, current, alive, order in records:
        eve.vkb.adopt_record(
            ViewRecord(original=original, current=current, alive=alive),
            order,
        )
    eve._extents.update(extents)
    return _WorkerState(
        eve, SynchronizationScheduler(ScheduleConfig(coalesce=coalesce))
    )


def _worker_apply_deltas(state: _WorkerState, deltas) -> None:
    """Drain the shipped delta backlog, strictly in parent log order.

    Order matters across kinds: a data update's maintenance consults
    the VKB (``views_referencing``), so a commit that rewrites a view
    must land before updates the parent observed after it.
    """
    eve = state.eve
    for kind, payload in deltas:
        if kind == "change":
            eve.space.apply_change(payload)
        elif kind == "update":
            if payload.is_insert:
                eve.space.insert(payload.relation, payload.row)
            else:
                eve.space.delete(payload.relation, payload.row)
        else:  # "commit": a home view synchronized on another shard
            eve.adopt_results(payload)
            for result in payload:
                if result.chosen is not None:
                    # The mirrored extent no longer matches the evolved
                    # definition; drop it rather than pay a
                    # rematerialization the parent already performs.
                    eve._extents.pop(result.view_name, None)


def _worker_run_batch(state: _WorkerState, message) -> tuple[list, float]:
    """Replay one batch message; return dedupe-format rows + seconds."""
    import traceback
    from time import perf_counter

    from repro.sync.vkb import ViewRecord

    _, deltas, plan, groups, loaners, fault = message
    eve = state.eve
    _worker_apply_deltas(state, deltas)
    for original, current, alive, order in loaners:
        eve.vkb.adopt_record(
            ViewRecord(original=original, current=current, alive=alive),
            order,
        )
    loaner_names = [original.name for original, _, _, _ in loaners]
    runtime = _TracingRuntime(eve)
    rows: list = []
    began = perf_counter()
    try:
        for group, policy, degraded in groups:
            if fault is not None:
                wanted = fault.removeprefix("kill!")
                if any(item.view_name == wanted for item in group.items):
                    if fault.startswith("kill!"):
                        os._exit(17)
                    runtime.current_view = wanted
                    raise RuntimeError(
                        f"injected worker fault for view {wanted!r}"
                    )
            outcomes = state.scheduler._run_group(
                plan, runtime, group, policy, degraded
            )
            rows.extend(_dedupe_rows(outcomes))
            for outcome in outcomes:
                if outcome.results:
                    # Same staleness rule as stray commits above.
                    eve._extents.pop(outcome.item.view_name, None)
    except BaseException as error:  # noqa: BLE001 - re-raised with blame
        raise _WorkerFailure(
            runtime.current_view,
            f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
        ) from error
    finally:
        # Loaners never persist: the home shard owns the record and
        # receives the commit through its delta backlog next dispatch.
        for name in loaner_names:
            if name in eve.vkb:
                eve.vkb.drop(name)
    return rows, perf_counter() - began


def _worker_main(shard: int, inbox, outbox) -> None:
    """Long-lived worker loop: bootstrap once, then batches until stop."""
    import traceback

    state: _WorkerState | None = None
    while True:
        message = pickle.loads(inbox.get())
        kind = message[0]
        if kind == "stop":
            return
        try:
            if kind == "bootstrap":
                state = _worker_bootstrap(message)
                outbox.put(pickle.dumps(("ready", shard, os.getpid())))
            elif kind == "batch":
                rows, seconds = _worker_run_batch(state, message)
                outbox.put(pickle.dumps(("done", shard, rows, seconds)))
        except _WorkerFailure as failure:
            outbox.put(
                pickle.dumps(("error", shard, failure.view, failure.detail))
            )
        except BaseException as error:  # noqa: BLE001 - reported upstream
            outbox.put(
                pickle.dumps(
                    (
                        "error",
                        shard,
                        None,
                        f"{type(error).__name__}: {error}\n"
                        f"{traceback.format_exc()}",
                    )
                )
            )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """One shard's process + queue pair, as seen from the parent."""

    def __init__(self, shard: int, context) -> None:
        self.shard = shard
        self.inbox = context.Queue()
        self.outbox = context.Queue()
        self.process = context.Process(
            target=_worker_main,
            args=(shard, self.inbox, self.outbox),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        self.process.start()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def send(self, message: tuple) -> int:
        """Ship one message; return its size in bytes (the messages are
        pickled here, not by the queue, so shipping is accountable)."""
        payload = pickle.dumps(message)
        self.inbox.put(payload)
        return len(payload)

    def receive(self) -> tuple[tuple, int]:
        """Block for a reply, polling liveness; return (message, bytes)."""
        import queue as queue_module

        while True:
            try:
                payload = self.outbox.get(timeout=_POLL_SECONDS)
                return pickle.loads(payload), len(payload)
            except queue_module.Empty:
                if not self.process.is_alive():
                    raise SynchronizationError(
                        f"worker process for shard {self.shard} "
                        f"(pid {self.pid}) died without replying"
                    ) from None

    def stop(self) -> None:
        try:
            if self.process.is_alive():
                self.send(("stop",))
                self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=2.0)
        finally:
            try:
                self.process.close()
            except ValueError:
                pass
            self.inbox.close()
            self.outbox.close()


class ShardedWorkerPool:
    """The parent-side face of the persistent worker fleet.

    Owned by one :class:`~repro.sync.scheduler.SynchronizationScheduler`
    and bound to the first runtime it dispatches for.  Survives across
    ``apply_changes`` batches; closed via
    :meth:`~repro.core.eve.EVESystem.close` (the workers are daemon
    processes, so a forgotten pool never hangs interpreter exit).
    """

    def __init__(self, config) -> None:
        #: The owning scheduler's :class:`~repro.config.ScheduleConfig`.
        self.config = config
        self.shards = config.shards or 1
        self._workers: list[_WorkerHandle] = []
        self._runtime = None
        self._space = None
        #: view name -> home shard, frozen per bootstrap epoch.
        self._home: dict[str, int] = {}
        #: Chronological delta log: ``(kind, payload, target)`` where
        #: ``target`` is None for broadcast entries (capability changes,
        #: data updates) and a shard index for stray commits (a home
        #: view's results executed on another shard).
        self._log: list[tuple] = []
        #: Per-shard read positions into ``_log``.
        self._cursors: list[int] = []
        self._expected_vkb_version: int | None = None
        self._expected_constraint_fingerprint: int | None = None
        self._predicted_relations: set[str] = set()
        self._dirty_reason: str | None = None
        self._pending_snapshot_bytes: dict[int, int] = {}

    # -- parent-side observation ---------------------------------------
    def _on_change(self, change) -> None:
        self._log.append(("change", change, None))
        if isinstance(change, AddRelation):
            self._predicted_relations.add(change.new_relation.schema.name)
        elif isinstance(change, DeleteRelation):
            self._predicted_relations.discard(change.relation)
        elif isinstance(change, RenameRelation):
            self._predicted_relations.discard(change.relation)
            self._predicted_relations.add(change.new_name)

    def _on_update(self, update) -> None:
        self._log.append(("update", update, None))

    def _on_cache_invalidated(self, event) -> None:
        # register_relation mutates the MKB without a capability change;
        # its CacheInvalidated emission is the only observable trace (and
        # the relation-name compare below catches the unobserved case).
        if event.reason == "relation-registered":
            self._dirty_reason = "drift"

    # -- lifecycle ------------------------------------------------------
    def _emit(self, runtime, event) -> None:
        events = getattr(runtime, "events", None)
        if events is not None and events.wants(type(event)):
            events.emit(event)

    def _needs_bootstrap(self, runtime) -> str | None:
        """Why the pool must (re)build before dispatching, or None."""
        if self._runtime is None or self._runtime() is not runtime:
            return "bootstrap"
        if not self._workers:
            return "recycle"
        if self._dirty_reason is not None:
            return self._dirty_reason
        if runtime.vkb.version != self._expected_vkb_version:
            return "drift"
        if (
            set(runtime.space.mkb.relation_names)
            != self._predicted_relations
        ):
            return "drift"
        if (
            runtime.space.mkb.constraint_fingerprint()
            != self._expected_constraint_fingerprint
        ):
            # An out-of-band add_join_constraint/add_pc_constraint: the
            # worker mirrors have never seen the constraint and would
            # search against stale knowledge.
            return "mkb-drift"
        return None

    def _teardown(self, runtime, failed_shard: int | None = None) -> None:
        for handle in self._workers:
            reason = "crash" if handle.shard == failed_shard else "shutdown"
            self._emit(
                runtime, WorkerRecycled(handle.shard, handle.pid, reason)
            )
            try:
                handle.stop()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._workers = []

    def close(self) -> None:
        """Stop every worker; a later dispatch re-bootstraps."""
        runtime = self._runtime() if self._runtime is not None else None
        self._teardown(runtime if runtime is not None else _NullRuntime())

    def _bootstrap(self, runtime, reason: str) -> None:
        import multiprocessing

        if self._workers:
            self._teardown(runtime)
        if self._space is not runtime.space:
            # First binding to this runtime's space: observe it.  The
            # listeners stay registered for the space's lifetime — they
            # only append to the pool's log, which re-bootstraps clear.
            runtime.space.on_capability_change(self._on_change)
            runtime.space.on_data_update(self._on_update)
            self._space = runtime.space
            subscribe = getattr(runtime, "subscribe", None)
            if subscribe is not None:
                subscribe(CacheInvalidated, self._on_cache_invalidated)
        self._runtime = weakref.ref(runtime)

        self._home = {}
        per_shard_records: list[list] = [[] for _ in range(self.shards)]
        per_shard_extents: list[dict] = [{} for _ in range(self.shards)]
        alive = 0
        for record in runtime.vkb:
            shard = view_home_shard(record.current, self.shards)
            self._home[record.name] = shard
            per_shard_records[shard].append(
                (
                    record.original,
                    record.current,
                    record.alive,
                    runtime.vkb.order_of(record.name),
                )
            )
            if record.alive:
                alive += 1
            extent = runtime._extents.get(record.name)
            if extent is not None:
                per_shard_extents[shard][record.name] = extent

        context = multiprocessing.get_context("spawn")
        self._workers = [
            _WorkerHandle(shard, context) for shard in range(self.shards)
        ]
        self._pending_snapshot_bytes = {}
        try:
            for handle in self._workers:
                self._pending_snapshot_bytes[handle.shard] = handle.send(
                    (
                        "bootstrap",
                        runtime.space,
                        runtime.params,
                        runtime.config,
                        self.config.coalesce,
                        per_shard_records[handle.shard],
                        per_shard_extents[handle.shard],
                    )
                )
            for handle in self._workers:
                reply, _ = handle.receive()
                if reply[0] != "ready":
                    raise SynchronizationError(
                        f"shard {handle.shard} failed to bootstrap:\n"
                        f"{reply[-1]}"
                    )
        except BaseException:
            self._teardown(runtime)
            raise
        # The snapshot covers everything up to this instant: restart the
        # delta clock here.
        self._log = []
        self._cursors = [0] * self.shards
        self._expected_vkb_version = runtime.vkb.version
        self._expected_constraint_fingerprint = (
            runtime.space.mkb.constraint_fingerprint()
        )
        self._predicted_relations = set(runtime.space.mkb.relation_names)
        self._dirty_reason = None
        self._emit(runtime, ShardRebalanced(self.shards, alive, reason))

    # -- dispatch -------------------------------------------------------
    def _route(self, group) -> int:
        """The shard homing the group's heaviest-salvage-bound item."""
        heaviest = max(
            group.items, key=lambda item: (item.cost_bound, -item.order)
        )
        return self._home[heaviest.view_name]

    def _drain(self, shard: int) -> list[tuple]:
        """This shard's unseen delta backlog, in chronological order."""
        entries = [
            (kind, payload)
            for kind, payload, target in self._log[self._cursors[shard]:]
            if target is None or target == shard
        ]
        self._cursors[shard] = len(self._log)
        return entries

    def _trim_log(self) -> None:
        seen = min(self._cursors) if self._cursors else 0
        if seen:
            del self._log[:seen]
            self._cursors = [cursor - seen for cursor in self._cursors]

    def run_batch(
        self, plan, runtime, dispatchable
    ) -> tuple[list, list[ShardDispatch]]:
        """Dispatch one batch's chain groups; commit in plan order.

        ``dispatchable`` carries the scheduler's up-front budget
        decisions: ``(group, policy, degraded)`` triples, exactly like
        the fork executor's.  Returns the plan-order
        :class:`~repro.sync.scheduler.ItemOutcome` list (already
        adopted into the parent VKB, ``committed=True``) and the
        per-shard accounting rows.
        """
        reason = self._needs_bootstrap(runtime)
        if reason is not None:
            self._bootstrap(runtime, reason)
        snapshot_bytes = self._pending_snapshot_bytes
        self._pending_snapshot_bytes = {}

        routed: dict[int, list] = {}
        loaners: dict[int, dict[str, tuple]] = {}
        for group, policy, degraded in dispatchable:
            shard = self._route(group)
            routed.setdefault(shard, []).append((group, policy, degraded))
            for item in group.items:
                if self._home[item.view_name] != shard:
                    record = runtime.vkb.record(item.view_name)
                    loaners.setdefault(shard, {})[item.view_name] = (
                        record.original,
                        record.current,
                        record.alive,
                        runtime.vkb.order_of(item.view_name),
                    )

        # Work items ship inside their groups; the plan travels once,
        # stripped to what replays consult (changes + the by-relation
        # worklist index).
        slim_plan = type(plan)((), plan.changes, plan.by_relation)
        fault = os.environ.get(FAULT_ENV) or None
        shipped: dict[int, int] = {}
        for shard, groups in routed.items():
            shipped[shard] = self._workers[shard].send(
                (
                    "batch",
                    self._drain(shard),
                    slim_plan,
                    groups,
                    list(loaners.get(shard, {}).values()),
                    fault,
                )
            )

        # Collect every reply before adopting anything: a failed shard
        # must leave the parent VKB untouched by the whole batch.
        rows_by_shard: dict[int, tuple[list, float, int]] = {}
        for shard in routed:
            handle = self._workers[shard]
            try:
                reply, received = handle.receive()
            except SynchronizationError as death:
                self._teardown(runtime, failed_shard=shard)
                in_flight = [
                    item.view_name
                    for group, _, _ in routed[shard]
                    for item in group.items
                ]
                raise SynchronizationError(
                    f"{death} while synchronizing "
                    f"{', '.join(in_flight[:5])}"
                    f"{', ...' if len(in_flight) > 5 else ''}"
                ) from death
            if reply[0] == "error":
                _, _, view, detail = reply
                self._teardown(runtime, failed_shard=shard)
                named = f"view {view!r}" if view else "an unknown view"
                raise SynchronizationError(
                    f"worker for shard {shard} failed while "
                    f"synchronizing {named}:\n{detail}"
                )
            _, _, rows, seconds = reply
            rows_by_shard[shard] = (rows, seconds, received)

        by_order = {item.order: item for item in plan.items}
        outcomes: list = []
        executed_on: dict[int, int] = {}
        for shard, (rows, _, _) in rows_by_shard.items():
            before = len(outcomes)
            _outcomes_from_rows(rows, by_order, outcomes)
            for outcome in outcomes[before:]:
                executed_on[outcome.item.order] = shard
        outcomes.sort(key=lambda outcome: outcome.item.order)
        for outcome in outcomes:
            runtime.adopt_results(outcome.results)
            outcome.committed = True
            # A home shard that did not execute its view receives the
            # commit through its delta backlog, in log order.
            home = self._home[outcome.item.view_name]
            if outcome.results and home != executed_on[outcome.item.order]:
                self._log.append(("commit", outcome.results, home))
        self._expected_vkb_version = runtime.vkb.version
        self._trim_log()

        dispatches = [
            ShardDispatch(
                shard=shard,
                views=sum(len(group.items) for group, _, _ in groups),
                groups=len(groups),
                bytes_shipped=shipped[shard],
                bytes_received=rows_by_shard[shard][2],
                snapshot_bytes=snapshot_bytes.get(shard, 0),
                worker_seconds=rows_by_shard[shard][1],
            )
            for shard, groups in routed.items()
        ]
        # Shards that only paid a bootstrap this batch still surface
        # the snapshot cost.
        dispatches.extend(
            ShardDispatch(
                shard=shard, views=0, groups=0, bytes_shipped=0,
                bytes_received=0, snapshot_bytes=cost, worker_seconds=0.0,
            )
            for shard, cost in snapshot_bytes.items()
            if shard not in routed
        )
        dispatches.sort(key=lambda dispatch: dispatch.shard)
        return outcomes, dispatches

    @property
    def worker_pids(self) -> dict[int, int | None]:
        """shard -> pid of the live fleet (diagnostics and tests)."""
        return {handle.shard: handle.pid for handle in self._workers}


class _NullRuntime:
    """Event sink for closing a pool whose runtime is already gone."""

    events = None
