"""The streaming rewriting-search pipeline (synchronize → rank, staged).

The eager control plane materialized the full candidate list, scored
every candidate with the complete QC-Model, and only then looked at the
ranking.  This module restructures that loop into staged streams:

    generate → VE filter → (dominated expansion) → dedup → legality
             → cost pricing → upper-bound-pruned quality assessment

Candidate *generation* is lazy (:mod:`repro.sync.generators`), so
illegal and duplicate candidates are discarded before the next one is
even built.  *Assessment* is incremental: every legal candidate's
maintenance cost is priced (cheap arithmetic, and Eq. 25's min-max
normalization needs the whole set's totals anyway), but the expensive
quality estimation only runs when the candidate's QC-Value *upper
bound* (:meth:`~repro.qc.model.QCModel.qc_upper_bound` — quality
bounded by attribute preservation, cost exact) still beats the best
fully-assessed QC-Value.  Because the bound is monotone under IEEE-754
and candidates are visited in generation order, the ``pruned`` policy
provably commits the *identical* winner (same floats) as ``exhaustive``
— the paper's ranking semantics at a fraction of the assessments.

Four :class:`SearchPolicy` flavours:

* ``exhaustive`` — assess everything; byte-identical to the eager path.
* ``pruned`` (default) — stop-early upper-bound search, same winner.
* ``top_k(k)`` — pruned against the k-th best; returns k evaluations,
  same winner.
* ``first_legal`` — commit the first legal rewriting discovered: the
  original EVE prototype's behaviour, kept as the quality baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import SynchronizationError
from repro.esql.ast import ViewDefinition
from repro.space.changes import SchemaChange
from repro.sync.legality import check_legality
from repro.sync.rewriting import ExtentRelationship, Rewriting
from repro.sync.synchronizer import ViewSynchronizer

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.config import SearchConfig
    from repro.qc.cost import CostAssessment
    from repro.qc.model import Evaluation, QCModel
    from repro.qc.workload import WorkloadSpec


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchPolicy:
    """How much of the candidate stream the search is willing to assess."""

    kind: str
    k: int = 0

    _KINDS = ("exhaustive", "pruned", "top_k", "first_legal")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise SynchronizationError(
                f"unknown search policy {self.kind!r}; "
                f"expected one of {', '.join(self._KINDS)}"
            )
        if self.kind == "top_k" and self.k < 1:
            raise SynchronizationError("top_k policy needs k >= 1")

    # -- constructors ---------------------------------------------------
    @classmethod
    def exhaustive(cls) -> "SearchPolicy":
        return cls("exhaustive")

    @classmethod
    def pruned(cls) -> "SearchPolicy":
        return cls("pruned")

    @classmethod
    def top_k(cls, k: int) -> "SearchPolicy":
        return cls("top_k", k)

    @classmethod
    def first_legal(cls) -> "SearchPolicy":
        return cls("first_legal")

    @classmethod
    def of(cls, spec: "SearchPolicy | str") -> "SearchPolicy":
        """Coerce a policy or a name like ``"pruned"`` / ``"top_k(3)"``."""
        if isinstance(spec, cls):
            return spec
        name = spec.strip()
        if name.startswith("top_k(") and name.endswith(")"):
            try:
                k = int(name[len("top_k(") : -1])
            except ValueError:
                raise SynchronizationError(
                    f"malformed top_k policy {name!r}; expected top_k(<int>)"
                ) from None
            return cls.top_k(k)
        return cls(name)

    def __str__(self) -> str:
        return f"top_k({self.k})" if self.kind == "top_k" else self.kind


# ----------------------------------------------------------------------
# Per-stage accounting
# ----------------------------------------------------------------------
@dataclass
class StageCounters:
    """How many candidates each pipeline stage saw, kept, or skipped."""

    generated: int = 0      #: candidates the move families produced
    dominated: int = 0      #: dominated variants added to the stream
    ve_rejected: int = 0    #: dropped by the view-extent (VE) filter
    duplicates: int = 0     #: canonical duplicates discarded in-stream
    illegal: int = 0        #: rejected by the independent legality audit
    legal: int = 0          #: survivors entering the ranking stage
    costed: int = 0         #: maintenance-cost pricings performed
    assessed: int = 0       #: full quality assessments performed
    pruned: int = 0         #: assessments skipped via the QC upper bound
    seconds: float = 0.0    #: wall-clock spent in the search (per view)
    degraded: int = 0       #: searches demoted to ``first_legal`` by a
                            #: scheduler deadline (see sync.scheduler)
    deferred: int = 0       #: synchronizations parked past the budget
    rows_scanned: int = 0   #: rows column kernels looked at (columnar
                            #: re-materializations only; zero elsewhere)
    rows_selected: int = 0  #: rows those kernels kept

    def merged(self, other: "StageCounters") -> "StageCounters":
        return StageCounters(
            *(
                getattr(self, f.name) + getattr(other, f.name)
                for f in self.__dataclass_fields__.values()
            )
        )

    def __str__(self) -> str:
        text = (
            f"generated={self.generated} dominated={self.dominated} "
            f"ve_rejected={self.ve_rejected} duplicates={self.duplicates} "
            f"illegal={self.illegal} legal={self.legal} "
            f"costed={self.costed} assessed={self.assessed} "
            f"pruned={self.pruned} seconds={self.seconds:.4f}"
        )
        if self.degraded or self.deferred:
            text += f" degraded={self.degraded} deferred={self.deferred}"
        if self.rows_scanned or self.rows_selected:
            text += (
                f" rows_scanned={self.rows_scanned} "
                f"rows_selected={self.rows_selected}"
            )
        return text


@dataclass
class PipelineResult:
    """Outcome of one streamed rewriting search for one view."""

    view_name: str
    change: SchemaChange
    policy: SearchPolicy
    evaluations: "list[Evaluation]"
    chosen: "Evaluation | None"
    counters: StageCounters = field(default_factory=StageCounters)
    #: Statistics-estimated EXPLAIN plan of the chosen winner (dict form
    #: of :class:`~repro.esql.explain.EvaluationPlan`, optimizer
    #: decisions included); ``None`` unless the pipeline was built with
    #: ``explain=True`` and a winner survived.
    plan: "dict | None" = None

    @property
    def survived(self) -> bool:
        return self.chosen is not None


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class RewritingSearchPipeline:
    """Staged, streaming synchronize-and-rank over pluggable generators.

    The pipeline's default policy comes from its
    :class:`~repro.config.SearchConfig` slice (``config=``).  Per-call
    ``policy`` overrides on :meth:`search` are first-class (the
    scheduler's degradation path relies on them).
    """

    def __init__(
        self,
        synchronizer: ViewSynchronizer,
        qc_model: "QCModel",
        config: "SearchConfig | None" = None,
        explain: bool = False,
    ) -> None:
        self.synchronizer = synchronizer
        self.qc_model = qc_model
        #: When set, every surviving search also runs the guard-railed
        #: optimizer pass (statistics-only, pre-extent) over the chosen
        #: winner and attaches the resulting EXPLAIN plan to
        #: :attr:`PipelineResult.plan`.  Purely annotative: QC ranking
        #: and the chosen winner are byte-identical either way
        #: (``tests/property/test_pipeline_parity.py``).
        self.explain = explain
        if config is not None:
            self.policy = config.search_policy()
        else:
            self.policy = SearchPolicy.pruned()

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _stream(
        self,
        resolved: ViewDefinition,
        change: SchemaChange,
        counters: StageCounters,
        include_dominated: bool,
    ) -> Iterator[Rewriting]:
        """The filter half: generate → VE → (dominated) → dedup → legality."""
        if not self.synchronizer.is_affected(resolved, change):
            candidates: Iterator[Rewriting] = iter(
                [Rewriting(resolved, resolved, (), ExtentRelationship.EQUAL)]
            )
        else:
            candidates = self.synchronizer.generate_candidates(
                resolved, change
            )
        stream = self._ve_stage(candidates, resolved, counters)
        if include_dominated:
            stream = self._dominated_stage(stream, counters)
        stream = self._dedup_stage(stream, counters)
        return self._legality_stage(stream, counters)

    def _ve_stage(self, candidates, resolved, counters):
        extent_parameter = resolved.extent_parameter
        for rewriting in candidates:
            counters.generated += 1
            if rewriting.extent_relationship.satisfies(extent_parameter):
                yield rewriting
            else:
                counters.ve_rejected += 1

    def _dominated_stage(self, stream, counters):
        seen = 0
        for rewriting in self.synchronizer.expand_dominated(stream):
            seen += 1
            if seen > counters.generated - counters.ve_rejected:
                counters.dominated += 1
            yield rewriting

    def _dedup_stage(self, stream, counters):
        seen: set[ViewDefinition] = set()
        for rewriting in stream:
            if rewriting.view in seen:
                counters.duplicates += 1
                continue
            seen.add(rewriting.view)
            yield rewriting

    def _legality_stage(self, stream, counters):
        for rewriting in stream:
            if check_legality(rewriting).legal:
                counters.legal += 1
                yield rewriting
            else:
                counters.illegal += 1

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def search(
        self,
        view: ViewDefinition,
        change: SchemaChange,
        workload: "WorkloadSpec | None" = None,
        updated_relation: str | None = None,
        include_dominated: bool = False,
        policy: SearchPolicy | str | None = None,
    ) -> PipelineResult:
        """Stream, filter, and rank the rewritings of ``view`` under
        ``change``; returns the chosen winner plus per-stage counters.

        Under ``exhaustive``, ``pruned``, and ``top_k`` the chosen
        rewriting (and its QC-Value) is identical to the eager
        reference path; ``first_legal`` reproduces the original EVE
        prototype instead.  An empty result (``chosen is None``) means
        the view cannot be salvaged.
        """
        started = perf_counter()
        active = SearchPolicy.of(policy) if policy is not None else self.policy
        counters = StageCounters()
        resolved = self.synchronizer.resolve(view)
        stream = self._stream(resolved, change, counters, include_dominated)

        if active.kind == "first_legal":
            evaluations = self._rank_first_legal(
                stream, workload, updated_relation, counters
            )
        else:
            legal = list(stream)
            if active.kind == "exhaustive":
                counters.costed = counters.assessed = len(legal)
                evaluations = self.qc_model.evaluate(
                    legal, workload, updated_relation
                )
            else:
                evaluations = self._rank_pruned(
                    legal,
                    workload,
                    updated_relation,
                    counters,
                    keep=1 if active.kind == "pruned" else active.k,
                )
                if active.kind == "top_k":
                    evaluations = evaluations[: active.k]
        chosen = evaluations[0] if evaluations else None
        plan = (
            self._explain_winner(chosen)
            if self.explain and chosen is not None
            else None
        )
        counters.seconds = perf_counter() - started
        return PipelineResult(
            resolved.name, change, active, evaluations, chosen, counters,
            plan=plan,
        )

    def _explain_winner(self, chosen: "Evaluation") -> "dict | None":
        """The pre-assessment optimizer pass over the committed winner.

        Runs on statistics alone (no extent exists for the rewriting
        yet), so cost-model guards still score every transform but the
        semi-join proof — which needs a live index — refuses as
        unprovable.  Never raises: an unplannable winner (e.g. a
        relation the MKB no longer covers) yields ``None``.
        """
        from repro.esql.explain import build_plan
        from repro.sync.optimizer import PlanOptimizer

        view = chosen.rewriting.view
        mkb = self.synchronizer.mkb
        try:
            schemas = {
                name: mkb.schema(name) for name in view.relation_names
            }
            statistics = mkb.statistics
            hints, report = PlanOptimizer(statistics).optimize(
                view, None, schemas=schemas
            )
            plan = build_plan(
                view,
                None,
                statistics,
                schemas=schemas,
                hints=hints,
                optimizer=report,
            )
        except Exception:  # noqa: BLE001 - best-effort EXPLAIN; never fails the sync it describes
            return None
        return plan.to_dict()

    # ------------------------------------------------------------------
    # Ranking policies
    # ------------------------------------------------------------------
    def _rank_first_legal(
        self, stream, workload, updated_relation, counters
    ) -> "list[Evaluation]":
        """The old-EVE baseline: take the first legal candidate, stop."""
        first = next(stream, None)
        if first is None:
            return []
        counters.costed = counters.assessed = 1
        return self.qc_model.evaluate([first], workload, updated_relation)

    def _rank_pruned(
        self,
        legal: list[Rewriting],
        workload: "WorkloadSpec | None",
        updated_relation: str | None,
        counters: StageCounters,
        keep: int,
    ) -> "list[Evaluation]":
        """Upper-bound-pruned assessment; same winner as exhaustive.

        Candidates are visited in generation order; a candidate is fully
        assessed only while its QC upper bound (exact normalized cost,
        quality floored at the interface term) can still beat the
        ``keep``-th best assessed QC-Value.  Ties break toward earlier
        candidates — exactly the stable sort of the eager ranking.
        """
        from repro.qc.cost import normalize_costs
        from repro.qc.model import Evaluation, qc_score

        if not legal:
            return []
        model = self.qc_model
        costs: "list[CostAssessment]" = [
            model.cost_of(rewriting, workload, updated_relation)
            for rewriting in legal
        ]
        counters.costed = len(legal)
        normalized = normalize_costs(cost.total for cost in costs)

        assessed: list[tuple] = []
        best_scores: list[float] = []  # descending, at most ``keep`` long
        for rewriting, cost, norm in zip(legal, costs, normalized):
            if len(best_scores) >= keep:
                bound = model.qc_upper_bound(rewriting, norm)
                if bound <= best_scores[keep - 1]:
                    counters.pruned += 1
                    continue
            quality = model.quality_of(rewriting)
            counters.assessed += 1
            qc = qc_score(quality.dd, norm, model.params)
            assessed.append((rewriting, quality, cost, norm, qc))
            best_scores.append(qc)
            best_scores.sort(reverse=True)
            del best_scores[keep:]

        ranked = sorted(assessed, key=lambda entry: entry[4], reverse=True)
        return [
            Evaluation(rewriting, quality, cost, norm, qc, rank)
            for rank, (rewriting, quality, cost, norm, qc) in enumerate(
                ranked, start=1
            )
        ]
