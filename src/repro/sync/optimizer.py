"""Guard-railed rewrite optimizer: cost-scored, plan-shape-only transforms.

The pre-assessment pass "Efficient Cost-Based Rewrite in a Bottom-Up
Optimizer" motivates: enumerate applicable plan transforms, score each
one against the EXPLAIN cost model (:mod:`repro.esql.explain`), apply
only the ones the model proves an improvement, and *refuse* — with a
recorded reason — everything else.  Two transforms are implemented:

``push_local_conditions``
    At an index-probe step whose residual conjunction contains local
    conditions (single-relation clauses over the probed relation), hoist
    them ahead of candidate construction, ordered most-selective-first:
    probed rows failing a local condition never materialize a candidate
    tuple (tuple plane) and never force a gather of incoming columns
    (columnar plane).  Sound because conjunctions short-circuit in
    clause order and a local clause reads only the probed row.
    Refused when the cost model scores no improvement (e.g. a recorded
    selectivity of 1.0 keeps every row, so prefiltering only adds
    predicate calls).

``semi_join_probe``
    The final probe step of a plan whose relation feeds no SELECT output
    and carries no residual clauses is a semi join (its columns exist
    only to be probed) — but under bag semantics it may only run as an
    existence check when each probe key provably matches at most one
    row, otherwise match multiplicities would be lost.  The proof is
the probed hash index's own uniqueness
    (checked against the live extent, which cannot change mid
    evaluation); without it the transform is refused.

Every decision — applied or refused, with the before/after cost — lands
in an :class:`OptimizationReport`, surfaced through
``EVESystem.explain(view)`` and the ``plans`` section of the schema-v3
:class:`~repro.report.SystemReport`.  Transforms never change which
rows a view returns or any modeled CF_M/CF_T/CF_IO counter; the parity
suites (``test_engine_equivalence``, ``test_columnar_parity``,
``test_pipeline_parity``) hold with ``optimize=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

from repro.esql.ast import ViewDefinition
from repro.misd.statistics import SpaceStatistics
from repro.relational.expressions import PrimitiveClause

__all__ = [
    "OptimizationReport",
    "PlanHints",
    "PlanOptimizer",
    "TransformDecision",
]

PUSH_LOCAL = "push_local_conditions"
SEMI_PROBE = "semi_join_probe"


@dataclass(frozen=True)
class TransformDecision:
    """One transform site's verdict: applied, or refused with a reason."""

    transform: str
    relation: str
    applied: bool
    reason: str
    cost_before: float
    cost_after: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable decision row."""
        return {
            "transform": self.transform,
            "relation": self.relation,
            "applied": self.applied,
            "reason": self.reason,
            "cost_before": self.cost_before,
            "cost_after": self.cost_after,
        }

    def to_text(self) -> str:
        """One-line human rendering (verdict, reason, cost delta)."""
        verdict = "applied" if self.applied else "refused"
        return (
            f"- {self.transform} @ {self.relation}: {verdict} "
            f"({self.reason}; cost {self.cost_before:.4g} -> "
            f"{self.cost_after:.4g})"
        )


@dataclass(frozen=True)
class OptimizationReport:
    """Every transform site the pass considered, in plan order."""

    decisions: tuple[TransformDecision, ...] = ()

    @property
    def applied(self) -> tuple[TransformDecision, ...]:
        """Decisions the cost model accepted."""
        return tuple(d for d in self.decisions if d.applied)

    @property
    def refused(self) -> tuple[TransformDecision, ...]:
        """Decisions refused, each carrying its reason string."""
        return tuple(d for d in self.decisions if not d.applied)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable report (decision rows plus tallies)."""
        return {
            "decisions": [d.to_dict() for d in self.decisions],
            "applied": len(self.applied),
            "refused": len(self.refused),
        }

    def to_text(self) -> str:
        """Multi-line human rendering, one line per considered site."""
        if not self.decisions:
            return "optimizer: no transform sites"
        lines = [
            f"optimizer: {len(self.applied)} applied, "
            f"{len(self.refused)} refused"
        ]
        lines.extend("  " + d.to_text() for d in self.decisions)
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanHints:
    """The applied transforms, as directives the evaluator consumes.

    ``pushdown`` maps a relation name to the exact clause objects (from
    the resolved view, most-selective-first) to evaluate on probed rows
    before candidate construction; ``semi`` names the relations whose
    probe steps run as early-terminating existence checks.  The
    evaluator re-checks the structural preconditions at the point of
    use, so a hint that no longer matches the plan is ignored rather
    than trusted.
    """

    pushdown: Mapping[str, tuple[PrimitiveClause, ...]]
    semi: frozenset[str]

    @property
    def empty(self) -> bool:
        """True when no transform was applied (evaluator skips hints)."""
        return not self.pushdown and not self.semi


class PlanOptimizer:
    """Scores candidate transforms against the EXPLAIN cost model."""

    def __init__(self, statistics: SpaceStatistics | None = None) -> None:
        self.statistics = statistics

    def optimize(
        self,
        view: ViewDefinition,
        relations=None,
        config=None,
        schemas=None,
    ) -> "tuple[PlanHints, OptimizationReport]":
        """Plan ``view``, consider every transform site, return verdicts.

        ``relations`` may be ``None`` for a statistics-only pass (the
        sync pipeline runs one pre-assessment, before extents exist);
        the semi-join proof then has no index to inspect and the
        transform is refused as unprovable.
        """
        from repro.config import EngineConfig
        from repro.esql.explain import build_plan
        from repro.misd.statistics import DEFAULT_JOIN_SELECTIVITY

        if config is None:
            config = EngineConfig()
        plan = build_plan(
            view, relations, self.statistics, config, schemas=schemas
        )
        lookup = None
        if relations is not None:
            from repro.esql.evaluator import _lookup_from

            lookup = _lookup_from(relations)
        js = (
            self.statistics.join_selectivity
            if self.statistics is not None
            else DEFAULT_JOIN_SELECTIVITY
        )

        decisions: list[TransformDecision] = []
        pushdown: dict[str, tuple[PrimitiveClause, ...]] = {}
        semi: set[str] = set()
        rows_in = 1.0
        last = plan.steps[-1] if plan.steps else None
        for step in plan.steps:
            if step.access == "index_probe":
                emitted = (
                    rows_in * step.relation_rows * js ** len(step.probe)
                )
                # A semi site: the final join step, nothing residual,
                # and the relation feeds no SELECT output — its columns
                # exist only to be probed, so matches need not be
                # materialized (provided the key is unique; _decide_semi
                # demands the proof).
                if (
                    step is last
                    and not step.projected
                    and not step.local_clauses
                    and not step.cross_clauses
                ):
                    decisions.append(
                        self._decide_semi(
                            step, rows_in, emitted, lookup, config, semi
                        )
                    )
                elif step.local_clauses:
                    decisions.append(
                        self._decide_pushdown(
                            step, rows_in, emitted, pushdown
                        )
                    )
            rows_in = step.estimated_rows

        report = OptimizationReport(tuple(decisions))
        return PlanHints(pushdown, frozenset(semi)), report

    # ------------------------------------------------------------------
    def _decide_pushdown(
        self,
        step,
        rows_in: float,
        emitted: float,
        pushdown: dict[str, tuple[PrimitiveClause, ...]],
    ) -> TransformDecision:
        from repro.esql.explain import clause_selectivity

        ordered = sorted(
            step.local_clauses,
            key=lambda c: clause_selectivity(c, self.statistics),
        )
        sigma = 1.0
        for clause in ordered:
            sigma *= clause_selectivity(clause, self.statistics)
        n_residual = len(step.local_clauses) + len(step.cross_clauses)
        cost_before = rows_in + emitted * (1 + n_residual)
        cost_after = (
            rows_in
            + emitted * len(ordered)
            + emitted * sigma * (1 + len(step.cross_clauses))
        )
        if cost_after < cost_before:
            pushdown[step.relation] = tuple(ordered)
            return TransformDecision(
                PUSH_LOCAL,
                step.relation,
                True,
                "cost-improvement",
                cost_before,
                cost_after,
            )
        return TransformDecision(
            PUSH_LOCAL,
            step.relation,
            False,
            "no-improvement",
            cost_before,
            cost_after,
        )

    def _decide_semi(
        self,
        step,
        rows_in: float,
        emitted: float,
        lookup,
        config,
        semi: set[str],
    ) -> TransformDecision:
        cost_before = rows_in + emitted
        cost_after = rows_in
        if config.representation == "columnar":
            return TransformDecision(
                SEMI_PROBE,
                step.relation,
                False,
                "not-applicable: columnar probes are already vectorized",
                cost_before,
                cost_before,
            )
        if lookup is None:
            return TransformDecision(
                SEMI_PROBE,
                step.relation,
                False,
                "not-provable: no extent to check key uniqueness against",
                cost_before,
                cost_before,
            )
        if emitted <= 0:
            return TransformDecision(
                SEMI_PROBE,
                step.relation,
                False,
                "no-improvement",
                cost_before,
                cost_after,
            )
        relation = lookup(step.relation)
        positions = tuple(
            relation.schema.position(attr) for attr in step.probe_attrs
        )
        index = relation.index_on_positions(positions)
        if not index.is_unique:
            return TransformDecision(
                SEMI_PROBE,
                step.relation,
                False,
                "not-provable: duplicate probe keys would lose "
                "match multiplicities",
                cost_before,
                cost_before,
            )
        semi.add(step.relation)
        return TransformDecision(
            SEMI_PROBE,
            step.relation,
            True,
            "cost-improvement: unique-key existence probe",
            cost_before,
            cost_after,
        )
