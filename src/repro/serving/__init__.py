"""The online serving plane: concurrent view reads during evolution.

:class:`ServingFrontend` is the asyncio face of the MVCC snapshot
machinery (:mod:`repro.relational.versioning`): view reads pin the
extent version current at query start and proceed lock-free while a
synchronization storm commits on a writer thread.  See
``docs/serving.md`` for the lifecycle walkthrough.
"""

from repro.serving.frontend import ServedRead, ServingFrontend

__all__ = ["ServedRead", "ServingFrontend"]
