"""Asyncio frontend over :meth:`~repro.core.eve.EVESystem.snapshot`.

The serving contract, end to end:

* **Reads never block on writers.**  :meth:`ServingFrontend.read` pins
  the extent version current at call time (one refcount increment) and
  then reads the pinned immutable mapping without any shared lock, so
  a running ``apply_changes`` storm on the writer thread cannot stall
  it — the read simply serves the pre-batch version until the batch's
  single atomic commit swap.
* **Writes serialize on one writer thread.**  :meth:`apply_changes`
  and :meth:`apply_updates` run on a dedicated single-thread executor;
  awaiting them yields the event loop to concurrent reads.  The
  underlying scheduler executor (``serial`` / ``threads`` /
  ``processes`` / ``workers``) is whatever the system's config says —
  the frontend adds no constraint.
* **Reads are torn-proof.**  A :class:`ServedRead` carries the version
  it was served from; its rows equal that version's committed extent
  byte for byte, never a mixture of two batches.

Constructing the frontend arms the system's MVCC serving mode (takes
and releases one snapshot), which must happen before concurrent
writers start — exactly what creating the frontend first guarantees.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.errors import SynchronizationError

if TYPE_CHECKING:
    from repro.core.eve import EVESystem, SynchronizationResult
    from repro.maintenance.counters import MaintenanceCounters
    from repro.relational.versioning import ExtentSnapshot

__all__ = ["ServedRead", "ServingFrontend"]


@dataclass(frozen=True)
class ServedRead:
    """One served view read: the rows plus the version they came from."""

    view: str
    #: The extent version this read was served from.
    version: int
    #: The view's committed rows at that version, materialized.
    rows: tuple[tuple, ...]

    @property
    def cardinality(self) -> int:
        """Row count of the served extent."""
        return len(self.rows)


class ServingFrontend:
    """Serve snapshot-isolated view reads concurrently with evolution.

    Usage::

        frontend = ServingFrontend(eve)
        async def client():
            read = await frontend.read("V")          # lock-free
        async def operator():
            await frontend.apply_changes(storm)      # writer thread

    Reads run inline on the event loop (they are non-blocking by
    construction); writes run on the frontend's single writer thread so
    one batch commits at a time and ``await`` keeps the loop serving.
    """

    def __init__(self, system: "EVESystem") -> None:
        self._system = system
        # Arm MVCC serving mode before any writer this frontend
        # dispatches can run; from here on every batch publishes an
        # immutable extent version.
        system.snapshot().release()
        self._writer = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="eve-serving-writer"
        )
        self._closed = False

    @property
    def system(self) -> "EVESystem":
        """The served :class:`~repro.core.eve.EVESystem`."""
        return self._system

    @property
    def version(self) -> int:
        """The currently published extent version."""
        return self._system._extents.version

    # -- reads (lock-free after the pin) -------------------------------
    def read_sync(self, view_name: str) -> ServedRead:
        """Read one view at the current version (thread-safe, blocking
        only for the pin's refcount increment — never on writers)."""
        snapshot = self._system.snapshot()
        try:
            relation = snapshot.get(view_name)
            if relation is None:
                raise SynchronizationError(
                    f"view {view_name!r} is not materialized at "
                    f"version {snapshot.version}"
                )
            return ServedRead(
                view_name, snapshot.version, tuple(relation.rows)
            )
        finally:
            snapshot.release()

    async def read(self, view_name: str) -> ServedRead:
        """Async read of one view at the version current at call time."""
        return self.read_sync(view_name)

    def snapshot(self) -> "ExtentSnapshot":
        """A multi-read pin: query several views at one version.

        The caller owns the pin — release it (or use ``with``).
        """
        return self._system.snapshot()

    # -- writes (serialized on the writer thread) ----------------------
    async def apply_changes(self, changes: Iterable) -> (
        "list[SynchronizationResult]"
    ):
        """Run one capability-change batch on the writer thread."""
        batch = list(changes)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._writer, self._system.apply_changes, batch
        )

    async def apply_updates(self, updates: Iterable) -> (
        "MaintenanceCounters"
    ):
        """Run one data-update stream on the writer thread."""
        stream = list(updates)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._writer, self._system.apply_updates, stream
        )

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Drain the writer thread (idempotent; readers keep working)."""
        if not self._closed:
            self._closed = True
            self._writer.shutdown(wait=True)

    async def __aenter__(self) -> "ServingFrontend":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()
