"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available;
error messages always name the offending object (relation, attribute, view,
constraint) to keep failures diagnosable in the multi-source setting.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A relation schema is malformed or used inconsistently."""


class UnknownAttributeError(SchemaError):
    """An attribute name does not exist in the schema it was looked up in."""

    def __init__(self, attribute: str, schema_name: str = "?") -> None:
        super().__init__(f"unknown attribute {attribute!r} in schema {schema_name!r}")
        self.attribute = attribute
        self.schema_name = schema_name


class UnknownRelationError(ReproError):
    """A relation name does not exist in the catalog it was looked up in."""

    def __init__(self, relation: str, where: str = "catalog") -> None:
        super().__init__(f"unknown relation {relation!r} in {where}")
        self.relation = relation
        self.where = where


class TypeMismatchError(SchemaError):
    """A tuple value does not conform to the declared attribute type."""


class ParseError(ReproError):
    """E-SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ConstraintError(ReproError):
    """A MISD constraint is malformed or inconsistent with the schemas."""


class SynchronizationError(ReproError):
    """View synchronization could not proceed (e.g. view not evolvable)."""


class ViewUndefinedError(SynchronizationError):
    """No legal rewriting exists for a view after a capability change."""

    def __init__(self, view_name: str, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"view {view_name!r} cannot be synchronized{detail}")
        self.view_name = view_name


class EvaluationError(ReproError):
    """A QC-Model evaluation was requested with inconsistent inputs."""


class MaintenanceError(ReproError):
    """The incremental-maintenance simulator hit an inconsistent state."""


class WorkspaceError(ReproError):
    """The information space is in a state that forbids the operation."""


class ConfigurationError(ReproError):
    """A system configuration value is invalid or inconsistent.

    Raised by every :mod:`repro.config` profile constructor (unknown
    engine/policy/executor/representation names, negative budgets,
    ``max_workers < 1``, conflicting legacy-kwarg/config spellings) so
    callers validate declarative configurations against one exception
    type regardless of which subsystem the offending field configures.
    """
