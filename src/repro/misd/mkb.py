"""The Meta Knowledge Base (MKB) — Sec. 3's central registry.

The MKB stores, for every relation registered by an information source:

* its schema (the type-integrity constraints of Fig. 4),
* which IS owns it,
* join constraints and PC constraints relating it to other relations,
* the statistics the cost/quality estimators need.

It also implements the *MKB consistency checker* of Fig. 1: constraints are
validated against the registered schemas at registration time, and the MKB
can be re-checked wholesale after schema changes (:meth:`check_consistency`).
When a capability change removes a relation or attribute, the MKB evolves
(:meth:`on_relation_deleted` etc.): constraints that mention deleted pieces
are themselves dropped, exactly like EVE's MKB Evolver.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ConstraintError, UnknownRelationError
from repro.misd.constraints import (
    JoinConstraint,
    PCConstraint,
    PCRelationship,
    TypeIntegrityConstraint,
)
from repro.misd.statistics import RelationStatistics, SpaceStatistics
from repro.relational.schema import Schema


class MetaKnowledgeBase:
    """Registry of schemas, constraints and statistics for the space."""

    def __init__(self, statistics: SpaceStatistics | None = None) -> None:
        #: Bumped on every registration, constraint, or evolution change so
        #: memoized assessments keyed on it (see
        #: :mod:`repro.qc.assessment_cache`) never outlive the knowledge
        #: they were computed from.
        self.version = 0
        #: Bumped only by the *public* constraint-add methods
        #: (:meth:`add_join_constraint` / :meth:`add_pc_constraint` and
        #: their convenience wrappers), never by capability-change
        #: evolution — so it fingerprints exactly the out-of-band
        #: constraint additions a sharded worker mirror cannot have
        #: seen (see :meth:`constraint_fingerprint`).
        self._constraint_epoch = 0
        self._schemas: dict[str, Schema] = {}
        self._owners: dict[str, str] = {}
        self._join_constraints: list[JoinConstraint] = []
        self._pc_constraints: list[PCConstraint] = []
        # Constraints whose subject was deleted by a capability change are
        # *retired*, not forgotten: they still describe how the vanished
        # relation/attribute related to surviving ones, which is exactly the
        # knowledge the view synchronizer needs to find replacements.
        self._historical_join: list[JoinConstraint] = []
        self._historical_pc: list[PCConstraint] = []
        self._dropped_schemas: dict[str, Schema] = {}
        self.statistics = statistics if statistics is not None else SpaceStatistics()

    def _snapshot_schema(self, relation: str, schema: Schema) -> None:
        """Record a pre-change snapshot, merging with earlier snapshots.

        Capability changes may arrive in composed batches: a relation can
        lose two attributes before any affected view is synchronized.
        Overwriting the snapshot would forget the first attribute and
        leave the view unresolvable, so snapshots accumulate — every
        attribute name the relation ever offered stays resolvable.  Live
        views never reference an attribute retired before their last
        synchronization, so the extra names are unreachable from them.
        """
        previous = self._dropped_schemas.get(relation)
        if previous is not None:
            for attribute in previous:
                if attribute.name not in schema:
                    schema = schema.add_attribute(attribute)
        self._dropped_schemas[relation] = schema

    # ------------------------------------------------------------------
    # Schema registration (IS registration, Sec. 3)
    # ------------------------------------------------------------------
    def register_relation(
        self,
        schema: Schema,
        source: str,
        statistics: RelationStatistics | None = None,
    ) -> None:
        """Register ``IS.R(A_1,...,A_n)`` with optional statistics."""
        self.version += 1
        if schema.name in self._schemas:
            raise ConstraintError(
                f"relation {schema.name!r} is already registered "
                f"(by {self._owners[schema.name]!r})"
            )
        self._schemas[schema.name] = schema
        self._owners[schema.name] = source
        if statistics is not None:
            self.statistics.register(schema.name, statistics)

    def deregister_relation(self, relation: str) -> None:
        """Remove the schema/owner entries.

        Statistics are deliberately retained: the quality model still needs
        the deleted relation's cardinality to size the *original* view
        extent it compares rewritings against.
        """
        self.version += 1
        self._require(relation)
        del self._schemas[relation]
        del self._owners[relation]

    def _require(self, relation: str) -> Schema:
        try:
            return self._schemas[relation]
        except KeyError:
            raise UnknownRelationError(relation, "MKB") from None

    def constraint_fingerprint(self) -> int:
        """Monotone counter of *additions* to the constraint set.

        Deliberately insensitive to capability-change evolution: batch
        staging applies the changes to this MKB before dispatch (and
        renames rewrite live constraints in place), so any
        content-based fingerprint would report false drift on every
        batch.  Only the public add methods bump it — which is exactly
        the out-of-band mutation a sharded worker's MKB mirror cannot
        have replayed, so a changed fingerprint means the mirror's
        constraint knowledge is stale and the pool must re-bootstrap
        (``ShardRebalanced(reason="mkb-drift")``).
        """
        return self._constraint_epoch

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._schemas)

    def __contains__(self, relation: str) -> bool:
        return relation in self._schemas

    def schema(self, relation: str) -> Schema:
        return self._require(relation)

    def schemas(self) -> dict[str, Schema]:
        """Snapshot of all registered schemas (name -> schema)."""
        return dict(self._schemas)

    def owner(self, relation: str) -> str:
        self._require(relation)
        return self._owners[relation]

    def relations_of_source(self, source: str) -> tuple[str, ...]:
        return tuple(
            name for name, owner in self._owners.items() if owner == source
        )

    def type_constraints(self, relation: str) -> tuple[TypeIntegrityConstraint, ...]:
        """The TC constraints implied by the registered schema."""
        schema = self._require(relation)
        return tuple(
            TypeIntegrityConstraint(relation, attr.name, attr.type)
            for attr in schema
        )

    # ------------------------------------------------------------------
    # Join constraints
    # ------------------------------------------------------------------
    def add_join_constraint(self, constraint: JoinConstraint) -> None:
        self.version += 1
        self._constraint_epoch += 1
        left = self._require(constraint.left_relation)
        right = self._require(constraint.right_relation)
        for ref in constraint.condition.attribute_refs():
            owner = ref.relation
            if owner == constraint.left_relation:
                left.attribute(ref.attribute)
            elif owner == constraint.right_relation:
                right.attribute(ref.attribute)
            elif owner is None:
                if ref.attribute not in left and ref.attribute not in right:
                    raise ConstraintError(
                        f"{constraint}: attribute {ref.attribute!r} not found "
                        "in either relation"
                    )
        self._join_constraints.append(constraint)

    def join_constraints(
        self, relation: str | None = None
    ) -> tuple[JoinConstraint, ...]:
        """All join constraints, or only those involving ``relation``."""
        if relation is None:
            return tuple(self._join_constraints)
        return tuple(
            jc for jc in self._join_constraints if jc.involves(relation)
        )

    def join_constraint_between(
        self, left: str, right: str
    ) -> JoinConstraint | None:
        """The constraint relating the two relations, in either order."""
        for jc in self._join_constraints:
            if jc.involves(left) and jc.involves(right):
                return jc
        return None

    def join_partners(self, relation: str) -> tuple[str, ...]:
        """Relations meaningfully joinable with ``relation``."""
        partners = []
        for jc in self._join_constraints:
            if jc.involves(relation):
                partners.append(jc.other(relation))
        return tuple(dict.fromkeys(partners))

    # ------------------------------------------------------------------
    # PC constraints
    # ------------------------------------------------------------------
    def add_pc_constraint(self, constraint: PCConstraint) -> None:
        self.version += 1
        self._constraint_epoch += 1
        left = self._require(constraint.left.relation)
        right = self._require(constraint.right.relation)
        constraint.check_against(left, right)
        self._pc_constraints.append(constraint)

    def pc_constraints(
        self, relation: str | None = None
    ) -> tuple[PCConstraint, ...]:
        """All PC constraints, or only those involving ``relation``."""
        if relation is None:
            return tuple(self._pc_constraints)
        return tuple(
            pc for pc in self._pc_constraints if pc.involves(relation)
        )

    def pc_constraints_from(self, relation: str) -> tuple[PCConstraint, ...]:
        """PC constraints re-oriented so ``relation`` is on the left."""
        return tuple(
            pc.oriented(relation) for pc in self.pc_constraints(relation)
        )

    def pc_constraint_between(
        self, from_relation: str, to_relation: str
    ) -> PCConstraint | None:
        """The constraint between the two, oriented from -> to, if any."""
        for pc in self._pc_constraints:
            if pc.involves(from_relation) and pc.involves(to_relation):
                return pc.oriented(from_relation)
        return None

    def substitute_candidates(
        self, relation: str, required_attributes: Iterable[str] = ()
    ) -> tuple[PCConstraint, ...]:
        """PC constraints offering a replacement for ``relation``.

        Returns constraints oriented ``relation REL candidate`` whose left
        projection covers all ``required_attributes`` — the raw material for
        CVS-style relation substitution.
        """
        required = set(required_attributes)
        candidates = []
        for pc in self.pc_constraints_from(relation):
            if required <= set(pc.left.attributes):
                candidates.append(pc)
        return tuple(candidates)

    # ------------------------------------------------------------------
    # Synchronization-time lookup (live + retired knowledge)
    # ------------------------------------------------------------------
    def historical_schema(self, relation: str) -> Schema:
        """The union of the live schema and its pre-change snapshot.

        The synchronizer resolves the *affected* view against this: the
        view may still reference an attribute a change just removed or
        renamed (snapshot-only names), while other parts of it already use
        current names (live names).  For deleted relations the snapshot is
        all that remains.
        """
        if relation not in self._schemas:
            if relation in self._dropped_schemas:
                return self._dropped_schemas[relation]
            raise UnknownRelationError(relation, "MKB (including history)")
        live = self._schemas[relation]
        snapshot = self._dropped_schemas.get(relation)
        if snapshot is None:
            return live
        merged = live
        for attribute in snapshot:
            if attribute.name not in merged:
                merged = merged.add_attribute(attribute)
        return merged

    def sync_pc_constraints(self, relation: str) -> tuple[PCConstraint, ...]:
        """Live + retired PC constraints involving ``relation``, oriented
        with ``relation`` on the left."""
        found = [
            pc.oriented(relation)
            for pc in (*self._pc_constraints, *self._historical_pc)
            if pc.involves(relation)
        ]
        return tuple(dict.fromkeys(found))

    def sync_join_constraints(self, relation: str) -> tuple[JoinConstraint, ...]:
        """Live + retired join constraints involving ``relation``."""
        found = [
            jc
            for jc in (*self._join_constraints, *self._historical_join)
            if jc.involves(relation)
        ]
        return tuple(dict.fromkeys(found))

    def replacement_candidates(
        self, relation: str, required_attributes: Iterable[str] = ()
    ) -> tuple[PCConstraint, ...]:
        """PC constraints (live or retired) offering a *currently available*
        replacement for ``relation`` whose left projection covers all
        ``required_attributes``."""
        required = set(required_attributes)
        candidates = []
        for pc in self.sync_pc_constraints(relation):
            if pc.right.relation not in self._schemas:
                continue  # the candidate itself is gone
            if required <= set(pc.left.attributes):
                candidates.append(pc)
        return tuple(candidates)

    # ------------------------------------------------------------------
    # Consistency checking (the MKB Consistency Checker of Fig. 1)
    # ------------------------------------------------------------------
    def check_consistency(self) -> list[str]:
        """Validate every constraint against current schemas.

        Returns a list of human-readable problems (empty = consistent);
        does not raise, so callers can report all issues at once.
        """
        problems: list[str] = []
        for jc in self._join_constraints:
            for name in (jc.left_relation, jc.right_relation):
                if name not in self._schemas:
                    problems.append(f"{jc}: relation {name!r} no longer exists")
                    break
            else:
                for ref in jc.condition.attribute_refs():
                    owner = ref.relation
                    schemas = (
                        [self._schemas[owner]]
                        if owner in self._schemas
                        else [
                            self._schemas[jc.left_relation],
                            self._schemas[jc.right_relation],
                        ]
                    )
                    if not any(ref.attribute in s for s in schemas):
                        problems.append(
                            f"{jc}: attribute {ref} no longer exists"
                        )
        for pc in self._pc_constraints:
            try:
                left = self._schemas[pc.left.relation]
                right = self._schemas[pc.right.relation]
            except KeyError as exc:
                problems.append(f"{pc}: relation {exc.args[0]!r} no longer exists")
                continue
            try:
                pc.check_against(left, right)
            except Exception as exc:  # noqa: BLE001 - collecting, not handling
                problems.append(str(exc))
        return problems

    # ------------------------------------------------------------------
    # MKB evolution under capability changes (the MKB Evolver of Fig. 1)
    # ------------------------------------------------------------------
    def on_relation_deleted(self, relation: str) -> None:
        """Drop the relation; retire (don't discard) constraints touching it."""
        self.version += 1
        if relation in self._schemas:
            self._snapshot_schema(relation, self._schemas[relation])
            self.deregister_relation(relation)
        self._historical_join.extend(
            jc for jc in self._join_constraints if jc.involves(relation)
        )
        self._join_constraints = [
            jc for jc in self._join_constraints if not jc.involves(relation)
        ]
        self._historical_pc.extend(
            pc for pc in self._pc_constraints if pc.involves(relation)
        )
        self._pc_constraints = [
            pc for pc in self._pc_constraints if not pc.involves(relation)
        ]

    def on_relation_renamed(self, old: str, new: str) -> None:
        """Re-point the schema entry and rewrite constraints in place."""
        self.version += 1
        schema = self._require(old)
        if new in self._schemas:
            raise ConstraintError(f"relation name {new!r} already registered")
        # Views still referencing the old name resolve via the snapshot.
        self._snapshot_schema(old, schema)
        owner = self._owners[old]
        del self._schemas[old]
        del self._owners[old]
        self._schemas[new] = schema.rename_relation(new)
        self._owners[new] = owner
        self.statistics.rename_relation(old, new)

        def rename_in_jc(jc: JoinConstraint) -> JoinConstraint:
            if not jc.involves(old):
                return jc
            return JoinConstraint(
                new if jc.left_relation == old else jc.left_relation,
                new if jc.right_relation == old else jc.right_relation,
                jc.condition.with_relation_replaced(old, new),
            )

        def rename_in_pc(pc: PCConstraint) -> PCConstraint:
            if not pc.involves(old):
                return pc
            left, right = pc.left, pc.right
            if left.relation == old:
                left = type(left)(
                    new, left.attributes,
                    left.condition.with_relation_replaced(old, new),
                )
            if right.relation == old:
                right = type(right)(
                    new, right.attributes,
                    right.condition.with_relation_replaced(old, new),
                )
            return PCConstraint(left, right, pc.relationship)

        self._join_constraints = [rename_in_jc(jc) for jc in self._join_constraints]
        self._pc_constraints = [rename_in_pc(pc) for pc in self._pc_constraints]
        # Retired constraints must follow the rename too: they still route
        # replacements from vanished relations to this (live) one, and a
        # stale name would silently disable those routes — visible when a
        # composed batch deletes a relation and then renames its donor.
        self._historical_join = [
            rename_in_jc(jc) for jc in self._historical_join
        ]
        self._historical_pc = [
            rename_in_pc(pc) for pc in self._historical_pc
        ]

    def on_attribute_deleted(self, relation: str, attribute: str) -> None:
        """Shrink the schema; retire constraints that referenced the attribute."""
        self.version += 1
        schema = self._require(relation)
        self._snapshot_schema(relation, schema)
        self._schemas[relation] = schema.drop_attribute(attribute)

        def jc_survives(jc: JoinConstraint) -> bool:
            return not (
                jc.involves(relation)
                and any(
                    ref.matches(attribute, relation)
                    or (ref.relation is None and ref.attribute == attribute)
                    for ref in jc.condition.attribute_refs()
                )
            )

        self._historical_join.extend(
            jc for jc in self._join_constraints if not jc_survives(jc)
        )
        self._join_constraints = [
            jc for jc in self._join_constraints if jc_survives(jc)
        ]

        def pc_survives(pc: PCConstraint) -> bool:
            for fragment in (pc.left, pc.right):
                if fragment.relation != relation:
                    continue
                if attribute in fragment.attributes:
                    return False
                if any(
                    ref.matches(attribute, relation)
                    for ref in fragment.condition.attribute_refs()
                ):
                    return False
            return True

        self._historical_pc.extend(
            pc for pc in self._pc_constraints if not pc_survives(pc)
        )
        self._pc_constraints = [
            pc for pc in self._pc_constraints if pc_survives(pc)
        ]

    def on_attribute_added(self, relation: str, schema: Schema) -> None:
        """Record the grown schema (constraints are unaffected)."""
        self.version += 1
        self._require(relation)
        self._schemas[relation] = schema

    def on_attribute_renamed(self, relation: str, old: str, new: str) -> None:
        """Rename inside the schema and rewrite constraints that use it."""
        self.version += 1
        schema = self._require(relation)
        self._snapshot_schema(relation, schema)  # pre-change snapshot
        self._schemas[relation] = schema.rename_attribute(old, new)
        attribute_map = {old: new}

        def rename_in_jc(jc: JoinConstraint) -> JoinConstraint:
            if not jc.involves(relation):
                return jc
            return JoinConstraint(
                jc.left_relation,
                jc.right_relation,
                jc.condition.with_relation_replaced(
                    relation, relation, attribute_map
                ),
            )

        def rename_fragment(fragment, owner_matches: bool):
            if not owner_matches:
                return fragment
            attributes = tuple(
                new if name == old else name for name in fragment.attributes
            )
            condition = fragment.condition.with_relation_replaced(
                relation, relation, attribute_map
            )
            return type(fragment)(fragment.relation, attributes, condition)

        def rename_in_pc(pc: PCConstraint) -> PCConstraint:
            if not pc.involves(relation):
                return pc
            return PCConstraint(
                rename_fragment(pc.left, pc.left.relation == relation),
                rename_fragment(pc.right, pc.right.relation == relation),
                pc.relationship,
            )

        self._join_constraints = [rename_in_jc(jc) for jc in self._join_constraints]
        self._pc_constraints = [rename_in_pc(pc) for pc in self._pc_constraints]
        # Keep retired routes pointing at the live column name (see
        # :meth:`on_relation_renamed`).
        self._historical_join = [
            rename_in_jc(jc) for jc in self._historical_join
        ]
        self._historical_pc = [
            rename_in_pc(pc) for pc in self._historical_pc
        ]

    # ------------------------------------------------------------------
    # Convenience constructors for common constraint shapes
    # ------------------------------------------------------------------
    def add_equivalence(
        self, left: str, right: str, attributes: Iterable[str] | None = None
    ) -> PCConstraint:
        """Register ``pi_A(left) ≡ pi_A(right)`` over shared attributes."""
        return self._add_simple_pc(left, right, attributes, PCRelationship.EQUIVALENT)

    def add_containment(
        self, inner: str, outer: str, attributes: Iterable[str] | None = None
    ) -> PCConstraint:
        """Register ``pi_A(inner) ⊆ pi_A(outer)`` over shared attributes."""
        return self._add_simple_pc(inner, outer, attributes, PCRelationship.SUBSET)

    def _add_simple_pc(
        self,
        left: str,
        right: str,
        attributes: Iterable[str] | None,
        relationship: PCRelationship,
    ) -> PCConstraint:
        from repro.misd.constraints import RelationFragment

        left_schema = self._require(left)
        right_schema = self._require(right)
        if attributes is None:
            names = tuple(left_schema.common_attributes(right_schema))
            if not names:
                raise ConstraintError(
                    f"relations {left!r} and {right!r} share no attributes"
                )
            left_names = right_names = names
        else:
            left_names = right_names = tuple(attributes)
        constraint = PCConstraint(
            RelationFragment(left, left_names),
            RelationFragment(right, right_names),
            relationship,
        )
        self.add_pc_constraint(constraint)
        return constraint

    def __repr__(self) -> str:
        return (
            f"<MKB {len(self._schemas)} relations, "
            f"{len(self._join_constraints)} JCs, "
            f"{len(self._pc_constraints)} PCs>"
        )

    def __iter__(self) -> Iterator[str]:
        return iter(self._schemas)
