"""Database statistics registered in the MKB (Sec. 6.1, assumptions 1-6).

The cost and quality estimators need, per relation:

* cardinality ``|R|``,
* tuple byte size ``s_R`` (derivable from the schema, overridable),
* local-condition selectivity ``sigma_R``,

plus space-wide parameters:

* join selectivity ``js`` (a constant across the space, assumption 3),
* blocking factor ``bfr`` (tuples per physical block, assumption 6 /
  Table 1),
* per-attribute byte sizes ``s_{R.A}`` (assumption 2).

Everything has explicit defaults matching Table 1 of the paper so that the
experiment harnesses can start from the paper's own configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import EvaluationError


#: Defaults from Table 1 (Experiment 2).
DEFAULT_CARDINALITY = 400
DEFAULT_TUPLE_SIZE = 100
DEFAULT_SELECTIVITY = 0.5
DEFAULT_JOIN_SELECTIVITY = 0.005
DEFAULT_BLOCKING_FACTOR = 10


@dataclass(frozen=True)
class RelationStatistics:
    """Per-relation statistics (``|R|``, ``s_R``, ``sigma_R``)."""

    cardinality: int = DEFAULT_CARDINALITY
    tuple_size: int = DEFAULT_TUPLE_SIZE
    selectivity: float = DEFAULT_SELECTIVITY
    attribute_sizes: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise EvaluationError("cardinality must be non-negative")
        if self.tuple_size <= 0:
            raise EvaluationError("tuple size must be positive")
        if not 0.0 <= self.selectivity <= 1.0:
            raise EvaluationError(
                f"selectivity must be in [0,1], got {self.selectivity}"
            )
        for attribute, size in self.attribute_sizes.items():
            if size <= 0:
                raise EvaluationError(
                    f"attribute size for {attribute!r} must be positive"
                )

    def attribute_size(self, attribute: str, default: int | None = None) -> int:
        """``s_{R.A}``; falls back to an even share of the tuple size."""
        if attribute in self.attribute_sizes:
            return self.attribute_sizes[attribute]
        if default is not None:
            return default
        divisor = max(len(self.attribute_sizes), 1)
        return max(self.tuple_size // max(divisor, 1), 1)

    def scaled_to(self, cardinality: int) -> "RelationStatistics":
        """Same shape statistics at a different cardinality."""
        return replace(self, cardinality=cardinality)


@dataclass
class SpaceStatistics:
    """Statistics for the whole information space.

    ``js`` and ``bfr`` are global constants per the paper's simplifying
    assumptions; per-relation entries live in ``relations``.  Lookup of an
    unregistered relation returns the Table 1 defaults rather than failing,
    because the paper's analytic experiments only pin down the parameters
    they vary.
    """

    join_selectivity: float = DEFAULT_JOIN_SELECTIVITY
    blocking_factor: int = DEFAULT_BLOCKING_FACTOR
    relations: dict[str, RelationStatistics] = field(default_factory=dict)
    #: Bumped on every registration change so memoized assessments keyed on
    #: it (see :mod:`repro.qc.assessment_cache`) never serve stale numbers.
    version: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.join_selectivity <= 1.0:
            raise EvaluationError(
                f"join selectivity must be in (0,1], got {self.join_selectivity}"
            )
        if self.blocking_factor <= 0:
            raise EvaluationError("blocking factor must be positive")

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def register(self, relation: str, stats: RelationStatistics) -> None:
        self.relations[relation] = stats
        self.version += 1

    def register_simple(
        self,
        relation: str,
        cardinality: int = DEFAULT_CARDINALITY,
        tuple_size: int = DEFAULT_TUPLE_SIZE,
        selectivity: float = DEFAULT_SELECTIVITY,
    ) -> None:
        """Shorthand registration with scalar parameters."""
        self.register(
            relation,
            RelationStatistics(cardinality, tuple_size, selectivity),
        )

    def for_relation(self, relation: str) -> RelationStatistics:
        """Statistics for ``relation``, defaulting to Table 1 values."""
        return self.relations.get(relation, RelationStatistics())

    def cardinality(self, relation: str) -> int:
        return self.for_relation(relation).cardinality

    def tuple_size(self, relation: str) -> int:
        return self.for_relation(relation).tuple_size

    def selectivity(self, relation: str) -> float:
        return self.for_relation(relation).selectivity

    def rename_relation(self, old: str, new: str) -> None:
        """Keep statistics attached across a change-relation-name."""
        if old in self.relations:
            self.relations[new] = self.relations.pop(old)
            self.version += 1

    def forget_relation(self, relation: str) -> None:
        if self.relations.pop(relation, None) is not None:
            self.version += 1

    def fingerprint(self) -> tuple[float, int, int]:
        """Cache token: any registration or global-parameter change moves it."""
        return (self.join_selectivity, self.blocking_factor, self.version)

    def copy(self) -> "SpaceStatistics":
        return SpaceStatistics(
            self.join_selectivity,
            self.blocking_factor,
            dict(self.relations),
        )
