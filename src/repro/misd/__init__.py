"""MISD — the Model for Information Source Description (Sec. 3.2).

Public surface:

* :class:`TypeIntegrityConstraint`, :class:`JoinConstraint`,
  :class:`PCConstraint`, :class:`RelationFragment`,
  :class:`PCRelationship` — the Fig. 4 constraint taxonomy
* :class:`MetaKnowledgeBase` — registration, lookup, consistency checking,
  and evolution under capability changes
* :class:`RelationStatistics`, :class:`SpaceStatistics` — the database
  statistics of Sec. 6.1
"""

from repro.misd.constraints import (
    JoinConstraint,
    PCConstraint,
    PCRelationship,
    RelationFragment,
    TypeIntegrityConstraint,
)
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import (
    DEFAULT_BLOCKING_FACTOR,
    DEFAULT_CARDINALITY,
    DEFAULT_JOIN_SELECTIVITY,
    DEFAULT_SELECTIVITY,
    DEFAULT_TUPLE_SIZE,
    RelationStatistics,
    SpaceStatistics,
)

__all__ = [
    "DEFAULT_BLOCKING_FACTOR",
    "DEFAULT_CARDINALITY",
    "DEFAULT_JOIN_SELECTIVITY",
    "DEFAULT_SELECTIVITY",
    "DEFAULT_TUPLE_SIZE",
    "JoinConstraint",
    "MetaKnowledgeBase",
    "PCConstraint",
    "PCRelationship",
    "RelationFragment",
    "RelationStatistics",
    "SpaceStatistics",
    "TypeIntegrityConstraint",
]
