"""MISD semantic constraints (Sec. 3.2, Fig. 4).

Three constraint kinds describe the information space:

* **Type integrity** ``TC(R.A) = (R(A) -> A(Type))`` — attribute domains.
  (These live inside :class:`~repro.relational.schema.Schema`; the explicit
  class here exists so the MKB can store and check them uniformly.)
* **Join constraints** ``JC(R1,R2) = C1 AND ... AND Cl`` — meaningful ways
  to join two relations.
* **Partial/complete (PC) constraints**
  ``pi_A1(sigma_C1(R1))  REL  pi_A2(sigma_C2(R2))`` with
  ``REL in {subset, equivalent, superset}`` — semantic containment between
  relation fragments, the key ingredient for finding replacements and for
  estimating extent overlaps (Sec. 5.4.3, Figs. 9/10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.errors import ConstraintError
from repro.relational.expressions import Condition
from repro.relational.schema import Schema
from repro.relational.types import AttributeType


@dataclass(frozen=True)
class TypeIntegrityConstraint:
    """``TC(R.A)``: attribute ``A`` of relation ``R`` has domain ``type``."""

    relation: str
    attribute: str
    type: AttributeType

    def __str__(self) -> str:
        return f"TC({self.relation}.{self.attribute}) = {self.type.label}"

    def check_against(self, schema: Schema) -> None:
        """Raise unless ``schema`` agrees with this constraint."""
        declared = schema.attribute(self.attribute).type
        if declared is not self.type:
            raise ConstraintError(
                f"{self}: schema declares {declared.label}"
            )


@dataclass(frozen=True)
class JoinConstraint:
    """``JC(R1,R2)``: the conjunction under which R1 x R2 is meaningful."""

    left_relation: str
    right_relation: str
    condition: Condition

    def __post_init__(self) -> None:
        if self.condition.is_true:
            raise ConstraintError(
                f"join constraint {self.left_relation}/{self.right_relation} "
                "needs at least one clause"
            )
        referenced = self.condition.relations()
        expected = {self.left_relation, self.right_relation}
        if referenced and not referenced <= expected:
            raise ConstraintError(
                f"join constraint {self.left_relation}/{self.right_relation} "
                f"references foreign relations {sorted(referenced - expected)}"
            )

    def __str__(self) -> str:
        return (
            f"JC({self.left_relation},{self.right_relation}) = {self.condition}"
        )

    def involves(self, relation: str) -> bool:
        return relation in (self.left_relation, self.right_relation)

    def other(self, relation: str) -> str:
        """The partner relation of ``relation`` in this constraint."""
        if relation == self.left_relation:
            return self.right_relation
        if relation == self.right_relation:
            return self.left_relation
        raise ConstraintError(f"{self} does not involve {relation!r}")


class PCRelationship(enum.Enum):
    """The set relation REL of a PC constraint (left REL right)."""

    SUBSET = "subset"        # left ⊆ right
    EQUIVALENT = "equal"     # left ≡ right
    SUPERSET = "superset"    # left ⊇ right

    def __str__(self) -> str:
        return {"subset": "⊆", "equal": "≡", "superset": "⊇"}[self.value]

    def flipped(self) -> "PCRelationship":
        if self is PCRelationship.SUBSET:
            return PCRelationship.SUPERSET
        if self is PCRelationship.SUPERSET:
            return PCRelationship.SUBSET
        return PCRelationship.EQUIVALENT


@dataclass(frozen=True)
class RelationFragment:
    """One side of a PC constraint: ``pi_attributes(sigma_condition(relation))``.

    ``condition`` may be the tautology (:meth:`Condition.true`) — the
    "no selection" case of Fig. 9's no/yes row labels.
    """

    relation: str
    attributes: tuple[str, ...]
    condition: Condition = field(default_factory=Condition.true)

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConstraintError(
                f"PC fragment over {self.relation!r} projects no attributes"
            )
        if len(set(self.attributes)) != len(self.attributes):
            raise ConstraintError(
                f"PC fragment over {self.relation!r} repeats attributes"
            )

    @property
    def has_selection(self) -> bool:
        return not self.condition.is_true

    def __str__(self) -> str:
        projection = ",".join(self.attributes)
        if self.has_selection:
            return f"pi_{projection}(sigma[{self.condition}]({self.relation}))"
        return f"pi_{projection}({self.relation})"

    def check_against(self, schema: Schema) -> None:
        for name in self.attributes:
            schema.attribute(name)  # raises UnknownAttributeError
        for ref in self.condition.attribute_refs():
            if ref.relation not in (None, self.relation):
                raise ConstraintError(
                    f"PC fragment over {self.relation!r} selects on foreign "
                    f"relation {ref.relation!r}"
                )
            schema.attribute(ref.attribute)


@dataclass(frozen=True)
class PCConstraint:
    """``PC(R1,R2)``: left fragment REL right fragment (Eq. 5).

    The two projection lists correspond positionally: ``left.attributes[i]``
    is the same piece of information as ``right.attributes[i]`` (and must
    have equal domain types, Sec. 3.2).
    """

    left: RelationFragment
    right: RelationFragment
    relationship: PCRelationship

    def __post_init__(self) -> None:
        if len(self.left.attributes) != len(self.right.attributes):
            raise ConstraintError(
                f"PC constraint {self.left.relation}/{self.right.relation}: "
                "projection lists differ in length"
            )
        if self.left.relation == self.right.relation:
            raise ConstraintError(
                f"PC constraint relates {self.left.relation!r} to itself"
            )

    def __str__(self) -> str:
        return f"{self.left} {self.relationship} {self.right}"

    # ------------------------------------------------------------------
    # Orientation helpers
    # ------------------------------------------------------------------
    def involves(self, relation: str) -> bool:
        return relation in (self.left.relation, self.right.relation)

    def oriented(self, from_relation: str) -> "PCConstraint":
        """This constraint with ``from_relation`` on the left.

        Flipping swaps the fragments and inverts the relationship, so
        ``pc.oriented(R).relationship`` always reads "R REL other".
        """
        if from_relation == self.left.relation:
            return self
        if from_relation == self.right.relation:
            return PCConstraint(
                self.right, self.left, self.relationship.flipped()
            )
        raise ConstraintError(f"{self} does not involve {from_relation!r}")

    def attribute_map(self) -> dict[str, str]:
        """Positional correspondence left attribute -> right attribute."""
        return dict(zip(self.left.attributes, self.right.attributes))

    def reverse_attribute_map(self) -> dict[str, str]:
        return dict(zip(self.right.attributes, self.left.attributes))

    def maps_attributes(self, attributes: Mapping[str, None] | set[str]) -> bool:
        """Whether every attribute in ``attributes`` is covered on the left."""
        return set(attributes) <= set(self.left.attributes)

    def check_against(
        self, left_schema: Schema, right_schema: Schema
    ) -> None:
        """Structural + type compatibility check (Sec. 3.2's TC equality)."""
        self.left.check_against(left_schema)
        self.right.check_against(right_schema)
        for l_name, r_name in self.attribute_map().items():
            l_type = left_schema.attribute(l_name).type
            r_type = right_schema.attribute(r_name).type
            if l_type is not r_type:
                raise ConstraintError(
                    f"{self}: corresponding attributes {l_name!r}/{r_name!r} "
                    f"have different types ({l_type.label} vs {r_type.label})"
                )
