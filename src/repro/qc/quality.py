"""The quality half of the QC-Model: degrees of divergence (Sec. 5).

Three layers:

* **Interface divergence** ``DD_attr`` (Sec. 5.4.1): how much weighted
  dispensable-attribute mass the rewriting lost, normalized by the
  original's mass ``Q_V`` (Eq. 12).
* **Extent divergence** ``DD_ext`` (Sec. 5.4.2): the rho-weighted blend of
  D1 (fraction of original tuples lost, Eq. 13) and D2 (fraction of the new
  extent that is surplus, Eq. 14), per Eq. 15 — with the VE special cases
  of Eqs. 16/17.
* **Total divergence** ``DD`` (Sec. 5.4.4, Eq. 20).

Two computation paths feed the extent numbers:

* the *estimation* path (what the paper uses): statistics + PC-constraint
  overlap estimation, via :func:`repro.qc.view_size.estimate_extent_numbers`;
* the *exact* path: materialize both extents with the evaluator and count
  (:func:`exact_extent_numbers`) — available for validation because our
  substrate is executable, which the authors' was not at the time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.esql.ast import ViewDefinition
from repro.esql.evaluator import evaluate_view
from repro.esql.params import AttributeCategory
from repro.qc.params import TradeoffParameters
from repro.qc.view_size import ExtentNumbers, estimate_extent_numbers
from repro.relational.algebra import common_projection, cs_intersection
from repro.relational.relation import Relation
from repro.sync.rewriting import Rewriting


# ----------------------------------------------------------------------
# Interface divergence (Sec. 5.4.1)
# ----------------------------------------------------------------------
def interface_quality(view: ViewDefinition, params: TradeoffParameters) -> float:
    """``Q_V`` (Eq. 12): weighted count of category-1/2 attributes.

    Indispensable attributes (categories 3/4) must survive in any legal
    rewriting and carry no weight.
    """
    buckets = view.categories()
    return (
        len(buckets[AttributeCategory.C1]) * params.w1
        + len(buckets[AttributeCategory.C2]) * params.w2
    )


def dd_attr(
    original: ViewDefinition,
    rewriting_view: ViewDefinition,
    params: TradeoffParameters,
) -> float:
    """``DD_attr(Vi)``: normalized interface-quality loss.

    The rewriting's attributes are weighted by the *original* item's
    category — a replaced attribute keeps its output name, so categories
    are matched by output name.  ``Q_V = 0`` (all indispensable) yields 0.
    """
    q_original = interface_quality(original, params)
    if q_original == 0:
        return 0.0
    surviving = set(rewriting_view.interface)
    q_rewriting = 0.0
    for item in original.select:
        if item.output_name not in surviving:
            continue
        category = item.category
        if category is AttributeCategory.C1:
            q_rewriting += params.w1
        elif category is AttributeCategory.C2:
            q_rewriting += params.w2
    return (q_original - q_rewriting) / q_original


# ----------------------------------------------------------------------
# Extent divergence (Sec. 5.4.2)
# ----------------------------------------------------------------------
def dd_ext_d1(numbers: ExtentNumbers) -> float:
    """D1 (Eq. 13): fraction of the original extent not preserved."""
    if numbers.original <= 0:
        return 0.0
    return max(0.0, 1.0 - numbers.overlap / numbers.original)


def dd_ext_d2(numbers: ExtentNumbers) -> float:
    """D2 (Eq. 14): fraction of the new extent that is surplus."""
    if numbers.rewriting <= 0:
        return 0.0
    return max(0.0, 1.0 - numbers.overlap / numbers.rewriting)


def dd_ext(numbers: ExtentNumbers, params: TradeoffParameters) -> float:
    """``DD_ext(Vi)`` (Eq. 15): the rho-weighted D1/D2 blend."""
    return params.rho_d1 * dd_ext_d1(numbers) + params.rho_d2 * dd_ext_d2(
        numbers
    )


def dd_ext_superset(
    original_size: float, rewriting_size: float, params: TradeoffParameters
) -> float:
    """Eq. 16 — the VE = '⊇' shortcut.

    When every rewriting is a superset of the original, D2 is the only
    live term and the overlap equals the original extent, so no
    intersection estimation is needed: only the two sizes enter.
    (The paper phrases Eq. 16 with the D1 weight; footnotes 5/6 note the
    irrelevant weight can be folded — we keep Eq. 15's rho_d2 so the
    shortcut is *equal* to the general formula, which the tests enforce.)
    """
    return dd_ext(
        ExtentNumbers(original_size, rewriting_size, original_size), params
    )


def dd_ext_subset(
    original_size: float, rewriting_size: float, params: TradeoffParameters
) -> float:
    """Eq. 17 — the VE = '⊆' shortcut: only D1 is live, overlap = |Vi|."""
    return dd_ext(
        ExtentNumbers(original_size, rewriting_size, rewriting_size), params
    )


# ----------------------------------------------------------------------
# Exact extent numbers (materialized comparison)
# ----------------------------------------------------------------------
def exact_extent_numbers(
    rewriting: Rewriting,
    original_relations: Mapping[str, Relation],
    current_relations: Mapping[str, Relation],
) -> ExtentNumbers:
    """Count the Eq. 15 inputs from materialized extents.

    ``original_relations`` must contain the pre-change instances the
    original view ran over; ``current_relations`` the post-change ones the
    rewriting runs over.  All counts are on the common subset of attributes
    with duplicates removed (Definition 1).
    """
    old_extent = evaluate_view(rewriting.original, original_relations)
    new_extent = evaluate_view(rewriting.view, current_relations)
    if not set(old_extent.schema.attribute_names) & set(
        new_extent.schema.attribute_names
    ):
        # No shared interface at all: complete divergence.
        return ExtentNumbers(
            float(old_extent.distinct().cardinality),
            float(new_extent.distinct().cardinality),
            0.0,
        )
    original_common = common_projection(old_extent, new_extent)
    rewriting_common = common_projection(new_extent, old_extent)
    overlap = cs_intersection(old_extent, new_extent)
    return ExtentNumbers(
        float(original_common.cardinality),
        float(rewriting_common.cardinality),
        float(overlap.cardinality),
    )


# ----------------------------------------------------------------------
# Total divergence (Sec. 5.4.4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualityAssessment:
    """Full quality breakdown for one rewriting."""

    dd_attr: float
    dd_ext_d1: float
    dd_ext_d2: float
    dd_ext: float
    dd: float
    extent_numbers: ExtentNumbers

    def __str__(self) -> str:
        return (
            f"DD_attr={self.dd_attr:.4f} D1={self.dd_ext_d1:.4f} "
            f"D2={self.dd_ext_d2:.4f} DD_ext={self.dd_ext:.4f} "
            f"DD={self.dd:.4f}"
        )


def assess_quality(
    rewriting: Rewriting,
    params: TradeoffParameters,
    numbers: ExtentNumbers,
) -> QualityAssessment:
    """``DD(Vi)`` (Eq. 20) with its full breakdown."""
    attr = dd_attr(rewriting.original, rewriting.view, params)
    d1 = dd_ext_d1(numbers)
    d2 = dd_ext_d2(numbers)
    ext = params.rho_d1 * d1 + params.rho_d2 * d2
    total = params.rho_attr * attr + params.rho_ext * ext
    return QualityAssessment(attr, d1, d2, ext, total, numbers)


def assess_quality_estimated(
    rewriting: Rewriting,
    params: TradeoffParameters,
    mkb,
    statistics=None,
) -> QualityAssessment:
    """Quality via the paper's estimation path (statistics + PCs)."""
    numbers = estimate_extent_numbers(rewriting, mkb, statistics)
    return assess_quality(rewriting, params, numbers)


def assess_quality_exact(
    rewriting: Rewriting,
    params: TradeoffParameters,
    original_relations: Mapping[str, Relation],
    current_relations: Mapping[str, Relation],
) -> QualityAssessment:
    """Quality via materialized extents (the validation path)."""
    numbers = exact_extent_numbers(
        rewriting, original_relations, current_relations
    )
    return assess_quality(rewriting, params, numbers)
