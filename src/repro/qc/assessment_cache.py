"""Memoized rewriting assessments keyed by canonical fingerprints.

The synchronizer's candidate space is combinatorial, and the same
sub-rewriting keeps resurfacing: dominated variants share their base, the
heuristic sweeps re-rank the same candidate set under many workloads, and
every capability change re-evaluates views that earlier changes already
scored.  Quality estimation and cost pricing are pure functions of

* the rewriting's *canonical form* — the printer-normalized original and
  rewritten definitions (flags included, WHERE conjuncts sorted under
  :meth:`PrimitiveClause.normalized`), the extent relationship, and the
  relation replacements the moves record, plus
* the knowledge they are priced against — MKB constraints/owners and
  space statistics.

So an :class:`AssessmentCache` memoizes both halves under a compound key:
the canonical fingerprint, the statistics fingerprint (which moves on any
registration or global-parameter change), and the cache's own ``version``,
which the owner bumps on schema change (:meth:`invalidate`).  Two
syntactically different but canonically identical rewritings share one
entry; any schema or statistics movement makes every old key unreachable.

Wired through :class:`repro.qc.model.QCModel` (quality + cost memo),
:class:`repro.sync.synchronizer.ViewSynchronizer` (resolved-view memo) and
:class:`repro.core.eve.EVESystem` (ownership + invalidation on capability
changes and relation registration).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import Any, TypeVar

from repro.esql.ast import ViewDefinition
from repro.sync.rewriting import ReplaceRelationMove, Rewriting

T = TypeVar("T")


def fingerprint_view(view: ViewDefinition) -> str:
    """Canonical one-line form of a view definition.

    SELECT and FROM keep their order (both are semantically ordered: the
    interface is positional, the FROM order feeds maintenance plans); the
    WHERE conjunction is a set, so its conjuncts are normalized and sorted
    — clause-order variants produced by different move sequences collapse
    onto one fingerprint.
    """
    select = ",".join(str(item) for item in view.select)
    from_ = ",".join(str(item) for item in view.from_)
    where = ",".join(
        sorted(
            str(item.clause.normalized()) + item.flags.format("CD", "CR")
            for item in view.where
        )
    )
    return (
        f"{view.name}|{view.extent_parameter}|{select}|{from_}|{where}"
    )


def fingerprint_rewriting(rewriting: Rewriting) -> tuple[str, str, str, str]:
    """Canonical identity of a rewriting for assessment purposes.

    Covers everything the quality estimator reads: the original (its
    flags drive ``DD_attr``), the rewritten definition, the extent
    relationship, and which relations were substituted for which (the
    Fig. 9 overlap cases).  Move *order* is irrelevant to the estimate, so
    replacements are sorted.
    """
    replacements = ",".join(
        sorted(
            f"{move.old_relation}>{move.new_relation}"
            for move in rewriting.moves
            if isinstance(move, ReplaceRelationMove)
        )
    )
    return (
        fingerprint_view(rewriting.original),
        fingerprint_view(rewriting.view),
        rewriting.extent_relationship.value,
        replacements,
    )


class AssessmentCache:
    """Bounded memo for quality/cost assessments and resolved views."""

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        #: Bumped by :meth:`invalidate`; part of every key, so stale
        #: entries become unreachable even mid-eviction.
        self.version = 0
        self.hits = 0
        self.misses = 0
        self._entries: dict[Hashable, Any] = {}
        # Fingerprinting renders printer forms, which costs more than the
        # memo lookup it feeds; rewritings are immutable, so remember the
        # fingerprint per object (strong refs keep the ids valid).
        self._fingerprints: dict[int, tuple[Rewriting, tuple]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Forget everything; called on any schema/knowledge change."""
        self.version += 1
        self._entries.clear()
        self._fingerprints.clear()

    def clear_statistics(self) -> None:
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Generic memoization
    # ------------------------------------------------------------------
    def memo(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Return the cached value under ``key`` or compute-and-store it."""
        full_key = (self.version, key)
        try:
            value = self._entries[full_key]
        except KeyError:
            self.misses += 1
            value = compute()
            if len(self._entries) >= self.max_entries:
                # FIFO eviction: drop the oldest insertions (dicts keep
                # insertion order); crude but O(1) amortized and safe.
                # pop() tolerates a concurrent evictor under the GIL
                # (the scheduler's thread executor shares this cache);
                # worst case both threads over-evict, never KeyError.
                for stale in list(self._entries)[: self.max_entries // 8 or 1]:
                    self._entries.pop(stale, None)
            self._entries[full_key] = value
            return value
        self.hits += 1
        return value

    def _fingerprint(self, rewriting: Rewriting) -> tuple:
        cached = self._fingerprints.get(id(rewriting))
        if cached is not None and cached[0] is rewriting:
            return cached[1]
        fingerprint = fingerprint_rewriting(rewriting)
        if len(self._fingerprints) >= self.max_entries:
            self._fingerprints.clear()
        self._fingerprints[id(rewriting)] = (rewriting, fingerprint)
        return fingerprint

    # ------------------------------------------------------------------
    # Typed entry points
    # ------------------------------------------------------------------
    def quality(
        self,
        rewriting: Rewriting,
        statistics_fingerprint: Hashable,
        compute: Callable[[], T],
    ) -> T:
        key = (
            "quality",
            self._fingerprint(rewriting),
            statistics_fingerprint,
        )
        return self.memo(key, compute)

    def cost(
        self,
        rewriting: Rewriting,
        workload: Hashable,
        updated_relation: str | None,
        statistics_fingerprint: Hashable,
        compute: Callable[[], T],
    ) -> T:
        key = (
            "cost",
            self._fingerprint(rewriting),
            workload,
            updated_relation,
            statistics_fingerprint,
        )
        return self.memo(key, compute)

    def resolved_view(
        self,
        view: ViewDefinition,
        compute: Callable[[], T],
        token: Hashable = None,
    ) -> T:
        # ViewDefinition is hashable and equality is structural, so the
        # object itself is an exact key; ``token`` carries the version of
        # whatever knowledge resolution reads (the MKB).
        return self.memo(("resolve", token, view), compute)

    def __repr__(self) -> str:
        return (
            f"<AssessmentCache v{self.version} {len(self._entries)} entries "
            f"hits={self.hits} misses={self.misses}>"
        )
