"""The QC-Model: ranking legal rewritings by efficiency (Secs. 4, 6.7).

Ties the quality side (Sec. 5) and the cost side (Sec. 6) together:

    QC(Vi) = 1 - (rho_quality * DD(Vi) + rho_cost * COST*(Vi))     (Eq. 26)

where ``DD`` is the total degree of divergence (Eq. 20) and ``COST*`` the
min-max-normalized workload cost (Eq. 25).  The model evaluates a whole
candidate set at once — normalization is relative to the set — and returns
evaluations sorted best-first, establishing the linear ranking the paper
proposes for otherwise incomparable rewritings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.errors import EvaluationError, UnknownRelationError
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import SpaceStatistics
from repro.qc.assessment_cache import AssessmentCache
from repro.qc.cost import (
    CostAssessment,
    MaintenancePlan,
    assess_cost,
    full_scan_ios,
    normalize_costs,
    plan_for_view,
)
from repro.qc.params import TradeoffParameters
from repro.qc.quality import (
    QualityAssessment,
    assess_quality,
    assess_quality_estimated,
    dd_attr,
    exact_extent_numbers,
)
from repro.qc.workload import WorkloadSpec, aggregate_cost
from repro.relational.relation import Relation
from repro.sync.rewriting import ExtentRelationship, Rewriting


@dataclass(frozen=True)
class Evaluation:
    """One rewriting's complete QC-Model assessment."""

    rewriting: Rewriting
    quality: QualityAssessment
    cost: CostAssessment
    normalized_cost: float
    qc: float
    rank: int = 0

    @property
    def name(self) -> str:
        return self.rewriting.view.name

    def __str__(self) -> str:
        return (
            f"#{self.rank} {self.name}: QC={self.qc:.4f} "
            f"(DD={self.quality.dd:.4f}, COST*={self.normalized_cost:.4f}, "
            f"cost={self.cost.total:.1f})"
        )


def qc_score(
    dd: float, normalized_cost: float, params: TradeoffParameters
) -> float:
    """Eq. 26."""
    return 1.0 - (params.rho_quality * dd + params.rho_cost * normalized_cost)


class QCModel:
    """Evaluator/ranker for candidate rewriting sets.

    Quality uses the estimation path by default (statistics + PC-constraint
    overlaps, as in the paper); pass materialized extents to
    :meth:`evaluate_exact` for the validation path.  Costs are priced per
    update and aggregated by the given workload (a single update when no
    workload is supplied, as in Experiment 4).
    """

    def __init__(
        self,
        mkb: MetaKnowledgeBase,
        params: TradeoffParameters | None = None,
        statistics: SpaceStatistics | None = None,
        cache: AssessmentCache | None = None,
    ) -> None:
        self._mkb = mkb
        self.params = params if params is not None else TradeoffParameters()
        self._statistics = (
            statistics if statistics is not None else mkb.statistics
        )
        # Optional memo for quality/cost assessments.  The owner (usually
        # EVESystem) must invalidate it on schema/constraint changes;
        # statistics changes are covered by the statistics fingerprint.
        self.cache = cache

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _plan(
        self,
        rewriting: Rewriting,
        updated_relation: str | None,
    ) -> MaintenancePlan:
        owners = {}
        for name in rewriting.view.relation_names:
            try:
                owners[name] = self._mkb.owner(name)
            except UnknownRelationError:
                raise EvaluationError(
                    f"cannot price rewriting {rewriting.view.name!r}: "
                    f"no owner known for relation {name!r}"
                ) from None
        return plan_for_view(rewriting.view, owners, updated_relation)

    def cost_of(
        self,
        rewriting: Rewriting,
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> CostAssessment:
        """Workload-aggregated (or single-update) cost of one rewriting."""
        if self.cache is not None:
            return self.cache.cost(
                rewriting,
                workload,
                updated_relation,
                self._knowledge_fingerprint(),
                lambda: self._cost_of(rewriting, workload, updated_relation),
            )
        return self._cost_of(rewriting, workload, updated_relation)

    def _knowledge_fingerprint(self):
        """Everything an assessment reads besides the rewriting itself:
        statistics, MKB constraints/owners, and the tradeoff weights."""
        return (
            self._statistics.fingerprint(),
            getattr(self._mkb, "version", 0),
            self.params,
        )

    def _cost_of(
        self,
        rewriting: Rewriting,
        workload: WorkloadSpec | None,
        updated_relation: str | None,
    ) -> CostAssessment:
        plan = self._plan(rewriting, updated_relation)
        single = lambda p: assess_cost(  # noqa: E731 - tiny local closure
            p, self._statistics, self.params
        )
        if workload is None:
            return single(plan)
        return aggregate_cost(
            workload, plan, self._statistics, single
        )

    def quality_of(self, rewriting: Rewriting) -> QualityAssessment:
        """Full (memoized) quality assessment of one rewriting.

        The public entry point the streaming pipeline uses to assess a
        single candidate: identical floats to what :meth:`evaluate`
        computes for the same rewriting, through the same cache.
        """
        return self._quality_of(rewriting)

    def _quality_of(self, rewriting: Rewriting) -> QualityAssessment:
        if self.cache is not None:
            return self.cache.quality(
                rewriting,
                self._knowledge_fingerprint(),
                lambda: assess_quality_estimated(
                    rewriting, self.params, self._mkb, self._statistics
                ),
            )
        return assess_quality_estimated(
            rewriting, self.params, self._mkb, self._statistics
        )

    # ------------------------------------------------------------------
    # Incremental ranking: cheap bounds for stop-early search
    # ------------------------------------------------------------------
    def quality_floor(self, rewriting: Rewriting) -> float:
        """A cheap lower bound on ``DD(Vi)`` (Eq. 20).

        Only the interface term is computed: ``DD >= rho_attr * DD_attr``
        because the extent divergence is non-negative.  ``DD_attr`` needs
        nothing but the two interfaces and the original's flags — no
        extent estimation, no constraint overlap — so a search can bound
        a candidate's best-case quality before paying for the full
        assessment.  The inequality holds under IEEE-754 rounding: the
        floor is the exact first summand of the value
        :func:`~repro.qc.quality.assess_quality` computes, and adding
        the non-negative extent term can only round to something >= it.
        """
        return self.params.rho_attr * dd_attr(
            rewriting.original, rewriting.view, self.params
        )

    def qc_upper_bound(
        self, rewriting: Rewriting, normalized_cost: float = 0.0
    ) -> float:
        """An upper bound on the QC-Value (Eq. 26) of ``rewriting``.

        Quality is bounded by attribute preservation
        (:meth:`quality_floor`); the cost term takes whatever lower
        bound on the *normalized* (Eq. 25, in ``[0, 1]``) cost the
        caller has — ``0.0`` (the min-cost candidate's score) when
        nothing is known yet, the exact normalized cost once the
        candidate set's totals are in.  Do **not** pass a raw Eq. 24
        total (e.g. :meth:`cost_lower_bound`) here; normalize it
        against the candidate set's min/max first.  With the exact
        normalized cost the bound is monotone under IEEE-754, so
        ``qc_upper_bound(r, norm) >= qc`` holds float-for-float — the
        guarantee the pruned search policy relies on to pick the
        identical winner as the exhaustive one.
        """
        return qc_score(self.quality_floor(rewriting), normalized_cost, self.params)

    def cost_lower_bound(
        self,
        rewriting: Rewriting,
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> float:
        """A lower bound on the Eq. 24 total under the best-case plan.

        The bound prices the maintenance itinerary as if every relation
        of the rewriting were co-hosted with the updated one (one
        notification plus at most one query round trip — the fewest
        messages and transfers any ownership layout allows) and charges
        each joined relation the cheaper of a full scan and an index
        probe fed by the smallest delta any visiting order could
        produce.  It needs no ownership lookup, so it is priceable even
        before :func:`~repro.qc.cost.plan_for_view` could be built.

        It returns a raw Eq. 24 total, **not** the Eq. 25 normalized
        score :meth:`qc_upper_bound` consumes — the streaming pipeline
        prices every legal candidate exactly (normalization needs the
        set's totals anyway) and does not call this.  It is the standing
        bound for callers that must rank *before* a candidate set
        exists: the cross-view batch scheduler
        (:class:`~repro.sync.scheduler.SynchronizationScheduler`)
        consumes it through :meth:`salvage_lower_bound` to synchronize
        the cheapest-to-salvage views first when a deadline looms.
        """
        names = rewriting.view.relation_names
        if workload is None:
            updated = (
                updated_relation if updated_relation is not None else names[0]
            )
            if updated not in names:
                raise EvaluationError(
                    f"updated relation {updated!r} is not referenced by "
                    f"view {rewriting.view.name!r}"
                )
            return self._single_update_lower_bound(names, updated)
        plan = self._plan(rewriting, updated_relation)
        total = 0.0
        for relation, count in workload.update_counts(
            plan, self._statistics
        ).items():
            if count > 0:
                total += count * self._single_update_lower_bound(
                    names, relation
                )
        return total

    def salvage_lower_bound(
        self,
        view,
        updated_relation: str | None = None,
        workload: WorkloadSpec | None = None,
    ) -> float:
        """:meth:`cost_lower_bound` of keeping ``view`` as it stands.

        Wraps the view in its identity rewriting, so the value bounds
        the cost of every rewriting that preserves (or extends) the
        current relation set — rename and replacement moves.  It is
        *not* a bound over drop rewritings, which shrink the relation
        set and can maintain for less; as the batch scheduler's
        cheapest-to-salvage-first priority that asymmetry is
        intentional — the priority prices salvaging the view's current
        information content, not discarding it — and scheduling order
        never changes committed outcomes anyway (only which views make
        a deadline).
        """
        identity = Rewriting(view, view, (), ExtentRelationship.EQUAL)
        return self.cost_lower_bound(identity, workload, updated_relation)

    def _single_update_lower_bound(
        self, names: Sequence[str], updated: str
    ) -> float:
        stats = self._statistics
        params = self.params
        others = [name for name in names if name != updated]
        # CF_M: a single-relation view sends only the update notification;
        # anything else needs at least one query/response round trip.
        messages = 1.0 if not others else 3.0
        # CF_T: the single-site itinerary — notification, delta out, final
        # result back — is what every multi-site layout decomposes into
        # plus extra intermediate shipments.
        width = float(stats.tuple_size(updated))
        transferred = width
        if others:
            cardinality = 1.0
            for name in others:
                cardinality *= (
                    stats.join_selectivity
                    * stats.cardinality(name)
                    * stats.selectivity(name)
                )
                width += stats.tuple_size(name)
            transferred += float(stats.tuple_size(updated)) + cardinality * width
        # CF_IO: per joined relation, min(scan, probe) with the probe fed
        # by the smallest delta any visiting order could produce (every
        # shrinking join applied first, no growing join applied at all).
        js = stats.join_selectivity
        growth = {name: js * stats.cardinality(name) for name in others}
        ios = 0.0
        for name in others:
            delta = 1.0
            for other in others:
                if other != name:
                    delta *= min(1.0, growth[other])
            probe = delta * math.ceil(
                js * stats.cardinality(name) / stats.blocking_factor
            )
            ios += min(float(full_scan_ios(name, stats)), probe)
        return (
            messages * params.cost_m
            + transferred * params.cost_t
            + ios * params.cost_io
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        rewritings: Sequence[Rewriting],
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> list[Evaluation]:
        """Rank a candidate set, estimation path (the paper's setting)."""
        qualities = [self._quality_of(rewriting) for rewriting in rewritings]
        return self._finish(rewritings, qualities, workload, updated_relation)

    def evaluate_exact(
        self,
        rewritings: Sequence[Rewriting],
        original_relations: Mapping[str, Relation],
        current_relations: Mapping[str, Relation],
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> list[Evaluation]:
        """Rank with extents materialized and counted (validation path)."""
        qualities = []
        for rewriting in rewritings:
            numbers = exact_extent_numbers(
                rewriting, original_relations, current_relations
            )
            qualities.append(
                assess_quality(rewriting, self.params, numbers)
            )
        return self._finish(rewritings, qualities, workload, updated_relation)

    def _finish(
        self,
        rewritings: Sequence[Rewriting],
        qualities: list[QualityAssessment],
        workload: WorkloadSpec | None,
        updated_relation: str | None,
    ) -> list[Evaluation]:
        costs = [
            self.cost_of(rewriting, workload, updated_relation)
            for rewriting in rewritings
        ]
        normalized = normalize_costs(cost.total for cost in costs)
        evaluations = [
            Evaluation(
                rewriting,
                quality,
                cost,
                norm,
                qc_score(quality.dd, norm, self.params),
            )
            for rewriting, quality, cost, norm in zip(
                rewritings, qualities, costs, normalized
            )
        ]
        evaluations.sort(key=lambda e: e.qc, reverse=True)
        return [
            Evaluation(
                e.rewriting, e.quality, e.cost, e.normalized_cost, e.qc, rank
            )
            for rank, e in enumerate(evaluations, start=1)
        ]

    def best(
        self,
        rewritings: Sequence[Rewriting],
        workload: WorkloadSpec | None = None,
        updated_relation: str | None = None,
    ) -> Evaluation:
        """The top-ranked rewriting (what EVE would recommend)."""
        evaluations = self.evaluate(rewritings, workload, updated_relation)
        if not evaluations:
            raise EvaluationError("no rewritings to evaluate")
        return evaluations[0]
