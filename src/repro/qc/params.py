"""Trade-off parameters of the QC-Model.

The model exposes every knob the paper defines, with the paper's default
values:

* ``w1``, ``w2`` — interface weights for attribute categories C1/C2
  (Sec. 5.2; defaults (0.7, 0.3), with the ``w1 > w2`` property EVE favours).
* ``rho_d1``, ``rho_d2`` — extent trade-off between lost tuples (D1) and
  surplus tuples (D2) (Eq. 15; defaults (0.5, 0.5), must sum to 1).
* ``rho_attr``, ``rho_ext`` — interface vs extent divergence (Eq. 20;
  Experiment 4 uses (0.7, 0.3), must sum to 1).
* ``cost_m``, ``cost_t``, ``cost_io`` — unit prices of a message, a
  transferred byte, and a disk I/O (Eq. 24; Experiment 4 uses
  (0.1, 0.7, 0.2)).
* ``rho_quality``, ``rho_cost`` — the final quality/cost trade-off
  (Eq. 26; Experiment 4 Case 1 uses (0.9, 0.1), must sum to 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import EvaluationError

_SUM_TOLERANCE = 1e-9


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise EvaluationError(f"{name} must be in [0,1], got {value}")


def _check_pair(name_a: str, a: float, name_b: str, b: float) -> None:
    _check_unit(name_a, a)
    _check_unit(name_b, b)
    if abs((a + b) - 1.0) > _SUM_TOLERANCE:
        raise EvaluationError(
            f"{name_a} + {name_b} must equal 1, got {a} + {b} = {a + b}"
        )


@dataclass(frozen=True)
class TradeoffParameters:
    """All QC-Model weights, with the paper's defaults."""

    w1: float = 0.7
    w2: float = 0.3
    rho_d1: float = 0.5
    rho_d2: float = 0.5
    rho_attr: float = 0.7
    rho_ext: float = 0.3
    cost_m: float = 0.1
    cost_t: float = 0.7
    cost_io: float = 0.2
    rho_quality: float = 0.9
    rho_cost: float = 0.1

    def __post_init__(self) -> None:
        _check_unit("w1", self.w1)
        _check_unit("w2", self.w2)
        _check_pair("rho_d1", self.rho_d1, "rho_d2", self.rho_d2)
        _check_pair("rho_attr", self.rho_attr, "rho_ext", self.rho_ext)
        _check_pair("rho_quality", self.rho_quality, "rho_cost", self.rho_cost)
        for name in ("cost_m", "cost_t", "cost_io"):
            if getattr(self, name) < 0:
                raise EvaluationError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    # Convenient variants
    # ------------------------------------------------------------------
    def with_quality_weight(self, rho_quality: float) -> "TradeoffParameters":
        """Copy with the quality/cost balance changed (Experiment 4 cases)."""
        return replace(
            self, rho_quality=rho_quality, rho_cost=1.0 - rho_quality
        )

    def with_interface_weights(self, w1: float, w2: float) -> "TradeoffParameters":
        return replace(self, w1=w1, w2=w2)

    def with_extent_weights(self, rho_d1: float, rho_d2: float) -> "TradeoffParameters":
        return replace(self, rho_d1=rho_d1, rho_d2=rho_d2)

    def with_divergence_weights(
        self, rho_attr: float, rho_ext: float
    ) -> "TradeoffParameters":
        return replace(self, rho_attr=rho_attr, rho_ext=rho_ext)

    def with_unit_prices(
        self, cost_m: float, cost_t: float, cost_io: float
    ) -> "TradeoffParameters":
        return replace(self, cost_m=cost_m, cost_t=cost_t, cost_io=cost_io)


#: The paper's default configuration (Experiment 4, Case 1).
DEFAULT_PARAMETERS = TradeoffParameters()

#: Experiment 4's three weighting cases for (rho_quality, rho_cost).
EXPERIMENT4_CASES = (
    ("Case 1", DEFAULT_PARAMETERS.with_quality_weight(0.9)),
    ("Case 2", DEFAULT_PARAMETERS.with_quality_weight(0.75)),
    ("Case 3", DEFAULT_PARAMETERS.with_quality_weight(0.5)),
)
