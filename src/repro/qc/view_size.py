"""View-extent size and view-overlap estimation (Sec. 5.4.3, Example 4).

The size of a select-project-join view is estimated from statistics as

    |V|  ~=  js^(#join clauses) * prod |R_i| * prod sigma(selection clauses)

mirroring the paper's ``|V1| ~= js_{T,S} * |T| * |S|``.  The overlap of an
original view with a rewriting is estimated the same way, except that every
relation replaced by the rewriting contributes the *relation overlap*
``|R ∩~ T|`` (from :mod:`repro.qc.overlap`) instead of its cardinality —
exactly the paper's ``|V ∩~ V1| ~= js_{T,S} * |R ∩~ T| * |S|``.

For rewritings whose extent relationship is already pinned down (equal,
subset, or superset), the overlap shortcut of Sec. 5.4.2 applies: the
intersection is simply the smaller of the two extents, and "none of the
expensive set intersection operations is required".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.esql.ast import ViewDefinition
from repro.misd.statistics import SpaceStatistics
from repro.qc.overlap import overlap_between
from repro.sync.rewriting import (
    ExtentRelationship,
    ReplaceRelationMove,
    Rewriting,
)


def estimate_view_cardinality(
    view: ViewDefinition, statistics: SpaceStatistics
) -> float:
    """``|V|`` from relation cardinalities, join and local selectivities."""
    size = 1.0
    for name in view.relation_names:
        size *= statistics.cardinality(name)
    condition = view.condition()
    size *= statistics.join_selectivity ** len(condition.join_clauses())
    for clause in condition.selection_clauses():
        relations = clause.relations()
        owner = next(iter(relations)) if relations else view.relation_names[0]
        size *= statistics.selectivity(owner)
    return size


@dataclass(frozen=True)
class ExtentNumbers:
    """The three cardinalities Eq. 15 needs (common-attribute projections).

    * ``original`` — ``|V^(Vi)|``: the original extent,
    * ``rewriting`` — ``|Vi^(V)|``: the new extent,
    * ``overlap`` — ``|V ∩~ Vi|``: shared tuples,

    all computed on the common subset of attributes with duplicates removed
    (for the estimation path we keep the raw estimates; de-duplication is a
    no-op under the paper's statistical assumptions).
    """

    original: float
    rewriting: float
    overlap: float
    exact: bool = True

    def __post_init__(self) -> None:
        if min(self.original, self.rewriting, self.overlap) < 0:
            raise ValueError("extent numbers must be non-negative")


def estimate_extent_numbers(
    rewriting: Rewriting,
    mkb,
    statistics: SpaceStatistics | None = None,
) -> ExtentNumbers:
    """Estimate the Eq. 15 inputs for one rewriting.

    The original view's size is computed over the *rewriting's* structure
    with the replaced relations' original cardinalities, so that shared
    join structure (and its selectivities) cancels in the D1/D2 ratios the
    way the paper's Example 4 computes them.
    """
    stats = statistics if statistics is not None else mkb.statistics
    new_size = estimate_view_cardinality(rewriting.view, stats)

    replacements = {
        move.new_relation: move.old_relation
        for move in rewriting.moves
        if isinstance(move, ReplaceRelationMove)
    }

    # Original size: same structural estimate, with every replacement
    # relation's cardinality swapped back to the original relation's.
    original_size = new_size
    overlap = new_size
    exact = True
    for new_name, old_name in replacements.items():
        new_card = float(stats.cardinality(new_name))
        old_card = float(stats.cardinality(old_name))
        if new_card > 0:
            original_size *= old_card / new_card
            estimate = overlap_between(old_name, new_name, mkb, stats)
            overlap *= estimate.size / new_card
            exact = exact and estimate.exact
        else:
            original_size = 0.0
            overlap = 0.0

    relationship = rewriting.extent_relationship
    if not replacements:
        # Pure drop/rename rewritings: the shortcut cases of Sec. 5.4.2.
        original_size = estimate_view_cardinality(rewriting.original, stats)
        if relationship is ExtentRelationship.EQUAL:
            overlap = min(original_size, new_size)
        elif relationship is ExtentRelationship.SUPERSET:
            overlap = original_size
        elif relationship is ExtentRelationship.SUBSET:
            overlap = new_size
        else:
            overlap = 0.0
            exact = False
    else:
        # A constrained relationship still caps the overlap at the smaller
        # extent, which the per-relation product may slightly exceed when
        # statistics are inconsistent.
        overlap = min(overlap, original_size, new_size)

    return ExtentNumbers(original_size, new_size, overlap, exact)
