"""Relation-overlap estimation from PC constraints (Sec. 5.4.3, Figs. 9/10).

Given a PC constraint ``pi(sigma_C1(R1)) REL pi(sigma_C2(R2))`` and the
relation statistics, estimate ``|R1 ∩~ R2|`` — the number of shared tuples
on the corresponding attributes.  Twelve cases arise from the cross of

* REL in {equivalent, subset, superset}, and
* whether each side's selection condition is the tautology ("no") or a
  genuine selection ("yes", contributing its selectivity).

Seven cases are exact; five (marked in Fig. 9 with asterisks) only yield a
*minimum* — the constraint cannot see tuples that overlap outside the
constrained fragments.  The paper uses the minimum as the estimate, and so
do we, recording exactness so callers can surface estimation error.

Without any PC constraint the overlap is estimated as 0 (the paper's
explicitly pessimistic fallback: unrelated relations are assumed disjoint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.misd.constraints import PCConstraint, PCRelationship
from repro.misd.statistics import SpaceStatistics


@dataclass(frozen=True)
class OverlapEstimate:
    """Estimated ``|R1 ∩~ R2|`` plus whether the figure is exact.

    ``size`` is a tuple count; when ``exact`` is False it is a lower bound
    (the paper: "the approximations compute a minimal value").
    """

    size: float
    exact: bool

    def __float__(self) -> float:
        return float(self.size)


#: The no-constraint fallback: assume disjoint extents.
NO_OVERLAP = OverlapEstimate(0.0, exact=False)


def fragment_cardinality(
    relation: str, selective: bool, statistics: SpaceStatistics
) -> float:
    """``|sigma_C(R)|``: full cardinality, or scaled by the selectivity."""
    cardinality = float(statistics.cardinality(relation))
    if selective:
        return statistics.selectivity(relation) * cardinality
    return cardinality


def estimate_overlap(
    constraint: PCConstraint, statistics: SpaceStatistics
) -> OverlapEstimate:
    """``|R1 ∩~ R2|`` for the twelve Fig. 9 cases.

    The constraint must be oriented so that ``R1`` (the dropped/original
    relation) is on the left — use :meth:`PCConstraint.oriented` first.

    Derivation (with F1 = left fragment, F2 = right fragment):

    * ``EQUIVALENT``: F1 ≡ F2, so the overlap contains F1.  Exact unless
      *both* sides are selective (then tuples outside both fragments may
      still coincide — the yes/yes row).
    * ``SUBSET`` (R1 ⊆ R2 at fragment level): the overlap contains F1.
      Exact unless the left side is selective.
    * ``SUPERSET``: symmetric — contains F2; exact unless the right side
      is selective.
    """
    left_selective = constraint.left.has_selection
    right_selective = constraint.right.has_selection
    left_size = fragment_cardinality(
        constraint.left.relation, left_selective, statistics
    )
    right_size = fragment_cardinality(
        constraint.right.relation, right_selective, statistics
    )

    if constraint.relationship is PCRelationship.EQUIVALENT:
        # |F1| = |F2| semantically; statistics may disagree, so take the
        # smaller (a valid lower bound either way).
        size = min(left_size, right_size)
        exact = not (left_selective and right_selective)
    elif constraint.relationship is PCRelationship.SUBSET:
        size = left_size
        exact = not left_selective
    else:  # SUPERSET
        size = right_size
        exact = not right_selective

    return OverlapEstimate(size, exact)


def overlap_between(
    original: str,
    replacement: str,
    mkb,
    statistics: SpaceStatistics | None = None,
) -> OverlapEstimate:
    """``|original ∩~ replacement|`` via the MKB's best PC constraint.

    Looks up live *and* retired constraints (the original relation may have
    been deleted — that is exactly when this function is needed).  When no
    direct constraint relates the two, 2-hop constraint paths through an
    intermediate relation M are tried — the transitive-replacement
    situation (e.g. S and T both related to a deleted common ancestor):
    by inclusion–exclusion, ``|A ∩ B| >= |A ∩ M| + |M ∩ B| - |M|``, which
    is reported as a (never-exact) minimum bound.  Otherwise the paper's
    pessimistic fallback applies: :data:`NO_OVERLAP`.
    """
    stats = statistics if statistics is not None else mkb.statistics
    best: OverlapEstimate | None = None
    for pc in mkb.sync_pc_constraints(original):
        if pc.right.relation != replacement:
            continue
        estimate = estimate_overlap(pc, stats)
        if best is None or estimate.size > best.size:
            best = estimate
    if best is not None:
        return best

    for first in mkb.sync_pc_constraints(original):
        intermediate = first.right.relation
        if intermediate == replacement:
            continue
        for second in mkb.sync_pc_constraints(intermediate):
            if second.right.relation != replacement:
                continue
            via_size = float(stats.cardinality(intermediate))
            bound = max(
                0.0,
                estimate_overlap(first, stats).size
                + estimate_overlap(second, stats).size
                - via_size,
            )
            candidate = OverlapEstimate(bound, exact=False)
            if best is None or candidate.size > best.size:
                best = candidate
    return best if best is not None else NO_OVERLAP
