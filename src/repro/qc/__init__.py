"""The QC-Model: quality/cost efficiency ranking for view rewritings.

Public surface:

* :class:`TradeoffParameters` — every weight of the model, paper defaults
* :class:`QCModel` / :class:`Evaluation` — evaluate and rank candidates
* quality: :func:`dd_attr`, :func:`dd_ext`, :func:`assess_quality`,
  :class:`QualityAssessment`, :class:`ExtentNumbers`
* overlap: :func:`estimate_overlap`, :func:`overlap_between` (Figs. 9/10)
* cost: :class:`MaintenancePlan`, :func:`cf_messages`, :func:`cf_bytes`,
  :func:`cf_io`, :func:`assess_cost`, :func:`normalize_costs`
* workload: :class:`WorkloadModel`, :class:`WorkloadSpec` (M1-M4)
* heuristics: the Sec. 7.6 pruning rules
* :class:`AssessmentCache` — memoized assessments over canonical
  rewriting fingerprints
"""

from repro.qc.assessment_cache import (
    AssessmentCache,
    fingerprint_rewriting,
    fingerprint_view,
)
from repro.qc.cost import (
    CostAssessment,
    MaintenancePlan,
    SourceGroup,
    assess_cost,
    cf_bytes,
    cf_bytes_uniform,
    cf_io,
    cf_messages,
    cf_messages_counted,
    full_scan_ios,
    normalize_costs,
    plan_for_view,
)
from repro.qc.heuristics import (
    closest_size_key,
    default_heuristic_stack,
    fewest_clauses_key,
    fewest_relations_key,
    fewest_sources_key,
    pick_by_heuristics,
    smallest_relations_key,
)
from repro.qc.model import Evaluation, QCModel, qc_score
from repro.qc.overlap import (
    NO_OVERLAP,
    OverlapEstimate,
    estimate_overlap,
    fragment_cardinality,
    overlap_between,
)
from repro.qc.params import (
    DEFAULT_PARAMETERS,
    EXPERIMENT4_CASES,
    TradeoffParameters,
)
from repro.qc.quality import (
    QualityAssessment,
    assess_quality,
    assess_quality_estimated,
    assess_quality_exact,
    dd_attr,
    dd_ext,
    dd_ext_d1,
    dd_ext_d2,
    dd_ext_subset,
    dd_ext_superset,
    exact_extent_numbers,
    interface_quality,
)
from repro.qc.view_size import (
    ExtentNumbers,
    estimate_extent_numbers,
    estimate_view_cardinality,
)
from repro.qc.workload import WorkloadModel, WorkloadSpec, aggregate_cost

__all__ = [
    "DEFAULT_PARAMETERS",
    "EXPERIMENT4_CASES",
    "NO_OVERLAP",
    "AssessmentCache",
    "CostAssessment",
    "Evaluation",
    "ExtentNumbers",
    "MaintenancePlan",
    "OverlapEstimate",
    "QCModel",
    "QualityAssessment",
    "SourceGroup",
    "TradeoffParameters",
    "WorkloadModel",
    "WorkloadSpec",
    "aggregate_cost",
    "assess_cost",
    "assess_quality",
    "assess_quality_estimated",
    "assess_quality_exact",
    "cf_bytes",
    "cf_bytes_uniform",
    "cf_io",
    "cf_messages",
    "cf_messages_counted",
    "closest_size_key",
    "dd_attr",
    "dd_ext",
    "dd_ext_d1",
    "dd_ext_d2",
    "dd_ext_subset",
    "dd_ext_superset",
    "default_heuristic_stack",
    "estimate_extent_numbers",
    "estimate_overlap",
    "estimate_view_cardinality",
    "exact_extent_numbers",
    "fewest_clauses_key",
    "fewest_relations_key",
    "fewest_sources_key",
    "fingerprint_rewriting",
    "fingerprint_view",
    "fragment_cardinality",
    "full_scan_ios",
    "interface_quality",
    "normalize_costs",
    "overlap_between",
    "pick_by_heuristics",
    "plan_for_view",
    "qc_score",
    "smallest_relations_key",
]
